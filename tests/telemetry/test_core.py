"""Unit tests for the telemetry core: spans, metrics, snapshot/merge."""

import threading

import pytest

from repro import telemetry
from repro.telemetry import Telemetry, use_telemetry
from repro.telemetry.core import span_key


class TestSpanKey:
    def test_bare_name(self):
        assert span_key("replay.run") == "replay.run"

    def test_labels_sorted(self):
        assert span_key("runner.task", {"attempt": 1}) == "runner.task{attempt=1}"
        assert span_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"


class TestSpans:
    def test_nesting_builds_a_tree(self):
        sink = Telemetry()
        with sink.span("outer"):
            with sink.span("inner"):
                pass
            with sink.span("inner"):
                pass
        (outer,) = sink.spans()
        assert outer.key == "outer"
        assert outer.calls == 1
        (inner,) = outer.children.values()
        assert inner.key == "inner"
        assert inner.calls == 2

    def test_own_ns_excludes_children(self):
        sink = Telemetry()
        with sink.span("outer"):
            with sink.span("inner"):
                pass
        (outer,) = sink.spans()
        (inner,) = outer.children.values()
        assert outer.own_ns() == outer.ns - inner.ns

    def test_threads_build_separate_branches(self):
        sink = Telemetry()

        def work(name):
            with sink.span(name):
                with sink.span("leaf"):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tops = sink.spans()
        assert [n.key for n in tops] == ["t0", "t1", "t2", "t3"]
        for node in tops:
            assert node.calls == 1
            assert list(node.children) == ["leaf"]

    def test_span_survives_exception(self):
        sink = Telemetry()
        with pytest.raises(RuntimeError):
            with sink.span("boom"):
                raise RuntimeError("x")
        (node,) = sink.spans()
        assert node.calls == 1


class TestMetrics:
    def test_counters_accumulate(self):
        sink = Telemetry()
        sink.count("a")
        sink.count("a", 4)
        assert sink.counters["a"] == 5

    def test_gauges_last_write_wins(self):
        sink = Telemetry()
        sink.gauge("g", 10)
        sink.gauge("g", 3)
        assert sink.gauges["g"] == 3

    def test_histogram_power_of_two_buckets(self):
        sink = Telemetry()
        for value in (0, 1, 2, 3, 4, 1000):
            sink.observe("h", value)
        # bit_length buckets: 0->0, 1->1, {2,3}->2, 4->3, 1000->10
        assert sink.histograms["h"] == {0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
        count, total = sink.histogram_summary("h")
        assert count == 6
        assert total == 1010


class TestSnapshotMerge:
    def _populated(self):
        sink = Telemetry()
        sink.count("c", 2)
        sink.gauge("g", 7)
        sink.observe("h", 5)
        with sink.span("top"):
            with sink.span("sub"):
                pass
        return sink

    def test_snapshot_is_plain_data(self):
        snap = self._populated().snapshot()
        assert snap["version"] == 1
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7}
        (top,) = snap["spans"]
        assert top["span"] == "top"
        assert top["children"][0]["span"] == "sub"

    def test_merge_sums_counters_buckets_and_span_calls(self):
        parent = self._populated()
        parent.merge(self._populated().snapshot())
        assert parent.counters["c"] == 4
        assert parent.gauges["g"] == 7
        count, total = parent.histogram_summary("h")
        assert count == 2
        assert total == 10
        (top,) = parent.spans()
        assert top.calls == 2
        (sub,) = top.children.values()
        assert sub.calls == 2

    def test_merge_none_is_noop(self):
        sink = self._populated()
        before = sink.snapshot()
        sink.merge(None)
        sink.merge({})
        assert sink.snapshot() == before

    def test_merge_order_independent_for_sums(self):
        a, b = self._populated().snapshot(), Telemetry()
        b.count("c", 9)
        b = b.snapshot()
        ab, ba = Telemetry(), Telemetry()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.counters == ba.counters


class TestNullBackend:
    def test_disabled_by_default(self):
        assert telemetry.active() is None
        assert not telemetry.enabled()

    def test_free_functions_are_noops_when_disabled(self):
        telemetry.count("x")
        telemetry.gauge("x", 1)
        telemetry.observe("x", 1)
        with telemetry.span("x"):
            pass  # shared null span: no sink to record into

    def test_use_telemetry_activates_and_restores(self):
        sink = Telemetry()
        with use_telemetry(sink):
            assert telemetry.active() is sink
            telemetry.count("hit")
        assert telemetry.active() is None
        assert sink.counters["hit"] == 1

    def test_nested_sinks_restore_previous(self):
        outer, inner = Telemetry(), Telemetry()
        with use_telemetry(outer):
            with use_telemetry(inner):
                telemetry.count("k")
            assert telemetry.active() is outer
            telemetry.count("k")
        assert inner.counters["k"] == 1
        assert outer.counters["k"] == 1
