"""The determinism regression: ``--jobs N`` telemetry == ``--jobs 1``.

Worker processes collect into their own sinks; the supervisor merges
their snapshots back in task order.  The default export strips wall
times, so the merged artifact of a parallel run must be byte-identical
to a serial run's.
"""

import pytest

from repro import api, telemetry
from repro.telemetry import Telemetry, to_json, use_telemetry


@pytest.fixture(scope="module")
def trace():
    return api.record("transmissionBT", threads=2, seed=0)


def _replay_telemetry(trace, jobs: int) -> str:
    sink = Telemetry()
    api.replay(trace, runs=4, seed=0, jobs=jobs, telemetry=sink)
    return to_json(sink)


class TestJobsDeterminism:
    def test_parallel_replay_matches_serial(self, trace):
        assert _replay_telemetry(trace, jobs=4) == _replay_telemetry(trace, jobs=1)

    def test_parallel_collects_worker_metrics(self, trace):
        sink = Telemetry()
        api.replay(trace, runs=4, seed=0, jobs=2, telemetry=sink)
        # per-run metrics are emitted inside the workers and merged back
        assert sink.counters["replay.runs"] == 4
        assert sink.counters["sim.runs"] == 4
        count, _total = sink.histogram_summary("replay.end_ns")
        assert count == 4

    def test_repeat_runs_are_byte_identical(self, trace):
        assert _replay_telemetry(trace, jobs=2) == _replay_telemetry(trace, jobs=2)

    def test_worker_spans_merge_under_runner_task(self, trace):
        sink = Telemetry()
        api.replay(trace, runs=3, seed=0, jobs=2, telemetry=sink)
        tasks = [n for n in sink.spans() if n.key.startswith("runner.task")]
        assert sum(n.calls for n in tasks) == 3
        for node in tasks:
            assert "replay.run{scheme=ELSC-S}" in node.children


class TestPoolFailureAccounting:
    def test_retried_attempts_are_labelled_separately(self):
        # fault injection: first attempt of task 1 crashes, retry succeeds
        from repro import faults
        from repro.faults import FaultPlan, parse_rule
        from repro.runner import ExecPolicy
        from repro.runner.pool import parallel_map

        plan = FaultPlan(seed=0, rules=[parse_rule("pool.worker_crash@1:attempt=0")])
        sink = Telemetry()
        with use_telemetry(sink), faults.use_plan(plan):
            results = parallel_map(
                _double, [1, 2, 3], jobs=2, policy=ExecPolicy(retries=2)
            )
        assert results == [2, 4, 6]
        assert sink.counters["pool.crashes"] == 1
        assert sink.counters["pool.retries"] == 1
        # the crashed attempt's wall time died with its worker; the retry
        # lands under its own attempt label, so nothing is double-counted
        tasks = {n.key: n for n in sink.spans() if n.key.startswith("runner.task")}
        assert sum(n.calls for n in tasks.values()) == 3
        assert "runner.task{attempt=1}" in tasks
        assert tasks["runner.task{attempt=1}"].calls == 1

    def test_serial_path_counts_match_pool_path(self):
        from repro.runner.pool import parallel_map

        serial, pooled = Telemetry(), Telemetry()
        with use_telemetry(serial):
            parallel_map(_double, [1, 2, 3], jobs=1)
        with use_telemetry(pooled):
            parallel_map(_double, [1, 2, 3], jobs=2)
        assert to_json(serial) == to_json(pooled)


def _double(x):
    return x * 2
