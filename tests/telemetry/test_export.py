"""Exporter tests: canonical JSON round-trip, Prometheus text, summary."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    EXPORT_FORMATS,
    Telemetry,
    load,
    render_summary,
    to_dict,
    to_json,
    to_prometheus,
    write,
)


def populated() -> Telemetry:
    sink = Telemetry()
    sink.count("replay.runs", 3)
    sink.count("cache.trace.hits", 1)
    sink.gauge("trace.events", 1030)
    sink.observe("replay.end_ns", 64559)
    sink.observe("replay.end_ns", 64559)
    with sink.span("replay.run", scheme="ELSC-S"):
        pass
    return sink


class TestToDict:
    def test_sorted_and_versioned(self):
        data = to_dict(populated())
        assert data["version"] == 1
        assert list(data["counters"]) == sorted(data["counters"])
        assert data["counters"]["replay.runs"] == 3

    def test_timings_stripped_by_default(self):
        data = to_dict(populated())
        (span,) = data["spans"]
        assert span["span"] == "replay.run{scheme=ELSC-S}"
        assert "ns" not in span

    def test_timings_opt_in(self):
        data = to_dict(populated(), timings=True)
        (span,) = data["spans"]
        assert "ns" in span

    def test_default_export_is_deterministic(self):
        # two sinks doing the same logical work, different wall clocks
        assert to_json(populated()) == to_json(populated())


class TestJsonRoundTrip:
    def test_write_load_roundtrip(self, tmp_path):
        sink = populated()
        path = write(sink, tmp_path / "TELEMETRY.json", fmt="json")
        reloaded = load(path)
        assert to_json(reloaded) == to_json(sink)
        # histogram buckets come back as int keys
        assert all(isinstance(b, int)
                   for b in reloaded["histograms"]["replay.end_ns"])

    def test_written_file_is_valid_json(self, tmp_path):
        path = write(populated(), tmp_path / "t.json")
        data = json.loads(path.read_text())
        assert data["gauges"]["trace.events"] == 1030

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write(populated(), tmp_path / "x", fmt="xml")


class TestPrometheus:
    def test_exposition_format(self):
        text = to_prometheus(populated())
        assert "# TYPE repro_replay_runs counter" in text
        assert "repro_replay_runs 3" in text
        assert "# TYPE repro_trace_events gauge" in text
        assert "# TYPE repro_replay_end_ns histogram" in text
        assert 'repro_span_calls{span="replay.run{scheme=ELSC-S}"} 1' in text

    def test_histogram_buckets_cumulative(self):
        text = to_prometheus(populated())
        # both observations of 64559 land in bucket 16 (le = 2**16 - 1)
        assert 'repro_replay_end_ns_bucket{le="65535"} 2' in text
        assert 'repro_replay_end_ns_bucket{le="+Inf"} 2' in text
        assert "repro_replay_end_ns_count 2" in text
        assert "repro_replay_end_ns_sum 129118" in text

    def test_help_lines_come_from_registry(self):
        text = to_prometheus(populated())
        assert "# HELP repro_replay_runs replays executed" in text

    def test_no_span_ns_without_timings(self):
        assert "repro_span_ns" not in to_prometheus(populated())
        assert "repro_span_ns" in to_prometheus(populated(), timings=True)


class TestSummary:
    def test_renders_all_sections(self):
        text = render_summary(populated())
        assert "telemetry summary" in text
        assert "replay.run{scheme=ELSC-S}" in text
        assert "replay.runs" in text
        assert "trace.events" in text
        assert "replay.end_ns" in text

    def test_empty_sink(self):
        assert "empty" in render_summary(Telemetry())

    def test_summary_of_loaded_export_omits_wall_times(self, tmp_path):
        path = write(populated(), tmp_path / "t.json")
        text = render_summary(load(path))
        assert "replay.run{scheme=ELSC-S}" in text
        assert " ms" not in text  # timings were stripped at write time


class TestFormats:
    def test_export_formats_constant(self):
        assert EXPORT_FORMATS == ("json", "prom", "summary")
        assert telemetry.DEFAULT_PATHS["json"] == "TELEMETRY.json"
