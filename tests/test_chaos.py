"""Tests for the chaos soak harness (repro.chaos.harness)."""

import json

import pytest

from repro.chaos import harness


class TestScheduling:
    def test_every_point_belongs_to_the_registry(self):
        from repro.chaos.points import CRASH_POINTS

        for op, points in harness.POINTS_BY_OP.items():
            assert op in harness.OPS
            for point in points:
                assert point in CRASH_POINTS

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            harness.run_soak(cycles=1, ops=["nope"])

    def test_same_seed_same_schedule(self, tmp_path):
        a = harness.run_soak(
            cycles=4, seed=3, ops=["cache"], workdir=tmp_path / "a"
        )
        b = harness.run_soak(
            cycles=4, seed=3, ops=["cache"], workdir=tmp_path / "b"
        )
        assert [(r.op, r.point, r.nth) for r in a.results] == \
            [(r.op, r.point, r.nth) for r in b.results]


class TestSoak:
    def test_soak_over_every_op_has_no_violations(self, tmp_path):
        report = harness.run_soak(cycles=6, seed=11, workdir=tmp_path)
        assert len(report.results) == 6
        assert report.violations == []
        assert sum(report.kills.values()) >= 1
        text = report.render()
        assert "chaos soak: 6 cycles" in text
        assert "invariant violations: none" in text
        data = json.loads(report.to_json())
        assert data["seed"] == 11
        assert data["violations"] == []

    def test_journal_cycle_composes_fault_injection(self, tmp_path):
        # force the composition path: with this seed the 25% fault coin
        # lands at least once across the journal cycles
        report = harness.run_soak(
            cycles=4, seed=0, ops=["journal"], workdir=tmp_path
        )
        assert report.violations == []
        assert any(r.faults for r in report.results)

    def test_analyze_cycles_resume_from_checkpoints(self, tmp_path):
        report = harness.run_soak(
            cycles=4, seed=5, ops=["analyze"], workdir=tmp_path
        )
        assert report.violations == []
        resumed = [
            r.resumed_segments for r in report.results
            if r.killed and r.resumed_segments
        ]
        # at least one kill landed past the first checkpoint, so the
        # resume measurably skipped work instead of starting at byte 0
        assert resumed and max(resumed) >= harness.child_mod.CHECKPOINT_EVERY
