"""Semantic tests for the structured (pipeline/barrier) workload models.

Beyond the Table 1 category shapes, the structured models make concrete
promises about their dataflow: queues drain exactly, progress counters
reach their final values, barriers keep phases aligned.  Replay must
reproduce all of it.
"""

import pytest

from repro.replay import ELSC_S, Replayer
from repro.workloads import get_workload


def record_and_replay(name, **kwargs):
    recorded = get_workload(name, **kwargs).record()
    replay = Replayer(jitter=0.0).replay(recorded.trace, scheme=ELSC_S)
    return recorded, replay


class TestPbzip2Pipeline:
    def test_all_blocks_produced_and_compressed(self):
        recorded, replay = record_and_replay("pbzip2", threads=3)
        workload = get_workload("pbzip2", threads=3)
        memory = replay.final_memory
        for i in range(workload.total_blocks):
            assert memory.get(f"fifo.block[{i}]") == i + 1
            assert memory.get(f"out.block[{i}]") == 1
        assert memory.get("producerDone") == 1
        assert memory.get("fifo.empty") == 1


class TestDedupPipeline:
    def test_all_chunks_flow_through(self):
        recorded, replay = record_and_replay("dedup", threads=2)
        workload = get_workload("dedup", threads=2)
        memory = replay.final_memory
        for i in range(workload.total_chunks):
            assert memory.get(f"chunk[{i}]") == i + 1
            assert memory.get(f"compressed[{i}]") == 1

    def test_refcount_accumulates(self):
        recorded, replay = record_and_replay("dedup", threads=2)
        # every 4th chunk (i % 4 == 1) bumps the refcount by 1
        expected = sum(
            1
            for k in range(2)
            for i in range(get_workload("dedup", threads=2).rounds(12))
            if i % 4 == 1
        )
        assert replay.final_memory.get("ht.refs") == expected


class TestFerretPipeline:
    def test_stats_counters_reach_totals(self):
        recorded, replay = record_and_replay("ferret", threads=2)
        workload = get_workload("ferret", threads=2)
        # three commutative bumps per query
        assert replay.final_memory.get("stats.cnt_rank") == 3 * workload.total_queries


class TestX264Dependencies:
    def test_progress_reaches_row_counts(self):
        recorded, replay = record_and_replay("x264", threads=3)
        workload = get_workload("x264", threads=3)
        rows = workload.rounds(workload.rows_per_frame)
        memory = replay.final_memory
        for k in range(3):
            assert memory.get(f"progress[{k}]") == rows

    def test_dependent_frames_never_overrun_reference(self):
        """In the recording, frame k's row r must start after the reference
        frame's progress write for row r (the dependency the cond waits
        enforce)."""
        recorded = get_workload("x264", threads=2).record()
        trace = recorded.trace
        # progress writes in time order per frame
        writes = {}
        for event in trace.iter_time_order():
            if event.kind == "write" and event.addr.startswith("progress["):
                writes.setdefault(event.addr, []).append((event.t, event.value))
        ref = writes["progress[0]"]
        dep = writes["progress[1]"]
        for t_dep, row in dep:
            # the reference must have published `row` before the dependent
            # frame could finish encoding that row
            t_ref = next(t for t, value in ref if value >= row)
            assert t_ref <= t_dep


class TestBarrierAlignment:
    @pytest.mark.parametrize("name,barrier_glyph", [
        ("bodytrack", "frame_barrier"),
        ("facesim", "newton_barrier"),
        ("streamcluster", "phase"),
    ])
    def test_barrier_rounds_complete(self, name, barrier_glyph):
        recorded = get_workload(name, threads=3).record()
        trace = recorded.trace
        posts = [e for e in trace.iter_events() if e.kind == "post"]
        waits = [e for e in trace.iter_events() if e.kind == "wait"]
        # every barrier round: one poster, parties-1 waiters
        assert posts, name
        woken = sum(len(p.woken) for p in posts)
        assert woken == len([w for w in waits if w.reason == "posted"]), name
