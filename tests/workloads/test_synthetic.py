"""Tests for the tunable synthetic workloads and the contention sweep."""

import pytest

from repro.analysis import analyze_pairs
from repro.errors import WorkloadError
from repro.experiments import contention_sweep
from repro.workloads.synthetic import MixedBag, TunableContention


class TestTunableContention:
    def test_utilization_validated(self):
        with pytest.raises(WorkloadError):
            TunableContention(utilization=0.0)
        with pytest.raises(WorkloadError):
            TunableContention(utilization=1.5)

    def test_duty_cycle_respected(self):
        workload = TunableContention(utilization=0.25, round_ns=1000)
        assert workload.cs_len == 250
        assert workload.gap == 750

    def test_higher_utilization_more_contention(self):
        def contention(util):
            recorded = TunableContention(utilization=util, rounds=20).record()
            hot = recorded.machine_result.locks["hot"]
            return hot.contended_acquisitions / hot.acquisitions

        assert contention(0.8) > contention(0.1)

    def test_all_pairs_read_read(self):
        recorded = TunableContention(utilization=0.4, rounds=10).record()
        breakdown = analyze_pairs(recorded.trace).breakdown
        assert breakdown.read_read > 0
        assert breakdown.disjoint_write == 0
        assert breakdown.tlcp == 0


class TestMixedBag:
    def test_every_category_present(self):
        recorded = MixedBag(threads=2).record()
        breakdown = analyze_pairs(recorded.trace).breakdown
        assert breakdown.null_lock > 0
        assert breakdown.read_read > 0
        assert breakdown.disjoint_write > 0
        assert breakdown.benign > 0
        assert breakdown.tlcp > 0

    def test_single_lock(self):
        recorded = MixedBag(threads=2).record()
        assert set(recorded.trace.lock_schedule) == {"the_lock"}


class TestContentionSweep:
    def test_degradation_monotone_in_utilization(self):
        result = contention_sweep.run(utilizations=(0.1, 0.4, 0.7), rounds=15)
        assert result.is_monotone()
        degradations = [p.degradation for p in result.points]
        assert degradations[-1] > degradations[0]

    def test_render(self):
        result = contention_sweep.run(utilizations=(0.2, 0.6), rounds=10)
        assert "utilization" in result.render()
