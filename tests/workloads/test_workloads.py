"""Tests for the workload models: registry, determinism, Table 1 shapes."""

import pytest

from repro.analysis import analyze_pairs
from repro.errors import WorkloadError
from repro.workloads import (
    TABLE1_ORDER,
    get_workload,
    workload_names,
)

#: apps Table 1 reports with zero ULCPs
ZERO_ULCP_APPS = ("blackscholes", "canneal", "streamcluster", "swaptions")


def breakdown_of(name, **kwargs):
    rec = get_workload(name, **kwargs).record()
    return analyze_pairs(rec.trace).breakdown, rec


class TestRegistry:
    def test_all_table1_apps_registered(self):
        names = set(workload_names())
        for app in TABLE1_ORDER:
            assert app in names

    def test_categories(self):
        assert len(workload_names(category="realworld")) == 5
        assert len(workload_names(category="parsec")) == 11

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("no-such-app")

    def test_invalid_params_raise(self):
        with pytest.raises(WorkloadError):
            get_workload("mysql", threads=0)
        with pytest.raises(WorkloadError):
            get_workload("mysql", input_size="huge")
        with pytest.raises(WorkloadError):
            get_workload("mysql", scale=-1)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["openldap", "pbzip2", "fluidanimate"])
    def test_same_seed_same_trace(self, name):
        rec1 = get_workload(name, seed=7).record()
        rec2 = get_workload(name, seed=7).record()
        assert rec1.recorded_time == rec2.recorded_time
        assert len(rec1.trace) == len(rec2.trace)

    def test_different_seed_different_trace(self):
        rec1 = get_workload("mysql", seed=1).record()
        rec2 = get_workload("mysql", seed=2).record()
        assert rec1.recorded_time != rec2.recorded_time


class TestTable1Shapes:
    @pytest.mark.parametrize("name", ZERO_ULCP_APPS)
    def test_zero_ulcp_apps(self, name):
        breakdown, _ = breakdown_of(name)
        assert breakdown.total_ulcps == 0

    @pytest.mark.parametrize(
        "name",
        [a for a in TABLE1_ORDER if a not in ZERO_ULCP_APPS],
    )
    def test_nonzero_ulcp_apps(self, name):
        breakdown, _ = breakdown_of(name)
        assert breakdown.total_ulcps > 0

    @pytest.mark.parametrize(
        "name", ["openldap", "mysql", "pbzip2", "bodytrack", "fluidanimate", "vips"]
    )
    def test_read_read_dominant_apps(self, name):
        breakdown, _ = breakdown_of(name)
        assert breakdown.read_read >= breakdown.disjoint_write
        assert breakdown.read_read >= breakdown.null_lock

    def test_x264_has_most_null_locks_of_parsec(self):
        x264, _ = breakdown_of("x264")
        fluid, _ = breakdown_of("fluidanimate")
        assert x264.null_lock > fluid.null_lock

    def test_ferret_is_benign_dominant(self):
        breakdown, _ = breakdown_of("ferret")
        assert breakdown.benign >= breakdown.read_read

    def test_fluidanimate_has_most_ulcps(self):
        fluid, _ = breakdown_of("fluidanimate")
        for other in ("bodytrack", "ferret", "facesim", "dedup"):
            breakdown, _ = breakdown_of(other)
            assert fluid.total_ulcps > breakdown.total_ulcps

    def test_input_size_scales_counts(self):
        small, rec_small = breakdown_of("bodytrack", input_size="simsmall")
        large, rec_large = breakdown_of("bodytrack", input_size="simlarge")
        assert len(rec_large.trace) > len(rec_small.trace)

    def test_ulcps_grow_with_threads(self):
        """Figure 2's growth claim for the three studied apps."""
        for name in ("openldap", "pbzip2", "bodytrack"):
            two, _ = breakdown_of(name, threads=2)
            four, _ = breakdown_of(name, threads=4)
            assert four.total_ulcps > two.total_ulcps, name


class TestBugWorkloads:
    def test_bug1_fixed_variant_removes_polling(self):
        original = get_workload("bug1-openldap-spinwait").record()
        fixed = get_workload("bug1-openldap-spinwait", fixed=True).record()
        orig_b = analyze_pairs(original.trace).breakdown
        fixed_b = analyze_pairs(fixed.trace).breakdown
        assert orig_b.read_read > 0
        assert fixed_b.read_read == 0

    def test_bug1_fixed_wastes_less_cpu(self):
        original = get_workload("bug1-openldap-spinwait").record()
        fixed = get_workload("bug1-openldap-spinwait", fixed=True).record()
        assert (
            fixed.machine_result.total_spin_ns
            < original.machine_result.total_spin_ns
        )

    def test_bug2_fixed_variant_removes_checks(self):
        original = get_workload("bug2-pbzip2-join").record()
        fixed = get_workload("bug2-pbzip2-join", fixed=True).record()
        orig_b = analyze_pairs(original.trace).breakdown
        fixed_b = analyze_pairs(fixed.trace).breakdown
        assert orig_b.read_read > 0
        assert fixed_b.read_read == 0

    def test_bug2_fixed_is_faster(self):
        original = get_workload("bug2-pbzip2-join", threads=4).record()
        fixed = get_workload("bug2-pbzip2-join", threads=4, fixed=True).record()
        assert fixed.recorded_time < original.recorded_time


class TestAppendixCases:
    def test_case1_condwait_produces_null_lock(self):
        breakdown, _ = breakdown_of("case1-condwait-nulllock")
        assert breakdown.null_lock >= 1

    def test_case3_disjoint_fields(self):
        breakdown, _ = breakdown_of("case3-disjoint-fields")
        assert breakdown.disjoint_write >= 1

    def test_case5_thd_members(self):
        breakdown, _ = breakdown_of("case5-thd-members")
        assert breakdown.disjoint_write >= 1

    def test_case8_hash_lookups_read_read(self):
        breakdown, _ = breakdown_of("case8-hash-lookups")
        assert breakdown.read_read >= 4

    def test_case9_timeout_serializes(self):
        rec = get_workload("case9-querycache-timeout", threads=4).record()
        # the timed wait releases the mutex while sleeping (pthread
        # semantics), but all four wakes re-acquire it and serialize their
        # post-timeout work — the run overshoots the timeout by the
        # serialized tail, and the re-acquisitions contend
        assert rec.recorded_time >= 800 + 3 * 120
        guard = rec.machine_result.locks["structure_guard_mutex"]
        assert guard.contended_acquisitions >= 3

    def test_case10_read_read(self):
        breakdown, _ = breakdown_of("case10-global-read-lock")
        assert breakdown.read_read >= 1
