"""Direct unit tests for the three enforcement gates."""

from repro.replay.elsc import ELSCGate
from repro.replay.kendo import KendoGate
from repro.replay.memsched import MemOrderGate, access_order
from repro.record import record
from repro.sim import Acquire, Compute, Read, Release, Store, Write


class TestELSCGate:
    def test_enforces_schedule_order(self):
        gate = ELSCGate({"L": ["a1", "a2", "a3"]})
        assert gate.may_acquire("t0", "L", "a1")
        assert not gate.may_acquire("t1", "L", "a2")
        gate.on_acquired("t0", "L", "a1")
        assert gate.may_acquire("t1", "L", "a2")
        assert not gate.may_acquire("t2", "L", "a3")

    def test_unknown_lock_unconstrained(self):
        gate = ELSCGate({"L": ["a1"]})
        assert gate.may_acquire("t0", "M", "x9")

    def test_exhausted_schedule_unconstrained(self):
        gate = ELSCGate({"L": ["a1"]})
        gate.on_acquired("t0", "L", "a1")
        assert gate.may_acquire("t5", "L", "later")
        assert gate.remaining("L") == 0

    def test_out_of_order_acquire_does_not_advance(self):
        gate = ELSCGate({"L": ["a1", "a2"]})
        gate.on_acquired("t9", "L", "zz")  # not the scheduled uid
        assert gate.remaining("L") == 2


class TestKendoGate:
    class _FakeMachine:
        def __init__(self, eligible):
            self.eligible = eligible

        def gate_eligible_tids(self):
            return self.eligible

    def test_min_clock_acquires(self):
        gate = KendoGate()
        gate.attach(self._FakeMachine(["t0", "t1"]))
        gate.on_progress("t0", 100)
        gate.on_progress("t1", 50)
        assert not gate.may_acquire("t0", "L", "u")
        assert gate.may_acquire("t1", "L", "u")

    def test_tid_breaks_clock_ties(self):
        gate = KendoGate()
        gate.attach(self._FakeMachine(["t0", "t1"]))
        gate.on_progress("t0", 100)
        gate.on_progress("t1", 100)
        assert gate.may_acquire("t0", "L", "u")
        assert not gate.may_acquire("t1", "L", "u")

    def test_done_threads_excluded(self):
        gate = KendoGate()
        gate.attach(self._FakeMachine(["t0", "t1"]))
        gate.on_progress("t0", 10)
        gate.on_progress("t1", 999)
        gate.on_thread_end("t0")
        assert gate.may_acquire("t1", "L", "u")

    def test_acquisition_advances_clock(self):
        gate = KendoGate()
        gate.attach(self._FakeMachine(["t0"]))
        before = gate.clock("t0")
        gate.on_acquired("t0", "L", "u")
        assert gate.clock("t0") == before + 1


class TestMemOrderGate:
    def _trace(self):
        def prog(k):
            yield Compute(10 * (k + 1))
            yield Acquire(lock="L")
            yield Read("x")
            yield Write("x", op=Store(k))
            yield Release(lock="L")

        return record([(prog(0), "a"), (prog(1), "b")],
                      lock_cost=0, mem_cost=0).trace

    def test_access_order_is_time_sorted(self):
        trace = self._trace()
        order = access_order(trace)
        times = [trace.event(uid).t for uid in order]
        assert times == sorted(times)

    def test_global_order_enforced(self):
        trace = self._trace()
        gate = MemOrderGate.from_trace(trace)
        order = access_order(trace)
        first, second = order[0], order[1]
        assert gate.may_access("any", "x", first)
        assert not gate.may_access("any", "x", second)
        gate.on_access("any", "x", first)
        assert gate.may_access("any", "x", second)

    def test_unknown_access_unconstrained(self):
        trace = self._trace()
        gate = MemOrderGate.from_trace(trace)
        assert gate.may_access("t0", "y", "not-recorded")

    def test_inherits_lock_schedule(self):
        trace = self._trace()
        gate = MemOrderGate.from_trace(trace)
        scheduled = trace.lock_schedule["L"]
        assert gate.may_acquire("t", "L", scheduled[0])
        assert not gate.may_acquire("t", "L", scheduled[1])
