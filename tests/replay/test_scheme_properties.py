"""Property-based tests: every scheme replays every generated trace.

Random lock programs (same generator family as tests/test_properties.py)
are recorded and replayed under all four schemes plus the two transformed
modes — none may deadlock, and the deterministic schemes must reproduce
themselves across seeds when jitter is off.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import transform
from repro.record import record
from repro.replay import ALL_SCHEMES, ELSC_S, Replayer
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace import CodeSite

ADDRS = ("x", "y")
LOCKS = ("A", "B")

op_strategy = st.one_of(
    st.tuples(st.just("read"), st.sampled_from(ADDRS)),
    st.tuples(st.just("store"), st.sampled_from(ADDRS), st.integers(0, 3)),
    st.tuples(st.just("add"), st.sampled_from(ADDRS), st.integers(1, 3)),
)

cs_strategy = st.tuples(
    st.sampled_from(LOCKS),
    st.lists(op_strategy, max_size=3),
    st.integers(0, 250),
)

program_set = st.lists(
    st.lists(cs_strategy, min_size=1, max_size=4), min_size=1, max_size=3
)


def build(sections):
    def prog():
        line = 10
        for lock, body, think in sections:
            if think:
                yield Compute(think, site=CodeSite("p.c", line))
            yield Acquire(lock=lock, site=CodeSite("p.c", line + 1))
            for op in body:
                if op[0] == "read":
                    yield Read(op[1], site=CodeSite("p.c", line + 2))
                elif op[0] == "store":
                    yield Write(op[1], op=Store(op[2]), site=CodeSite("p.c", line + 2))
                else:
                    yield Write(op[1], op=Add(op[2]), site=CodeSite("p.c", line + 2))
            yield Release(lock=lock, site=CodeSite("p.c", line + 3))
            line += 10

    return prog()


def recorded(threads):
    programs = [(build(s), f"h{i}") for i, s in enumerate(threads)]
    return record(programs, name="scheme-prop").trace


@settings(max_examples=25, deadline=None)
@given(program_set)
def test_all_schemes_complete(threads):
    trace = recorded(threads)
    replayer = Replayer(jitter=0.02)
    for scheme in ALL_SCHEMES:
        result = replayer.replay(trace, scheme=scheme, seed=3)
        assert result.end_time >= 0


@settings(max_examples=20, deadline=None)
@given(program_set)
def test_deterministic_schemes_seed_invariant(threads):
    trace = recorded(threads)
    replayer = Replayer(jitter=0.0)
    for scheme in ("ELSC-S", "SYNC-S", "MEM-S"):
        times = {replayer.replay(trace, scheme=scheme, seed=s).end_time
                 for s in (0, 1, 2)}
        assert len(times) == 1, scheme


@settings(max_examples=20, deadline=None)
@given(program_set)
def test_both_transformed_modes_complete(threads):
    trace = recorded(threads)
    result = transform(trace)
    replayer = Replayer(jitter=0.0)
    dls = replayer.replay_transformed(result, mode="dls")
    lockset = replayer.replay_transformed(result, mode="lockset")
    assert dls.end_time >= 0
    assert lockset.end_time >= 0
    # the two modes implement the same ordering constraints, so they can
    # only differ by bookkeeping (flag checks vs lock ops, bounded by the
    # plan's total lockset entries at two ops of 20ns each)
    allowance = 100 + 2 * 20 * result.plan.total_lockset_entries()
    assert abs(lockset.end_time - dls.end_time) <= allowance


@settings(max_examples=20, deadline=None)
@given(program_set)
def test_memory_agreement_or_races(threads):
    """Theorem 1 as a property: the transformed replay matches memory, or
    the happens-before pass explains the divergence."""
    from repro.races import transformed_trace_races

    trace = recorded(threads)
    result = transform(trace)
    replayer = Replayer(jitter=0.0)
    original = replayer.replay(trace, scheme=ELSC_S)
    free = replayer.replay_transformed(result)
    if original.final_memory != free.final_memory:
        assert transformed_trace_races(result)
