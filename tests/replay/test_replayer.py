"""Tests for the replay engine and the four schemes."""

import pytest

from repro.analysis import transform
from repro.record import record
from repro.replay import (
    ELSC_S,
    MEM_S,
    ORIG_S,
    SYNC_S,
    Replayer,
    original_programs,
)
from repro.sim import Acquire, Add, Compute, CondWait, Read, Release, Signal, Store, Write
from repro.trace import ACQUIRE, CodeSite


def site(line):
    return CodeSite("replay_test.c", line)


def contended_workload(rounds=5, threads=3, cs_len=200, gap=100):
    """Threads repeatedly taking the same lock with real+false sharing."""

    def prog(k):
        for i in range(rounds):
            yield Compute(gap + 13 * k, site=site(1))
            yield Acquire(lock="L", site=site(2))
            yield Read("shared", site=site(3))
            yield Write("shared", op=Add(1), site=site(4))
            yield Compute(cs_len, site=site(5))
            yield Release(lock="L", site=site(6))

    return [(prog(k), f"w{k}") for k in range(threads)]


def readonly_workload(rounds=6, threads=3, cs_len=300):
    """Pure read-read ULCP generator: every pair is unnecessary."""

    def prog(k):
        for i in range(rounds):
            yield Compute(50 + 7 * k, site=site(10))
            yield Acquire(lock="L", site=site(11))
            yield Read("config", site=site(12))
            yield Compute(cs_len, site=site(13))
            yield Release(lock="L", site=site(14))

    def initializer():
        yield Write("config", op=Store(1), site=site(20))

    programs = [(prog(k), f"r{k}") for k in range(threads)]
    programs.append((initializer(), "init"))
    return programs


def recorded(workload):
    return record(workload, name="replay-test")


class TestFaithfulReplay:
    def test_elsc_replay_reproduces_recorded_time_exactly(self):
        rec = recorded(contended_workload())
        replay = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        assert replay.end_time == rec.recorded_time

    def test_elsc_replay_reproduces_lock_order(self):
        rec = recorded(contended_workload())
        replay = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        recorded_order = rec.trace.lock_schedule["L"]
        replayed = sorted(
            (uid for uid in recorded_order if uid in replay.timestamps),
            key=lambda uid: replay.timestamps[uid],
        )
        assert replayed == recorded_order

    def test_replay_reproduces_memory_state(self):
        rec = recorded(contended_workload())
        # re-execute and compare final counter value: 3 threads x 5 rounds
        replay = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        final_writes = [
            e.value for e in rec.trace.iter_time_order() if e.kind == "write"
        ]
        assert final_writes[-1] == 15

    def test_cond_wait_trace_replays(self):
        def waiter():
            yield Acquire(lock="L", site=site(30))
            outcome = yield CondWait(cond="C", lock="L", site=site(31))
            yield Release(lock="L", site=site(32))

        def signaler():
            yield Compute(500, site=site(40))
            yield Acquire(lock="L", site=site(41))
            yield Signal(cond="C", site=site(42))
            yield Release(lock="L", site=site(43))

        rec = record([(waiter(), "w"), (signaler(), "s")], name="cond")
        replay = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        assert replay.end_time == rec.recorded_time

    def test_replay_under_all_schemes_completes(self):
        rec = recorded(contended_workload())
        replayer = Replayer(jitter=0.0)
        for scheme in (ORIG_S, ELSC_S, SYNC_S, MEM_S):
            result = replayer.replay(rec.trace, scheme=scheme, seed=1)
            assert result.end_time > 0


class TestFidelity:
    def test_elsc_is_stable_under_jitter(self):
        rec = recorded(contended_workload())
        series = Replayer(jitter=0.02).replay_many(rec.trace, scheme=ELSC_S, runs=6)
        assert series.stability < 0.02

    def test_orig_fluctuates_more_than_elsc(self):
        rec = recorded(contended_workload(rounds=8, cs_len=400))
        replayer = Replayer(jitter=0.02)
        orig = replayer.replay_many(rec.trace, scheme=ORIG_S, runs=8)
        elsc = replayer.replay_many(rec.trace, scheme=ELSC_S, runs=8)
        assert orig.summary().spread >= elsc.summary().spread

    def test_elsc_mean_close_to_orig_mean(self):
        """ELSC's precision claim: no added cost vs. the unenforced replay."""
        rec = recorded(contended_workload())
        replayer = Replayer(jitter=0.02)
        orig = replayer.replay_many(rec.trace, scheme=ORIG_S, runs=6)
        elsc = replayer.replay_many(rec.trace, scheme=ELSC_S, runs=6)
        assert abs(elsc.mean_time - orig.mean_time) / orig.mean_time < 0.05

    def test_sync_s_slower_than_elsc(self):
        rec = recorded(contended_workload())
        replayer = Replayer(jitter=0.0)
        sync = replayer.replay(rec.trace, scheme=SYNC_S)
        elsc = replayer.replay(rec.trace, scheme=ELSC_S)
        assert sync.end_time > elsc.end_time

    def test_mem_s_slowest(self):
        rec = recorded(contended_workload())
        replayer = Replayer(jitter=0.0)
        mem = replayer.replay(rec.trace, scheme=MEM_S)
        sync = replayer.replay(rec.trace, scheme=SYNC_S)
        elsc = replayer.replay(rec.trace, scheme=ELSC_S)
        assert mem.end_time > sync.end_time > elsc.end_time

    def test_sync_s_deterministic_across_seeds_without_jitter(self):
        rec = recorded(contended_workload())
        replayer = Replayer(jitter=0.0)
        times = {replayer.replay(rec.trace, scheme=SYNC_S, seed=s).end_time
                 for s in range(4)}
        assert len(times) == 1


class TestTransformedReplay:
    def test_dls_replay_completes_and_is_faster(self):
        rec = recorded(readonly_workload())
        result = transform(rec.trace)
        replayer = Replayer(jitter=0.0)
        original = replayer.replay(rec.trace, scheme=ELSC_S)
        free = replayer.replay_transformed(result, mode="dls")
        assert free.end_time < original.end_time

    def test_lockset_replay_completes(self):
        rec = recorded(contended_workload())
        result = transform(rec.trace)
        free = Replayer(jitter=0.0).replay_transformed(result, mode="lockset")
        assert free.end_time > 0

    def test_lockset_mode_not_faster_than_dls(self):
        rec = recorded(contended_workload(rounds=6))
        result = transform(rec.trace)
        replayer = Replayer(jitter=0.0)
        dls = replayer.replay_transformed(result, mode="dls")
        lockset = replayer.replay_transformed(result, mode="lockset")
        assert lockset.end_time >= dls.end_time

    def test_transformed_replay_preserves_tlcp_order(self):
        """True conflicts must still execute in original relative order."""
        rec = recorded(contended_workload())
        result = transform(rec.trace)
        free = Replayer(jitter=0.0).replay_transformed(result, mode="dls")
        # every causal edge (src -> dst) must be respected: src's exit stamp
        # precedes dst's enter stamp
        for src, dst in result.topology.causal_edges():
            src_cs = result.topology.nodes[src]
            dst_cs = result.topology.nodes[dst]
            src_exit = free.timestamps.get(src_cs.release.uid)
            dst_enter = free.timestamps.get(dst_cs.acquire.uid)
            assert src_exit is not None and dst_enter is not None
            assert src_exit <= dst_enter

    def test_transformed_replay_stable_across_seeds(self):
        rec = recorded(contended_workload())
        result = transform(rec.trace)
        series = Replayer(jitter=0.0).replay_transformed_many(result, runs=4)
        assert series.stability == 0.0

    def test_read_only_workload_gets_full_parallelism(self):
        """With all locks gone, n threads of pure reads run concurrently."""
        rec = recorded(readonly_workload(rounds=4, threads=3, cs_len=500))
        result = transform(rec.trace)
        free = Replayer(jitter=0.0).replay_transformed(result, mode="dls")
        # every section removed: no CS markers left to serialize anything
        assert result.removed_sections == len(result.sections)
        original = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        assert free.end_time < original.end_time


class TestProgramReconstruction:
    def test_original_program_request_counts(self):
        rec = recorded(contended_workload(rounds=2, threads=2))
        programs = original_programs(rec.trace)
        total = sum(len(list(p)) for p, _ in programs)
        # per thread per round: compute, acquire, read, write, compute, release
        assert total == 2 * 2 * 6
