"""The watch loop: completion, early stop, stall, checkpoint hand-off."""

import pytest

from repro import api, telemetry
from repro.observe.fold import fold_snapshots, snapshot_dumps
from repro.observe.watch import render_snapshot, watch
from repro.options import AnalyzeOptions
from repro.serve import protocol
from repro.telemetry import to_dict
from repro.trace.segments import write_segmented


@pytest.fixture(scope="module")
def seg_trace(tmp_path_factory):
    trace = api.record("mysql", threads=3, input_size="simsmall")
    path = tmp_path_factory.mktemp("watch") / "t.seg.jsonl.gz"
    index = write_segmented(trace, path, segment_events=32)
    assert len(index.segments) >= 6
    return path


def _batch_lines(path):
    return [snapshot_dumps(s) for s in fold_snapshots(path)]


class TestComplete:
    def test_watch_equals_batch_fold(self, seg_trace):
        seen = []
        result = watch(seg_trace, on_snapshot=seen.append, interval=0.01)
        assert result.complete and not result.stalled
        assert result.snapshots == len(seen)
        assert [snapshot_dumps(s) for s in seen] == _batch_lines(seg_trace)

    def test_final_result_matches_analyze(self, seg_trace):
        result = watch(seg_trace, interval=0.01)
        batch = api.analyze(seg_trace)
        assert protocol.wire_dumps(result.final_snapshot["result"]) == \
            protocol.wire_dumps(protocol.analyze_result(batch))

    def test_render_snapshot_smoke(self, seg_trace):
        result = watch(seg_trace, interval=0.01)
        text = render_snapshot(result.final_snapshot)
        assert "final snapshot" in text
        assert f"segments {result.segments}" in text


class TestEarlyStop:
    def test_until_stable_emits_exact_prefix(self, seg_trace):
        seen = []
        result = watch(
            seg_trace, on_snapshot=seen.append, until_stable=2, interval=0.01
        )
        assert result.early_stopped and not result.complete
        assert seen[-1]["stable_for"] >= 2
        lines = [snapshot_dumps(s) for s in seen]
        assert lines == _batch_lines(seg_trace)[:len(lines)]

    def test_checkpoint_resumes_batch_analysis(self, seg_trace):
        fresh = api.analyze(seg_trace)
        result = watch(
            seg_trace, until_stable=2, resume="watchrun", interval=0.01
        )
        assert result.early_stopped and result.checkpoint_saved

        sink = telemetry.Telemetry()
        with telemetry.use_telemetry(sink):
            resumed = api.analyze(
                seg_trace, AnalyzeOptions(resume="watchrun")
            )
        counters = to_dict(sink, timings=False)["counters"]
        # the batch run really did skip every segment the watch folded
        assert counters.get("analyze.segments_resumed") == result.segments
        assert protocol.wire_dumps(protocol.analyze_result(resumed)) == \
            protocol.wire_dumps(protocol.analyze_result(fresh))

    def test_completed_watch_clears_checkpoint(self, seg_trace):
        result = watch(seg_trace, resume="watchdone", interval=0.01)
        assert result.complete
        sink = telemetry.Telemetry()
        with telemetry.use_telemetry(sink):
            api.analyze(seg_trace, AnalyzeOptions(resume="watchdone"))
        counters = to_dict(sink, timings=False)["counters"]
        assert "analyze.segments_resumed" not in counters


class TestStall:
    def test_growth_pause_then_footer_completes(self, seg_trace, tmp_path):
        blob = seg_trace.read_bytes()
        live = tmp_path / "live.seg.jsonl.gz"
        cut = len(blob) // 2
        live.write_bytes(blob[:cut])

        clock = [0.0]
        polls = [0]

        def fake_sleep(seconds):
            clock[0] += seconds
            polls[0] += 1
            if polls[0] == 3:  # the writer comes back before grace runs out
                with open(live, "ab") as handle:
                    handle.write(blob[cut:])

        result = watch(
            live, interval=1.0, grace=60.0,
            sleep=fake_sleep, clock=lambda: clock[0],
        )
        assert result.complete
        assert [0] != polls

    def test_stalled_file_reports_partial(self, seg_trace, tmp_path):
        blob = seg_trace.read_bytes()
        live = tmp_path / "live.seg.jsonl.gz"
        live.write_bytes(blob[:len(blob) // 2])

        clock = [0.0]

        def fake_sleep(seconds):
            clock[0] += seconds

        result = watch(
            live, interval=10.0, grace=5.0,
            sleep=fake_sleep, clock=lambda: clock[0],
        )
        assert result.stalled
        assert not result.complete and not result.early_stopped
        assert result.snapshots > 0  # partial progress was still streamed
