"""``repro watch`` end to end: formats, exit codes, backend identity."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.cli import main
from repro.observe.fold import fold_snapshots, snapshot_dumps
from repro.trace.segments import write_segmented

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def seg_trace(tmp_path_factory):
    trace = api.record("mixed-bag", threads=2, scale=1.0, seed=3)
    path = tmp_path_factory.mktemp("watchcli") / "t.seg.jsonl.gz"
    write_segmented(trace, path, segment_events=64)
    return path


class TestWatchCommand:
    def test_json_stream_matches_batch_fold(self, seg_trace, capsys):
        assert main(["watch", str(seg_trace), "--format", "json"]) == 0
        out = capsys.readouterr().out
        expected = "".join(snapshot_dumps(s) for s in fold_snapshots(seg_trace))
        assert out == expected

    def test_text_format_renders(self, seg_trace, capsys):
        assert main(["watch", str(seg_trace)]) == 0
        out = capsys.readouterr().out
        assert "repro watch" in out
        assert "final snapshot" in out

    def test_final_output_matches_analyze_json(self, seg_trace, tmp_path,
                                               capsys):
        final = tmp_path / "final.json"
        assert main([
            "watch", str(seg_trace), "--format", "json",
            "--final-output", str(final),
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", str(seg_trace), "--format", "json"]) == 0
        batch = capsys.readouterr().out
        assert final.read_text(encoding="utf-8") == batch

    def test_until_stable_early_stop_is_partial(self, seg_trace, capsys):
        code = main([
            "watch", str(seg_trace), "--format", "json", "--until-stable", "1",
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert "stopping early" in captured.err
        last = json.loads(captured.out.strip().splitlines()[-1])
        assert last["stable_for"] >= 1 and not last["complete"]

    def test_bad_interval_is_usage_error(self, seg_trace):
        assert main(["watch", str(seg_trace), "--interval", "0"]) == 2

    def test_negative_until_stable_is_usage_error(self, seg_trace):
        assert main(["watch", str(seg_trace), "--until-stable", "-1"]) == 2

    def test_non_segmented_file_is_usage_error(self, tmp_path, capsys):
        from repro.trace import serialize

        trace_file = tmp_path / "t.jsonl"
        trace = api.record("blackscholes", threads=2, scale=0.2, seed=1)
        with open(trace_file, "w", encoding="utf-8") as handle:
            serialize.write_trace(trace, handle)
        assert main(["watch", str(trace_file)]) == 2
        assert "segmented" in capsys.readouterr().err


class TestBackendIdentity:
    def _run_watch(self, path, extra_env):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.update(extra_env)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "watch", str(path),
             "--format", "json"],
            capture_output=True, env=env, timeout=240,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        return proc.stdout

    def test_no_numpy_stream_is_byte_identical(self, seg_trace):
        """The snapshot stream must not depend on the kernel backend."""
        pytest.importorskip("numpy")
        fast = self._run_watch(seg_trace, {"REPRO_NO_NUMPY": ""})
        pure = self._run_watch(seg_trace, {"REPRO_NO_NUMPY": "1"})
        assert fast == pure
        assert fast.count(b"\n") >= 2
