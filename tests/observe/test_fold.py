"""Incremental fold: determinism, batch equivalence, prefix property.

The contract under test (INTERNALS §17): the snapshot sequence is a pure
function of the trace *prefix* — independent of how the bytes arrived
(whole file, arbitrary byte dribbles) — and the terminal snapshot's
``result`` is byte-identical to batch ``repro analyze``.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.observe.fold import (
    SNAPSHOT_VERSION,
    IncrementalFold,
    fold_snapshots,
    run_with_progress,
    snapshot_dumps,
    terminal_snapshot,
)
from repro.serve import protocol
from repro.trace.segments import SegmentTail, write_segmented


@pytest.fixture(scope="module")
def seg_trace(tmp_path_factory):
    trace = api.record("mixed-bag", threads=2, scale=1.0, seed=3)
    path = tmp_path_factory.mktemp("fold") / "t.seg.jsonl.gz"
    write_segmented(trace, path, segment_events=64)
    return path


def _lines(path, **kwargs):
    return [snapshot_dumps(s) for s in fold_snapshots(path, **kwargs)]


class TestFoldBatchEquivalence:
    def test_terminal_result_matches_batch_analyze(self, seg_trace):
        snapshots = list(fold_snapshots(seg_trace))
        terminal = snapshots[-1]
        assert terminal["complete"] is True
        assert terminal["pending"] == 0
        assert terminal["open_sections"] == 0
        batch = api.analyze(seg_trace)
        assert protocol.wire_dumps(terminal["result"]) == \
            protocol.wire_dumps(protocol.analyze_result(batch))

    def test_stream_is_deterministic(self, seg_trace):
        assert _lines(seg_trace) == _lines(seg_trace)

    def test_snapshot_schema(self, seg_trace):
        snapshots = list(fold_snapshots(seg_trace))
        assert [s["seq"] for s in snapshots] == \
            list(range(1, len(snapshots) + 1))
        for snap in snapshots:
            assert snap["v"] == SNAPSHOT_VERSION
            # mid-fold, benign detection has not run yet (those pairs sit
            # in "pending"); at the terminal, benign is its own bucket
            assert snap["ulcps"] == (
                snap["breakdown"]["null_lock"]
                + snap["breakdown"]["read_read"]
                + snap["breakdown"]["disjoint_write"]
                + (snap["breakdown"]["benign"] if snap["complete"] else 0)
            )
            assert snap["stable_for"] >= 0
            assert snap["top"] == [e["lock"] for e in snap["ranking"]]
        assert all(not s["complete"] for s in snapshots[:-1])

    def test_monotone_progress(self, seg_trace):
        snapshots = list(fold_snapshots(seg_trace))
        for prev, cur in zip(snapshots, snapshots[1:-1]):
            assert cur["segments"] == prev["segments"] + 1
            assert cur["events"] >= prev["events"]

    def test_terminal_snapshot_of_in_memory_analysis(self, seg_trace):
        analysis = api.analyze(seg_trace)
        snap = terminal_snapshot(analysis)
        assert snap["complete"] is True
        assert protocol.wire_dumps(snap["result"]) == \
            protocol.wire_dumps(protocol.analyze_result(analysis))


class TestRunWithProgress:
    def test_callback_sequence_matches_generator(self, seg_trace):
        seen = []
        analysis = run_with_progress(seg_trace, on_progress=seen.append)
        assert [snapshot_dumps(s) for s in seen] == _lines(seg_trace)
        assert protocol.wire_dumps(protocol.analyze_result(analysis)) == \
            protocol.wire_dumps(seen[-1]["result"])

    def test_api_analyze_on_progress(self, seg_trace):
        seen = []
        analysis = api.analyze(seg_trace, on_progress=seen.append)
        assert seen, "on_progress never fired"
        assert seen[-1]["complete"] is True
        assert protocol.wire_dumps(seen[-1]["result"]) == \
            protocol.wire_dumps(protocol.analyze_result(analysis))

    def test_api_analyze_on_progress_monolithic(self, tmp_path):
        # the in-memory path emits exactly one terminal snapshot
        from repro.trace import serialize

        trace_file = tmp_path / "t.jsonl"
        trace = api.record("blackscholes", threads=2, scale=0.2, seed=1)
        with open(trace_file, "w", encoding="utf-8") as handle:
            serialize.write_trace(trace, handle)
        seen = []
        analysis = api.analyze(trace_file, on_progress=seen.append)
        assert len(seen) == 1 and seen[0]["complete"] is True
        assert protocol.wire_dumps(seen[0]["result"]) == \
            protocol.wire_dumps(protocol.analyze_result(analysis))


# one small corpus shared by all hypothesis examples, built lazily so
# collection stays cheap
_PREFIX_CACHE = {}


def _prefix_corpus():
    if not _PREFIX_CACHE:
        trace = api.record("blackscholes", threads=2, scale=0.2, seed=1)
        tmp = Path(tempfile.mkdtemp(prefix="repro-prefix-"))
        path = tmp / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=8)
        _PREFIX_CACHE["bytes"] = path.read_bytes()
        _PREFIX_CACHE["lines"] = _lines(path)
    return _PREFIX_CACHE["bytes"], _PREFIX_CACHE["lines"]


class TestPrefixProperty:
    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=24))
    def test_any_byte_dribble_yields_a_prefix_of_the_full_stream(self, cuts):
        """Feeding the file in arbitrary byte chunks emits, at every
        point, an exact prefix of the batch snapshot sequence — and the
        whole sequence (terminal included) once the footer arrives."""
        blob, full_lines = _prefix_corpus()
        with tempfile.TemporaryDirectory(prefix="repro-dribble-") as tmp:
            live = Path(tmp) / "live.seg.jsonl.gz"
            emitted = []
            with SegmentTail(live) as tail:
                offset = 0
                fold = None
                for cut in cuts + [len(blob)]:
                    offset = min(len(blob), offset + cut)
                    live.write_bytes(blob[:offset])
                    for segment in tail.poll():
                        if fold is None:
                            fold = IncrementalFold(tail)
                        fold.add(segment)
                        emitted.append(snapshot_dumps(fold.snapshot()))
                    assert emitted == full_lines[:len(emitted)]
                    if offset == len(blob):
                        break
                assert tail.complete
                _, terminal = fold.finish(live)
            emitted.append(snapshot_dumps(terminal))
            assert emitted == full_lines
