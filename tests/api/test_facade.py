"""Facade smoke tests: the five ``repro.api`` entry points.

One synthetic workload (``tunable-contention``) and one PARSEC model
(``transmissionBT``) are pushed through every stage, both through
``repro.api`` directly and through the top-level re-exports.
"""

import warnings

import pytest

import repro
from repro import api
from repro.analysis.pairs import PairAnalysis
from repro.analysis.transform import TransformResult
from repro.perfdebug.framework import DebugReport
from repro.record.recorder import RecordResult
from repro.replay.results import ReplayResult, ReplaySeries
from repro.telemetry import Telemetry
from repro.trace.trace import Trace

SYNTHETIC = "tunable-contention"
PARSEC = "transmissionBT"


@pytest.fixture(scope="module", params=[SYNTHETIC, PARSEC])
def trace(request):
    return api.record(request.param, threads=2, seed=0)


class TestRecord:
    def test_returns_trace(self, trace):
        assert isinstance(trace, Trace)
        assert len(trace) > 0

    def test_full_returns_record_result(self):
        result = api.record(PARSEC, seed=0, full=True)
        assert isinstance(result, RecordResult)
        assert isinstance(result.trace, Trace)

    def test_workload_instance_and_raw_programs(self):
        from repro.workloads.base import get_workload

        workload = get_workload(PARSEC, threads=2, seed=0)
        from_instance = api.record(workload, seed=0)
        assert isinstance(from_instance, Trace)

    def test_deterministic(self):
        a = api.record(SYNTHETIC, seed=3)
        b = api.record(SYNTHETIC, seed=3)
        assert [e.encode() for e in a.iter_events()] == \
            [e.encode() for e in b.iter_events()]

    def test_unknown_workload_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            api.record("not-a-workload")


class TestAnalyze:
    def test_returns_pair_analysis(self, trace):
        analysis = api.analyze(trace)
        assert isinstance(analysis, PairAnalysis)
        b = analysis.breakdown
        assert (b.null_lock + b.read_read + b.disjoint_write
                + b.benign + b.tlcp) == len(analysis.pairs)

    def test_accepts_path(self, trace, tmp_path):
        from repro.trace import serialize

        path = tmp_path / "t.jsonl.gz"
        serialize.dump(trace, path)
        analysis = api.analyze(str(path))
        assert isinstance(analysis, PairAnalysis)


class TestTransform:
    def test_returns_trace_by_default(self, trace):
        freed = api.transform(trace)
        assert isinstance(freed, Trace)

    def test_full_returns_transform_result(self, trace):
        result = api.transform(trace, full=True)
        assert isinstance(result, TransformResult)
        assert isinstance(result.trace, Trace)


class TestReplay:
    def test_single_run(self, trace):
        result = api.replay(trace)
        assert isinstance(result, ReplayResult)
        assert result.end_time > 0

    def test_series(self, trace):
        series = api.replay(trace, runs=3, seed=0)
        assert isinstance(series, ReplaySeries)
        assert len(series.runs) == 3

    def test_jobs_matches_serial(self, trace):
        serial = api.replay(trace, runs=3, seed=0, jobs=1)
        parallel = api.replay(trace, runs=3, seed=0, jobs=2)
        assert serial.end_times == parallel.end_times

    def test_unknown_scheme_rejected(self, trace):
        with pytest.raises(ValueError):
            api.replay(trace, scheme="TURBO-S")

    def test_base_seed_retired(self, trace):
        # the base_seed= -> seed= DeprecationWarning shim served its one
        # release; the old spelling is now rejected like any unknown field
        with pytest.raises(TypeError, match="base_seed"):
            api.replay(trace, runs=2, base_seed=5)

    def test_options_object(self, trace):
        from repro.options import ReplayOptions

        modern = api.replay(trace, ReplayOptions(runs=2, seed=5))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = api.replay(trace, runs=2, seed=5)
        assert modern.end_times == legacy.end_times

    def test_options_and_kwargs_conflict(self, trace):
        from repro.options import ReplayOptions

        with pytest.raises(TypeError):
            api.replay(trace, ReplayOptions(runs=2), seed=1)

    def test_unknown_kwarg_rejected(self, trace):
        with pytest.raises(TypeError):
            api.replay(trace, bogus=1)


class TestDebug:
    def test_from_trace(self, trace):
        report = api.debug(trace)
        assert isinstance(report, DebugReport)
        assert "PERFPLAY report" in report.render()

    def test_from_workload_name(self):
        report = api.debug(PARSEC, seed=0)
        assert isinstance(report, DebugReport)

    def test_from_path(self, trace, tmp_path):
        from repro.trace import serialize

        path = tmp_path / "t.jsonl.gz"
        serialize.dump(trace, path)
        report = api.debug(str(path))
        assert isinstance(report, DebugReport)


class TestTelemetryKwarg:
    def test_every_entry_point_accepts_a_sink(self):
        sink = Telemetry()
        trace = api.record(SYNTHETIC, seed=0, telemetry=sink)
        api.analyze(trace, telemetry=sink)
        freed = api.transform(trace, telemetry=sink)
        api.replay(freed, telemetry=sink)
        api.debug(trace, telemetry=sink)
        for counter in ("record.traces", "analyze.pairs",
                        "transform.runs", "replay.runs"):
            assert sink.counters.get(counter, 0) > 0
        keys = {n.key for n in sink.spans()}
        assert "record" in keys
        assert "transform" in keys

    def test_explicit_sink_shadows_ambient(self):
        from repro.telemetry import use_telemetry

        ambient, explicit = Telemetry(), Telemetry()
        with use_telemetry(ambient):
            api.record(SYNTHETIC, seed=0, telemetry=explicit)
        assert "record.traces" not in ambient.counters
        assert explicit.counters["record.traces"] == 1


class TestTopLevelReexports:
    def test_facade_is_the_package_surface(self):
        assert repro.record is api.record
        assert repro.analyze is api.analyze
        assert repro.transform is api.transform
        assert repro.replay is api.replay
        assert repro.debug is api.debug
        assert repro.telemetry.Telemetry is Telemetry
