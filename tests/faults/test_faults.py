"""The fault-injection harness itself: rules, plans, corruption tools."""

import pickle

import pytest

from repro import faults
from repro.errors import FaultInjected, ReproError
from repro.faults import FaultPlan, FaultRule, corrupt_file, parse_rule


class TestRuleMatching:
    def test_first_hit_fires_by_default(self):
        plan = FaultPlan(rules=[FaultRule(site="pool.worker_crash")])
        assert plan.fires("pool.worker_crash")
        assert not plan.fires("pool.worker_crash")

    def test_nth_and_times_window(self):
        plan = FaultPlan(
            rules=[FaultRule(site="pool.worker_crash", nth=2, times=2)]
        )
        outcomes = [plan.fires("pool.worker_crash") for _ in range(5)]
        assert outcomes == [False, True, True, False, False]

    def test_key_selector(self):
        plan = FaultPlan(rules=[FaultRule(site="pool.worker_crash", key=3)])
        assert not plan.fires("pool.worker_crash", key=2)
        assert plan.fires("pool.worker_crash", key=3)

    def test_attempt_selector(self):
        plan = FaultPlan(
            rules=[FaultRule(site="pool.worker_crash", key=1, attempt=0)]
        )
        assert plan.fires("pool.worker_crash", key=1, attempt=0)
        assert not plan.fires("pool.worker_crash", key=1, attempt=1)

    def test_other_sites_do_not_fire(self):
        plan = FaultPlan(rules=[FaultRule(site="trace.truncate")])
        assert not plan.fires("pool.worker_crash")
        assert plan.fires("trace.truncate")

    def test_rate_mode_is_deterministic(self):
        plan = FaultPlan(
            seed=7, rules=[FaultRule(site="cache.blob_corrupt", rate=0.5)]
        )
        first = [plan.fires("cache.blob_corrupt", key="k") for _ in range(50)]
        plan.reset()
        second = [plan.fires("cache.blob_corrupt", key="k") for _ in range(50)]
        assert first == second
        assert any(first) and not all(first)

    def test_rate_mode_depends_on_seed(self):
        rows = []
        for seed in (0, 1):
            plan = FaultPlan(
                seed=seed, rules=[FaultRule(site="cache.blob_corrupt", rate=0.5)]
            )
            rows.append(
                tuple(plan.fires("cache.blob_corrupt", key="k") for _ in range(50))
            )
        assert rows[0] != rows[1]

    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultRule(site="pool.nonsense")

    def test_pickling_drops_hit_counters(self):
        plan = FaultPlan(rules=[FaultRule(site="pool.worker_crash")])
        assert plan.fires("pool.worker_crash")
        clone = pickle.loads(pickle.dumps(plan))
        # the clone starts fresh: its first hit fires again
        assert clone.fires("pool.worker_crash")


class TestParseRule:
    def test_plain_site(self):
        rule = parse_rule("trace.truncate")
        assert rule == FaultRule(site="trace.truncate")

    def test_key_and_options(self):
        rule = parse_rule("pool.worker_crash@2:attempt=0,times=3")
        assert rule.site == "pool.worker_crash"
        assert rule.key == 2  # int-looking keys become task indexes
        assert rule.attempt == 0
        assert rule.times == 3

    def test_string_key(self):
        assert parse_rule("sim.thread_kill@t1").key == "t1"

    def test_rate_option(self):
        assert parse_rule("cache.blob_corrupt:rate=0.25").rate == 0.25

    def test_bad_option_rejected(self):
        with pytest.raises(ReproError, match="bad fault rule option"):
            parse_rule("trace.truncate:bogus=1")

    def test_every_advertised_site_parses(self):
        for site in faults.SITES:
            assert parse_rule(site).site == site


class TestActivePlan:
    def test_no_plan_never_fires(self):
        assert not faults.enabled()
        assert not faults.fires("pool.worker_crash")
        faults.fire("pool.worker_crash")  # no plan: no raise

    def test_use_plan_scopes_activation(self):
        plan = FaultPlan(rules=[FaultRule(site="sim.thread_exception")])
        with faults.use_plan(plan):
            assert faults.enabled()
            assert faults.active() is plan
            with pytest.raises(FaultInjected, match="sim.thread_exception"):
                faults.fire("sim.thread_exception")
        assert not faults.enabled()

    def test_use_plan_restores_on_error(self):
        plan = FaultPlan(rules=[])
        with pytest.raises(RuntimeError):
            with faults.use_plan(plan):
                raise RuntimeError("boom")
        assert faults.active() is None


class TestCorruptFile:
    def test_truncate_halves_the_file(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(bytes(range(100)))
        corrupt_file(path, "truncate")
        assert path.read_bytes() == bytes(range(50))

    def test_bitflip_changes_one_byte(self, tmp_path):
        path = tmp_path / "blob"
        original = bytes(range(90))
        path.write_bytes(original)
        corrupt_file(path, "bitflip")
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        diffs = [i for i, (a, b) in enumerate(zip(original, damaged)) if a != b]
        assert diffs == [30]

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        payload = b"x" * 64
        for path in (a, b):
            path.write_bytes(payload)
            corrupt_file(path, "bitflip")
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"data")
        with pytest.raises(ReproError, match="unknown corruption mode"):
            corrupt_file(path, "scramble")
