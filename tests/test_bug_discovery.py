"""End-to-end bug discovery: does the tool find the paper's actual bugs?

§6.6's claim is that PERFPLAY pinpoints the performance-critical ULCPs of
real programs.  Our workload models place the documented bugs at their
real source coordinates, so the pipeline's recommendations can be checked
against the paper's ground truth.
"""

from repro.perfdebug import PerfPlay
from repro.workloads import get_workload


def recommendations_for(app, threads=4):
    trace = get_workload(app, threads=threads).record().trace
    return PerfPlay().analyze(trace).recommendations


class TestBugDiscovery:
    def test_pbzip2_top_recommendation_is_bug2(self):
        """#BUG 2 (Figure 18): the consumer shutdown check at
        pbzip2.cpp:2109 must be the #1 recommendation."""
        recommendations = recommendations_for("pbzip2")
        top = recommendations[0]
        assert "pbzip2.cpp:2109" in top.where
        assert top.p > 0.5

    def test_mysql_finds_the_hash_lookup_serialization(self):
        """Bug #69276 (Case 8): the fil0fil.cc lookups must rank high."""
        recommendations = recommendations_for("mysql")
        top3 = " | ".join(r.where for r in recommendations[:3])
        assert "fil0fil.cc" in top3

    def test_openldap_reports_the_spinwait_region(self):
        """#BUG 1 (Figure 4): the mp_fopen.c poll loop must be reported.

        Its P share is ~0 by design — BUG 1 is a *resource wasting* bug
        (spinning CPU), not a makespan bug (Figure 19 makes exactly that
        distinction) — so the waste must show up in the report's direct
        spin metric instead.
        """
        trace = get_workload("openldap", threads=4).record().trace
        report = PerfPlay().analyze(trace)
        spin = [r for r in report.recommendations if "mp_fopen.c" in r.where]
        assert spin, [r.where for r in report.recommendations]
        # the transformation removes the spin-lock waits entirely
        assert report.spin_waste_removed > 0
        assert report.original_replay.total_spin_ns > 0
        assert report.free_replay.total_spin_ns == 0

    def test_case9_points_at_the_query_cache(self):
        """Bug #68573: the try_lock region in sql_cache.cc."""
        recommendations = recommendations_for("case9-querycache-timeout",
                                              threads=6)
        assert recommendations
        assert "sql_cache.cc" in recommendations[0].where

    def test_clean_apps_recommend_nothing(self):
        for app in ("blackscholes", "swaptions"):
            assert recommendations_for(app, threads=2) == []
