"""Timeline construction: lanes, classification, holders, salvage."""

import pytest

from repro import api
from repro.analysis import analyze_pairs
from repro.perfdebug.framework import PerfPlay
from repro.timeline import (
    BLOCKED,
    COMPUTE,
    CS,
    LOCK_WAIT,
    STALL,
    build_timeline,
    classification_map,
)
from repro.trace import serialize


@pytest.fixture(scope="module")
def trace():
    return api.record("transmissionBT", threads=2, seed=0)


@pytest.fixture(scope="module")
def analysis(trace):
    return analyze_pairs(trace)


class TestTraceLanes:
    def test_one_lane_per_thread(self, trace):
        timeline = build_timeline(trace)
        assert set(timeline.thread_ids) == set(trace.thread_ids)
        assert timeline.source == "trace"
        assert timeline.end_time > 0

    def test_kinds_present(self, trace):
        timeline = build_timeline(trace)
        assert timeline.count(COMPUTE) > 0
        assert timeline.count(CS) > 0

    def test_cs_sections_match_acquire_count(self, trace):
        # every acquire opens exactly one critical section
        timeline = build_timeline(trace, merge=False)
        acquires = sum(
            1 for e in trace.iter_events() if e.kind == "acquire"
        )
        assert timeline.count(CS) == acquires

    def test_intervals_are_sorted_and_well_formed(self, trace):
        timeline = build_timeline(trace)
        for tid in timeline.thread_ids:
            lane = timeline.lanes[tid]
            assert all(iv.t_start <= iv.t_end for iv in lane)
            assert all(
                lane[i].t_start <= lane[i + 1].t_start
                for i in range(len(lane) - 1)
            )

    def test_classification_annotates_sections(self, trace, analysis):
        timeline = build_timeline(trace, analysis=analysis)
        kinds = classification_map(analysis)
        assert kinds, "workload should have classified pairs"
        annotated = {
            iv.ulcp
            for iv in timeline.iter_intervals()
            if iv.kind in (CS, LOCK_WAIT) and iv.ulcp
        }
        assert annotated <= {
            "null_lock", "read_read", "disjoint_write", "benign", "tlcp"
        }
        assert annotated, "some section should carry a classification"

    def test_lock_waits_attribute_a_holder(self, trace):
        timeline = build_timeline(trace)
        waits = [
            iv for iv in timeline.iter_intervals() if iv.kind == LOCK_WAIT
        ]
        assert waits, "workload should contend at least once"
        lanes = set(timeline.thread_ids)
        for iv in waits:
            assert iv.lock
            if iv.holder:
                assert iv.holder in lanes
                assert iv.holder != iv.tid
        assert any(iv.holder for iv in waits)


class TestReplaySource:
    def test_replay_without_intervals_is_an_error(self, trace):
        replay = api.replay(trace, jitter=0.0)
        with pytest.raises(ValueError, match="timeline"):
            build_timeline(trace, replay=replay)

    def test_replay_lanes_reuse_live_intervals(self, trace, analysis):
        replay = api.replay(trace, jitter=0.0, timeline=True)
        timeline = build_timeline(trace, analysis=analysis, replay=replay)
        assert timeline.source == "replay"
        assert timeline.scheme == replay.scheme
        assert timeline.count(COMPUTE) > 0
        assert timeline.count(CS) > 0

    def test_jittered_replay_shows_gate_stalls(self):
        # under jitter a thread can reach an access *early*; the ELSC
        # gate vetoes it to preserve the recorded order, and the veto
        # surfaces as a replay-stall interval — invisible to a plain
        # trace walk (a jitter-free replay reproduces the recorded
        # timing exactly, so its gates never fire)
        trace = api.record("pbzip2", threads=2, seed=0)
        replay = api.replay(trace, jitter=0.05, timeline=True)
        timeline = build_timeline(trace, replay=replay)
        assert timeline.source == "replay"
        assert timeline.count(STALL) > 0

    def test_transformed_replay_builds_both_timelines(self):
        trace = api.record("pbzip2", threads=2, seed=0)
        report = PerfPlay(jitter=0.0).analyze(trace, timeline=True)
        original, free = report.timelines()
        assert original.source == "replay" and free.source == "replay"
        assert free.count(COMPUTE) > 0

    def test_blocked_intervals_survive(self):
        # pbzip2's consumers wait on a condvar: blocked intervals must
        # exist in both the trace-side and the replay-sourced view
        trace = api.record("pbzip2", threads=2, seed=0)
        replay = api.replay(trace, jitter=0.0, timeline=True)
        timeline = build_timeline(trace, replay=replay)
        trace_side = build_timeline(trace)
        assert timeline.count(BLOCKED) > 0
        assert trace_side.count(BLOCKED) > 0


class TestSalvagedTraces:
    """Regression: the lane builder must tolerate trimmed/truncated input."""

    def _salvaged(self, tmp_path, keep=0.6):
        trace = api.record("transmissionBT", threads=2, seed=0)
        path = tmp_path / "t.jsonl"
        serialize.dump(trace, path)
        text = path.read_text()
        path.write_text(text[: int(len(text) * keep)])
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return serialize.load_trace(path, salvage=True).trace

    def test_truncated_trace_builds_lanes(self, tmp_path):
        salvaged = self._salvaged(tmp_path)
        timeline = build_timeline(salvaged)
        assert len(timeline) > 0
        assert timeline.count(COMPUTE) > 0

    def test_unbalanced_sections_are_closed_not_fatal(self, tmp_path):
        # drop every RELEASE event: every acquire leaves an open section
        trace = api.record("transmissionBT", threads=2, seed=0)
        for tid in list(trace.threads):
            trace.threads[tid] = [
                e for e in trace.threads[tid] if e.kind != "release"
            ]
        trace._columnar = None  # rebuild the interned core
        trace._scan = None
        timeline = build_timeline(trace)
        unclosed = [
            iv for iv in timeline.iter_intervals() if iv.detail == "unclosed"
        ]
        assert unclosed, "open sections must close at the lane's end"
        for iv in unclosed:
            assert iv.t_end >= iv.t_start

    def test_salvaged_trace_renders_report(self, tmp_path):
        salvaged = self._salvaged(tmp_path)
        html = api.report(salvaged)
        assert html.startswith("<!DOCTYPE html>")
