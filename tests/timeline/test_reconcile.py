"""The reconciliation contract: interval sums == machine accounting.

For every workload (synthetic bug cases + PARSEC + real-world models),
the timeline's per-thread interval sums must reproduce the replayer's
``ThreadStats`` exactly:

* ``spin_ns``  == sum of spinning lock_wait/stall intervals
* ``block_ns`` == sum of non-spin lock_wait/stall + blocked intervals
* ``cpu_ns``   == sum of compute + overhead intervals + ``spin_ns``

Replay-sourced lanes (IntervalCollector) reconcile even under jitter —
the collector sees the actual jittered compute charges; trace-side lanes
reconcile for jitter-free replays.
"""

import pytest

from repro import api
from repro.perfdebug.framework import PerfPlay
from repro.timeline import build_timeline, reconcile
from repro.workloads import workload_names

ALL_WORKLOADS = workload_names()


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_replay_timeline_reconciles_exactly(name):
    trace = api.record(name, threads=2, seed=0)
    replay = api.replay(trace, jitter=0.02, timeline=True)
    timeline = build_timeline(trace, replay=replay)
    assert reconcile(timeline, replay.machine_result) == []


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_trace_timeline_reconciles_with_jitterfree_replay(name):
    trace = api.record(name, threads=2, seed=0)
    replay = api.replay(trace, jitter=0.0)
    timeline = build_timeline(trace)
    assert reconcile(timeline, replay.machine_result) == []


@pytest.mark.parametrize("name", ["pbzip2", "mysql", "fluidanimate", "dedup"])
def test_transformed_replay_timeline_reconciles(name):
    # transformed replays run in DLS or lockset (gated) mode; stall
    # intervals must land in the same accounting bucket the machine used
    trace = api.record(name, threads=2, seed=0)
    report = PerfPlay(jitter=0.0).analyze(trace, timeline=True)
    original, free = report.timelines()
    assert reconcile(original, report.original_replay.machine_result) == []
    assert reconcile(free, report.free_replay.machine_result) == []
