"""Export determinism: Chrome trace JSON and columnar JSON.

The artifact contract matches TELEMETRY.json: byte-identical across
repeated runs and across ``--jobs 1`` vs ``--jobs N`` (the whole
record→analyze→export pipeline runs inside pool workers here, so any
worker-order or interning nondeterminism would change the bytes).
"""

import json

import pytest

from repro import api
from repro.analysis import analyze_pairs
from repro.timeline import (
    build_timeline,
    from_columnar_json,
    timeline_to_events,
    to_chrome_json,
    to_columnar_json,
)


def _chrome_json(workload: str = "transmissionBT") -> str:
    trace = api.record(workload, threads=2, seed=0)
    analysis = analyze_pairs(trace)
    return to_chrome_json(build_timeline(trace, analysis=analysis))


def _columnar_json(workload: str = "transmissionBT") -> str:
    trace = api.record(workload, threads=2, seed=0)
    return to_columnar_json(build_timeline(trace))


@pytest.fixture(scope="module")
def timeline():
    trace = api.record("transmissionBT", threads=2, seed=0)
    return build_timeline(trace, analysis=analyze_pairs(trace))


class TestChromeExport:
    def test_document_shape(self, timeline):
        doc = json.loads(to_chrome_json(timeline))
        assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
        assert doc["metadata"]["unit"] == "1 simulated ns = 1 trace us"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X"} <= phases

    def test_slices_carry_ulcp_categories(self, timeline):
        doc = json.loads(to_chrome_json(timeline))
        cats = {
            c for e in doc["traceEvents"] for c in e.get("cat", "").split(",")
        }
        assert "timeline.cs" in cats
        assert any(c.startswith("ulcp.") for c in cats)

    def test_flow_events_pair_waiter_to_holder(self, timeline):
        events = timeline_to_events(timeline)
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        assert starts, "contended workload must emit flow arrows"
        assert set(starts) == set(finishes)
        for flow_id, start in starts.items():
            finish = finishes[flow_id]
            assert finish["bp"] == "e"
            assert start["tid"] != finish["tid"]  # waiter -> holder lane
            assert start["ts"] <= finish["ts"]

    def test_metadata_names_every_lane(self, timeline):
        events = timeline_to_events(timeline)
        names = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names == timeline.thread_ids

    def test_multi_timeline_export_separates_pids(self, timeline):
        doc = json.loads(to_chrome_json(timeline, timeline))
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}

    def test_repeat_runs_are_byte_identical(self):
        assert _chrome_json() == _chrome_json()


class TestColumnarExport:
    def test_round_trip_is_exact(self, timeline):
        restored = from_columnar_json(to_columnar_json(timeline))
        assert restored.name == timeline.name
        assert restored.thread_ids == timeline.thread_ids
        assert restored.thread_start == timeline.thread_start
        assert restored.thread_end == timeline.thread_end
        for tid in timeline.thread_ids:
            assert restored.lanes[tid] == timeline.lanes[tid]

    def test_repeat_runs_are_byte_identical(self):
        assert _columnar_json() == _columnar_json()


# module-level so the pool can pickle it by reference
def _export_cell(spec):
    workload, fmt = spec
    return _chrome_json(workload) if fmt == "chrome" else _columnar_json(workload)


class TestJobsDeterminism:
    """``--jobs N`` artifacts == ``--jobs 1`` artifacts, byte for byte."""

    TASKS = [
        ("transmissionBT", "chrome"),
        ("transmissionBT", "columnar"),
        ("pbzip2", "chrome"),
        ("pbzip2", "columnar"),
    ]

    def test_parallel_export_matches_serial(self):
        from repro.runner.pool import parallel_map

        serial = parallel_map(_export_cell, self.TASKS, jobs=1)
        pooled = parallel_map(_export_cell, self.TASKS, jobs=2)
        assert pooled == serial
