"""Structured logging (`repro.log`): formats, run ids, event wiring."""

import io
import json
import logging
import warnings

import pytest

from repro import api, log
from repro.trace import serialize


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """Isolate logging state: strip package handlers, restore propagation."""
    root = logging.getLogger(log.ROOT)
    saved_handlers = list(root.handlers)
    saved_propagate = root.propagate
    saved_level = root.level
    for handler in saved_handlers:
        root.removeHandler(handler)
    root.propagate = True
    root.setLevel(logging.NOTSET)
    yield
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for handler in saved_handlers:
        root.addHandler(handler)
    root.propagate = saved_propagate
    root.setLevel(saved_level)


def _configure(level="info", json_lines=False):
    stream = io.StringIO()
    log.configure(level, json_lines=json_lines, stream=stream)
    return stream


class TestConfigure:
    def test_single_handler_even_when_reconfigured(self):
        _configure()
        _configure()
        root = logging.getLogger(log.ROOT)
        assert len(root.handlers) == 1

    def test_level_filtering(self):
        stream = _configure(level="warning")
        log.get_logger("x").info("quiet")
        log.get_logger("x").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log.configure("loud")

    def test_line_format_includes_fields(self):
        stream = _configure()
        log.get_logger("runner.pool").warning(
            "task 3 crash", extra={"event": "pool.task_failure", "task": 3}
        )
        line = stream.getvalue().strip()
        assert line.startswith("repro.runner.pool WARNING task 3 crash")
        assert "event=pool.task_failure" in line
        assert "task=3" in line

    def test_json_format_one_object_per_line(self):
        stream = _configure(json_lines=True)
        log.get_logger("a").info("first", extra={"k": 1})
        log.get_logger("b").warning("second")
        lines = stream.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "level": "info", "logger": "repro.a", "message": "first", "k": 1,
        }
        assert records[1]["level"] == "warning"


class TestRunScope:
    def test_run_ids_are_deterministic_counters(self):
        with log.run_scope("debug") as rid:
            assert rid.startswith("debug-")
            assert log.current_run_id() == rid

    def test_scopes_nest_and_restore(self):
        assert log.current_run_id() == ""
        with log.run_scope("outer") as outer:
            with log.run_scope("inner") as inner:
                assert log.current_run_id() == inner
            assert log.current_run_id() == outer
        assert log.current_run_id() == ""

    def test_records_carry_the_ambient_run_id(self):
        stream = _configure(json_lines=True)
        with log.run_scope("analyze") as rid:
            log.get_logger("x").info("inside")
        log.get_logger("x").info("outside")
        first, second = [
            json.loads(line) for line in stream.getvalue().strip().splitlines()
        ]
        assert first["run_id"] == rid
        assert "run_id" not in second

    def test_facade_calls_open_a_scope(self):
        # every repro.api entry point wraps its body in _call(name, sink),
        # so diagnostics emitted anywhere inside carry the facade run id
        from repro.api import _call

        assert log.current_run_id() == ""
        with _call("debug", None):
            assert log.current_run_id().startswith("debug-")
        assert log.current_run_id() == ""


class TestEventWiring:
    def test_pool_failures_are_logged(self, caplog):
        from repro import faults
        from repro.faults import FaultPlan, parse_rule
        from repro.runner import ExecPolicy
        from repro.runner.pool import parallel_map

        plan = FaultPlan(seed=0, rules=[parse_rule("pool.worker_crash@1:attempt=0")])
        with caplog.at_level(logging.WARNING, logger="repro.runner.pool"):
            with faults.use_plan(plan):
                results = parallel_map(
                    _double, [1, 2, 3], jobs=1, policy=ExecPolicy(retries=1)
                )
        assert results == [2, 4, 6]
        failures = [
            r for r in caplog.records
            if getattr(r, "event", "") == "pool.task_failure"
        ]
        assert len(failures) == 1
        assert failures[0].task == 1
        assert failures[0].kind == "crash"
        assert failures[0].retry is True

    def test_pool_quarantine_is_logged(self, caplog):
        from repro.runner import ExecPolicy
        from repro.runner.pool import parallel_map

        with caplog.at_level(logging.WARNING, logger="repro.runner.pool"):
            results = parallel_map(
                _fail_on_two, [1, 2, 3], jobs=1,
                policy=ExecPolicy(partial=True),
            )
        assert results[0] == 2 and results[2] == 6
        quarantines = [
            r for r in caplog.records
            if getattr(r, "event", "") == "pool.quarantine"
        ]
        assert len(quarantines) == 1
        assert quarantines[0].task == 1

    def test_salvage_load_is_logged(self, caplog, tmp_path):
        trace = api.record("transmissionBT", threads=2, seed=0)
        path = tmp_path / "t.jsonl"
        serialize.dump(trace, path)
        text = path.read_text()
        path.write_text(text[: int(len(text) * 0.6)])
        with caplog.at_level(logging.INFO, logger="repro.trace.salvage"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                serialize.load_trace(path, salvage=True)
        events = [
            r for r in caplog.records
            if getattr(r, "event", "") == "trace.salvage"
        ]
        assert len(events) == 1
        assert events[0].kept_events > 0
        assert events[0].source == str(path)


def _double(x):
    return x * 2


def _fail_on_two(x):
    if x == 2:
        raise RuntimeError("boom")
    return x * 2
