"""Tests for the fix advisor and the lock-contention profiler."""

from repro.analysis import transform
from repro.analysis.ulcp import NULL_LOCK, READ_READ
from repro.perfdebug.advisor import CATEGORY_FIXES, advise
from repro.perfdebug.lockstats import profile_locks, render_lock_profiles
from repro.record import record
from repro.replay import Replayer
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace import CodeSite
from repro.workloads import get_workload


def site(line):
    return CodeSite("adv.c", line, "f")


def mixed_workload(rounds=5):
    """Read-read ULCPs on one lock plus null-locks on another."""

    def worker(k):
        for _ in range(rounds):
            yield Compute(150 + 11 * k, site=site(10))
            yield Acquire(lock="data", site=site(11))
            yield Read("table", site=site(12))
            yield Compute(300, site=site(13))
            yield Release(lock="data", site=site(14))
            yield Acquire(lock="status", site=site(20))
            yield Release(lock="status", site=site(21))

    def init():
        yield Write("table", op=Store(1), site=site(1))

    return [(worker(0), "a"), (worker(1), "b"), (init(), "init")]


class TestAdvisor:
    def test_estimates_cover_present_categories(self):
        trace = record(mixed_workload(), name="advise").trace
        advice = advise(trace)
        categories = {e.category for e in advice.estimates}
        assert READ_READ in categories
        assert NULL_LOCK in categories

    def test_read_read_fix_dominates(self):
        trace = record(mixed_workload(), name="advise").trace
        advice = advise(trace)
        assert advice.best.category == READ_READ
        assert advice.best.gain_ns > 0
        assert advice.best.suggestion == CATEGORY_FIXES[READ_READ]

    def test_category_gains_bounded_by_total(self):
        trace = record(mixed_workload(), name="advise").trace
        advice = advise(trace)
        for estimate in advice.estimates:
            assert 0 <= estimate.gain_ns <= advice.total_gain_ns + 200

    def test_selective_transform_keeps_other_serialization(self):
        trace = record(mixed_workload(), name="advise").trace
        replayer = Replayer(jitter=0.0)
        only_null = transform(trace, fix_categories={NULL_LOCK})
        everything = transform(trace)
        t_null = replayer.replay_transformed(only_null).end_time
        t_all = replayer.replay_transformed(everything).end_time
        # fixing only null-locks cannot beat fixing everything
        assert t_null >= t_all

    def test_clean_trace_gives_no_estimates(self):
        def worker(k):
            for i in range(3):
                yield Compute(100, site=site(30))
                yield Acquire(lock="L", site=site(31))
                value = yield Read("x", site=site(32))
                yield Write("x", op=Store(value + k + 1), site=site(33))
                yield Release(lock="L", site=site(34))

        trace = record([(worker(0), "a"), (worker(1), "b")], name="clean").trace
        advice = advise(trace)
        assert advice.estimates == []
        assert "earning their keep" in advice.render()

    def test_render_lists_suggestions(self):
        trace = record(mixed_workload(), name="advise").trace
        text = advise(trace).render()
        assert "Fix advisor" in text
        assert "readers-writer" in text


class TestLockStats:
    def test_profiles_sorted_by_wait(self):
        trace = get_workload("mysql").record().trace
        profiles = profile_locks(trace)
        waits = [p.total_wait_ns for p in profiles]
        assert waits == sorted(waits, reverse=True)

    def test_counts_match_trace(self):
        trace = record(mixed_workload(), name="locks").trace
        profiles = {p.lock: p for p in profile_locks(trace)}
        assert profiles["data"].acquisitions == 10
        assert profiles["status"].acquisitions == 10
        assert profiles["data"].threads == {"t0", "t1"}

    def test_contention_rate_and_hold(self):
        trace = record(mixed_workload(), name="locks").trace
        profiles = {p.lock: p for p in profile_locks(trace)}
        data = profiles["data"]
        assert 0.0 <= data.contention_rate <= 1.0
        assert data.mean_hold_ns > 0
        assert data.contended > 0  # 300ns sections with short gaps contend

    def test_hot_sites_reported(self):
        trace = record(mixed_workload(), name="locks").trace
        profiles = {p.lock: p for p in profile_locks(trace)}
        assert any("adv.c:11" in s for s in profiles["data"].top_sites())

    def test_render(self):
        trace = record(mixed_workload(), name="locks").trace
        text = render_lock_profiles(profile_locks(trace))
        assert "lock" in text
        assert "data" in text

    def test_render_limit(self):
        trace = get_workload("vips").record().trace
        text = render_lock_profiles(profile_locks(trace), limit=2)
        assert "more locks" in text
