"""Tests for Eq. 1 metrics, Algorithm 2 fusion, and Eq. 2 ranking."""

from repro.analysis import transform
from repro.perfdebug import (
    evaluate_pairs,
    fuse,
    performance_degradation,
    recommend,
    resource_wasting,
)
from repro.perfdebug.fusion import FusedUlcp
from repro.perfdebug.metrics import UlcpPerformance
from repro.record import record
from repro.replay import ELSC_S, Replayer
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace import CodeRegion, CodeSite


def site(line, file="app.c"):
    return CodeSite(file, line, "hot")


def readonly_contenders(threads=3, rounds=4, cs_len=400):
    """Same-code read-read ULCPs (all from one region)."""

    def prog(k):
        for _ in range(rounds):
            yield Compute(60, site=site(5))
            yield Acquire(lock="L", site=site(6))
            yield Read("cfg", site=site(7))
            yield Compute(cs_len, site=site(8))
            yield Release(lock="L", site=site(9))

    def init():
        yield Write("cfg", op=Store(1), site=site(1))

    programs = [(prog(k), f"w{k}") for k in range(threads)]
    programs.append((init(), "init"))
    return programs


def pipeline(programs):
    rec = record(programs, name="metrics-test")
    result = transform(rec.trace)
    replayer = Replayer(jitter=0.0)
    original = replayer.replay(rec.trace, scheme=ELSC_S)
    free = replayer.replay_transformed(result)
    return rec, result, original, free


class TestEq1:
    def test_positive_delta_for_contended_read_read(self):
        rec, result, original, free = pipeline(readonly_contenders())
        perfs = evaluate_pairs(result, original, free)
        assert perfs, "expected ULCPs"
        assert sum(p.delta_t for p in perfs) > 0

    def test_every_ulcp_scored(self):
        rec, result, original, free = pipeline(readonly_contenders())
        perfs = evaluate_pairs(result, original, free)
        assert len(perfs) == len(result.analysis.ulcps)

    def test_tpd_positive_when_contention_removed(self):
        rec, result, original, free = pipeline(readonly_contenders())
        assert performance_degradation(original, free) > 0

    def test_trw_nonnegative(self):
        rec, result, original, free = pipeline(readonly_contenders())
        perfs = evaluate_pairs(result, original, free)
        t_pd = performance_degradation(original, free)
        assert resource_wasting(perfs, t_pd) >= 0


def perf(delta, r1, r2):
    """Fabricate an UlcpPerformance with given regions."""

    class _CS:
        def __init__(self, region):
            self._region = region
            self.uid = f"cs-{id(self)}"

        @property
        def region(self):
            return self._region

    class _Pair:
        def __init__(self):
            self.c1 = _CS(r1)
            self.c2 = _CS(r2)
            self.kind = "read_read"

        @property
        def region1(self):
            return self.c1.region

        @property
        def region2(self):
            return self.c2.region

    return UlcpPerformance(
        pair=_Pair(),
        delta_t=delta,
        time1_original=0,
        time1_free=0,
        time23_original=delta,
        time23_free=0,
    )


class TestFusion:
    def test_same_region_pairs_fuse(self):
        r = CodeRegion("a.c", 10, 20)
        groups = fuse([perf(100, r, r), perf(50, r, r)])
        assert len(groups) == 1
        assert groups[0].delta_t == 150
        assert groups[0].count == 2

    def test_crossed_orientation_fuses(self):
        r1 = CodeRegion("a.c", 10, 20)
        r2 = CodeRegion("a.c", 30, 40)
        groups = fuse([perf(100, r1, r2), perf(50, r2, r1)])
        assert len(groups) == 1
        assert groups[0].delta_t == 150

    def test_disjoint_regions_stay_separate(self):
        r1 = CodeRegion("a.c", 10, 20)
        r2 = CodeRegion("a.c", 100, 120)
        groups = fuse([perf(100, r1, r1), perf(50, r2, r2)])
        assert len(groups) == 2

    def test_overlap_chains_merge_transitively(self):
        a = CodeRegion("a.c", 10, 20)
        b = CodeRegion("a.c", 18, 30)  # overlaps a
        c = CodeRegion("a.c", 28, 40)  # overlaps b but not a
        groups = fuse([perf(1, a, a), perf(2, c, c), perf(4, b, b)])
        assert len(groups) == 1
        assert groups[0].delta_t == 7

    def test_fusion_from_real_trace_groups_same_code(self):
        rec, result, original, free = pipeline(readonly_contenders())
        perfs = evaluate_pairs(result, original, free)
        groups = fuse(perfs)
        # all sections come from the same source lines -> single group
        assert len(groups) == 1
        assert groups[0].count == len(perfs)


class TestRecommend:
    def test_p_sums_to_one(self):
        r1 = CodeRegion("a.c", 10, 20)
        r2 = CodeRegion("a.c", 100, 120)
        recs = recommend(fuse([perf(300, r1, r1), perf(100, r2, r2)]))
        assert abs(sum(r.p for r in recs) - 1.0) < 1e-9

    def test_sorted_descending(self):
        r1 = CodeRegion("a.c", 10, 20)
        r2 = CodeRegion("a.c", 100, 120)
        r3 = CodeRegion("b.c", 1, 5)
        recs = recommend(
            fuse([perf(100, r1, r1), perf(500, r2, r2), perf(10, r3, r3)])
        )
        assert [r.rank for r in recs] == [1, 2, 3]
        assert recs[0].delta_t == 500
        assert recs[0].p == 500 / 610

    def test_negative_deltas_score_zero(self):
        r1 = CodeRegion("a.c", 10, 20)
        r2 = CodeRegion("a.c", 100, 120)
        recs = recommend(fuse([perf(-50, r1, r1), perf(100, r2, r2)]))
        assert recs[0].p == 1.0
        assert recs[1].p == 0.0

    def test_empty_groups(self):
        assert recommend([]) == []
