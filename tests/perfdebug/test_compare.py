"""Tests for before/after report comparison."""

from repro.perfdebug import PerfPlay, compare_reports
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace import CodeSite


def site(line):
    return CodeSite("cmp.c", line, "f")


def workload(*, with_config_ulcp=True, rounds=5):
    """Two hotspots; the 'fixed' variant drops the config one."""

    def worker(k):
        for _ in range(rounds):
            yield Compute(150 + 9 * k, site=site(10))
            if with_config_ulcp:
                yield Acquire(lock="cfg", site=site(20))
                yield Read("config", site=site(21))
                yield Compute(300, site=site(22))
                yield Release(lock="cfg", site=site(23))
            else:
                # the fix: lock-free read of an immutable snapshot
                yield Compute(300, site=site(22))
            yield Acquire(lock="log", site=site(40))
            yield Read("log.tail", site=site(41))
            yield Compute(200, site=site(42))
            yield Release(lock="log", site=site(43))

    def init():
        yield Write("config", op=Store(1), site=site(1))
        yield Write("log.tail", op=Store(2), site=site(2))

    return [(worker(0), "a"), (worker(1), "b"), (init(), "init")]


def reports():
    perfplay = PerfPlay()
    before = perfplay.debug(workload(with_config_ulcp=True), name="before")
    after = perfplay.debug(workload(with_config_ulcp=False), name="after")
    return before, after


class TestCompareReports:
    def test_fix_detected_as_gone(self):
        before, after = reports()
        comparison = compare_reports(before, after)
        fixed = [c.label for c in comparison.fixed_regions]
        assert any("cmp.c:20" in label for label in fixed)

    def test_surviving_region_tracked(self):
        before, after = reports()
        comparison = compare_reports(before, after)
        surviving = [c for c in comparison.changes if c.status != "fixed"]
        assert any("cmp.c:40" in c.label for c in surviving)

    def test_improvement_detected(self):
        before, after = reports()
        comparison = compare_reports(before, after)
        assert comparison.improved
        assert comparison.end_time_change < 0

    def test_next_recommendation_in_render(self):
        before, after = reports()
        text = compare_reports(before, after).render()
        assert "Before/after comparison" in text
        assert "next:" in text

    def test_identical_reports_unchanged(self):
        perfplay = PerfPlay()
        before = perfplay.debug(workload(), name="x")
        after = perfplay.debug(workload(), name="x")
        comparison = compare_reports(before, after)
        assert not comparison.fixed_regions
        assert all(c.status in ("unchanged", "shrunk", "grew")
                   for c in comparison.changes)
