"""Tests for multi-trace aggregation and input-sensitivity analysis."""

from repro.perfdebug import PerfPlay
from repro.perfdebug.multitrace import aggregate
from repro.perfdebug.sensitivity import FRAGILE, PARTIAL, ROBUST, sweep
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace import CodeSite
from repro.workloads import get_workload


def site(line):
    return CodeSite("svc.c", line, "svc")


def reader_workload(rounds=5, seed_jitter=0):
    def worker(k):
        for _ in range(rounds):
            yield Compute(100 + seed_jitter, site=site(10))
            yield Acquire(lock="L", site=site(11))
            yield Read("cfg", site=site(12))
            yield Compute(280, site=site(13))
            yield Release(lock="L", site=site(14))

    def init():
        yield Write("cfg", op=Store(1), site=site(1))

    return [(worker(0), "a"), (worker(1), "b"), (init(), "init")]


class TestAggregate:
    def test_same_region_accumulates(self):
        perfplay = PerfPlay()
        reports = [
            perfplay.debug(reader_workload(seed_jitter=j), name=f"run{j}")
            for j in (0, 7)
        ]
        consensus = aggregate(reports)
        assert consensus.runs == 2
        assert len(consensus.regions) == 1
        region = consensus.regions[0]
        assert region.appearances == 2
        assert region.total_delta_t > 0
        assert consensus.consensus_p(region) == 1.0

    def test_persistent_filter(self):
        perfplay = PerfPlay()
        reports = [perfplay.debug(reader_workload(), name="run")]
        consensus = aggregate(reports)
        assert consensus.persistent(1.0) == consensus.ranked()

    def test_render(self):
        perfplay = PerfPlay()
        consensus = aggregate([perfplay.debug(reader_workload(), name="r")])
        text = consensus.render()
        assert "consensus" in text
        assert "svc.c" in text

    def test_empty_reports(self):
        consensus = aggregate([])
        assert consensus.runs == 0
        assert consensus.ranked() == []


class TestSensitivity:
    def test_openldap_spinwait_region_is_robust(self):
        result = sweep(
            "openldap",
            thread_counts=(2,),
            input_sizes=("simsmall", "simlarge"),
        )
        assert result.configurations
        # the spin-wait poll region (mp_fopen.c) shows up in every config
        robust = result.regions_by_class(ROBUST) + result.regions_by_class(PARTIAL)
        assert any("mp_fopen.c" in r for r in robust)

    def test_classification_labels_valid(self):
        result = sweep("bodytrack", thread_counts=(2,), input_sizes=("simlarge",))
        for label in result.classification.values():
            assert label in (ROBUST, PARTIAL, FRAGILE)

    def test_render(self):
        result = sweep("bodytrack", thread_counts=(2,), input_sizes=("simlarge",))
        assert "configurations" in result.render()
