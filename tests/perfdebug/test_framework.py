"""End-to-end tests of the PerfPlay facade."""

from repro.perfdebug import PerfPlay
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace import CodeSite


def site(line, file="svc.c"):
    return CodeSite(file, line, "svc")


def ulcp_heavy(threads=3, rounds=4):
    def worker(k):
        for _ in range(rounds):
            yield Compute(80, site=site(10))
            yield Acquire(lock="cache", site=site(11))
            yield Read("entries", site=site(12))
            yield Compute(300, site=site(13))
            yield Release(lock="cache", site=site(14))

    def init():
        yield Write("entries", op=Store(5), site=site(1))

    programs = [(worker(k), f"w{k}") for k in range(threads)]
    programs.append((init(), "init"))
    return programs


def clean_workload(threads=2, rounds=3):
    """Real conflicts only: every pair is a TLCP."""

    def worker(k):
        for i in range(rounds):
            yield Compute(50, site=site(20))
            yield Acquire(lock="bal", site=site(21))
            value = yield Read("balance", site=site(22))
            yield Write("balance", op=Store((value or 0) + k + i + 1), site=site(23))
            yield Release(lock="bal", site=site(24))

    return [(worker(k), f"w{k}") for k in range(threads)]


class TestPerfPlay:
    def test_debug_produces_report(self):
        report = PerfPlay().debug(ulcp_heavy(), name="ulcp-heavy")
        assert report.breakdown.read_read > 0
        assert report.t_pd > 0
        assert report.recommendations
        assert report.most_beneficial.p > 0

    def test_clean_workload_reports_nothing(self):
        report = PerfPlay().debug(clean_workload(), name="clean")
        assert report.breakdown.total_ulcps == 0
        assert report.recommendations == []
        assert report.most_beneficial is None

    def test_render_report_is_printable(self):
        report = PerfPlay().debug(ulcp_heavy(), name="ulcp-heavy")
        text = report.render()
        assert "PERFPLAY report" in text
        assert "read-read" in text
        assert "rank" in text

    def test_normalized_metrics_in_range(self):
        report = PerfPlay().debug(ulcp_heavy(), name="ulcp-heavy")
        assert 0.0 <= report.normalized_degradation <= 1.0
        assert report.cpu_waste_per_thread >= 0

    def test_deterministic_across_runs(self):
        r1 = PerfPlay().debug(ulcp_heavy(), name="a")
        r2 = PerfPlay().debug(ulcp_heavy(), name="a")
        assert r1.t_pd == r2.t_pd
        assert [rec.p for rec in r1.recommendations] == [
            rec.p for rec in r2.recommendations
        ]

    def test_memory_agreement_no_races(self):
        report = PerfPlay().debug(ulcp_heavy(), name="ulcp-heavy")
        assert report.original_replay.final_memory == report.free_replay.final_memory
        assert report.data_races == []

    def test_benign_detection_toggle_changes_breakdown(self):
        def redundant(k):
            yield Compute(10 * (k + 1), site=site(30))
            yield Acquire(lock="flagL", site=site(31))
            yield Write("done", op=Store(1), site=site(32))
            yield Release(lock="flagL", site=site(33))

        programs = lambda: [(redundant(k), f"w{k}") for k in range(2)]
        with_benign = PerfPlay(benign_detection=True).debug(programs())
        without = PerfPlay(benign_detection=False).debug(programs())
        assert with_benign.breakdown.benign == 1
        assert without.breakdown.benign == 0
