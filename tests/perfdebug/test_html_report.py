"""The self-contained HTML debugging report (`repro.api.report`)."""

from html.parser import HTMLParser

import pytest

from repro import api
from repro.trace import serialize

_VOID_TAGS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "source", "track", "wbr",
})


class _TagBalance(HTMLParser):
    def __init__(self):
        super().__init__()
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID_TAGS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if not self.stack:
            self.errors.append(f"close </{tag}> with empty stack")
        elif self.stack[-1] != tag:
            self.errors.append(f"</{tag}> closes <{self.stack[-1]}>")
        else:
            self.stack.pop()


def _check_html(text: str) -> None:
    parser = _TagBalance()
    parser.feed(text)
    assert parser.errors == []
    assert parser.stack == []


@pytest.fixture(scope="module")
def html():
    return api.report("transmissionBT", threads=2, seed=0)


class TestHtmlReport:
    def test_is_a_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        _check_html(html)

    def test_zero_external_assets(self, html):
        # self-contained: no external scripts, stylesheets, or images;
        # the only URL-shaped text allowed is the SVG xmlns identifier
        assert "<script" not in html
        assert "<link " not in html
        assert html.count("http") == html.count('xmlns="http://www.w3.org/2000/svg"')

    def test_core_sections_present(self, html):
        for marker in (
            "Execution waterfalls",
            "Lock contention heatmap",
            "ULCP pairs",
            "Ranked recommendations",
            "Telemetry summary",
            "<svg",
        ):
            assert marker in html, f"missing section: {marker}"

    def test_byte_identical_across_runs(self, html):
        assert api.report("transmissionBT", threads=2, seed=0) == html

    def test_output_file_written(self, tmp_path):
        out = tmp_path / "REPORT.html"
        text = api.report("transmissionBT", threads=2, seed=0, output=out)
        assert out.read_text(encoding="utf-8") == text

    def test_explicit_transformed_trace(self, tmp_path):
        trace = api.record("transmissionBT", threads=2, seed=0)
        freed = api.transform(trace)
        free_path = tmp_path / "free.jsonl"
        serialize.dump(freed, free_path)
        html = api.report(trace, free_path)
        assert "ULCP-free" in html
        _check_html(html)


class TestZeroUlcpReport:
    """A workload with no contentions must render, not error."""

    def test_no_contentions_banner(self):
        # blackscholes partitions its work: no ULCP pairs at all
        html = api.report("blackscholes", threads=2, seed=0, scale=0.5)
        assert "No unnecessary lock contentions" in html
        _check_html(html)
