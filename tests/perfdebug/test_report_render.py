"""Edge-case tests for the text report renderer."""

from repro.perfdebug import PerfPlay, render_report
from repro.races.happens_before import HbRace
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace import CodeSite


def site(line, file="rep.c"):
    return CodeSite(file, line, "f")


def many_region_workload(regions=13, rounds=2):
    """Distinct code regions so the recommendation list overflows."""

    def worker(k):
        for r in range(rounds):
            for region in range(regions):
                base = 100 + 50 * region
                yield Compute(120 + 7 * k, site=site(base - 1))
                yield Acquire(lock=f"L{region}", site=site(base))
                yield Read(f"data{region}", site=site(base + 1))
                yield Compute(150, site=site(base + 2))
                yield Release(lock=f"L{region}", site=site(base + 3))

    def init():
        for region in range(regions):
            yield Write(f"data{region}", op=Store(1), site=site(10 + region))

    return [(worker(0), "a"), (worker(1), "b"), (init(), "init")]


class TestReportRender:
    def test_overflow_truncated_with_more_line(self):
        report = PerfPlay().debug(many_region_workload(), name="many")
        assert len(report.recommendations) > 10
        text = render_report(report)
        assert "... and" in text
        assert "more" in text

    def test_race_warning_branch(self):
        report = PerfPlay().debug(many_region_workload(regions=2), name="x")
        report.data_races = [
            HbRace("addr", "e1", "t0", "e2", "t1") for _ in range(7)
        ]
        text = render_report(report)
        assert "WARNING" in text
        assert "7 interleaving-sensitive data race(s)" in text
        # only the first five are listed
        assert text.count("race on addr") == 5

    def test_bars_scale_with_p(self):
        report = PerfPlay().debug(many_region_workload(regions=3), name="x")
        text = render_report(report)
        assert "[#" in text or "[." in text

    def test_unnamed_trace_placeholder(self):
        report = PerfPlay().debug(many_region_workload(regions=2), name="")
        assert "<unnamed trace>" in render_report(report)
