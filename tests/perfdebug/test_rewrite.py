"""Tests for trace-level fix application (rwlock / split / atomic / branch)."""

import pytest

from repro.perfdebug.rewrite import (
    apply_atomic_fix,
    apply_branch_fix,
    apply_lock_split_fix,
    apply_rwlock_fix,
    try_fix,
)
from repro.record import record
from repro.replay import ELSC_S, ORIG_S, Replayer
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace import CodeSite, validate


def site(line):
    return CodeSite("fix.c", line, "f")


def readers(rounds=5, threads=3, cs_len=300):
    def worker(k):
        for _ in range(rounds):
            yield Compute(100 + 13 * k, site=site(10))
            yield Acquire(lock="table_lock", site=site(11))
            yield Read("table", site=site(12))
            yield Compute(cs_len, site=site(13))
            yield Release(lock="table_lock", site=site(14))

    def init():
        yield Write("table", op=Store(1), site=site(1))

    programs = [(worker(k), f"r{k}") for k in range(threads)]
    programs.append((init(), "init"))
    return record(programs, name="readers").trace


def disjoint_writers(rounds=5, threads=2, cs_len=300):
    def worker(k):
        for r in range(rounds):
            yield Compute(100 + 17 * k, site=site(20))
            yield Acquire(lock="obj_lock", site=site(21))
            yield Write(f"obj[{k}]", op=Store(7), site=site(22))
            yield Compute(cs_len, site=site(23))
            yield Release(lock="obj_lock", site=site(24))

    def toucher():
        yield Compute(3000, site=site(29))
        for k in range(threads):
            yield Read(f"obj[{k}]", site=site(30))

    programs = [(worker(k), f"w{k}") for k in range(threads)]
    programs.append((toucher(), "scan"))
    return record(programs, name="writers").trace


def counters(rounds=6, threads=2):
    def worker(k):
        for _ in range(rounds):
            yield Compute(120 + 7 * k, site=site(40))
            yield Acquire(lock="ctr_lock", site=site(41))
            yield Write("hits", op=Add(1), site=site(42))
            yield Compute(150, site=site(43))
            yield Release(lock="ctr_lock", site=site(44))

    return record([(worker(k), f"c{k}") for k in range(threads)],
                  name="counters").trace


def null_lockers(rounds=6, threads=2):
    def worker(k):
        for _ in range(rounds):
            yield Compute(100 + 9 * k, site=site(50))
            yield Acquire(lock="maybe_lock", site=site(51))
            yield Release(lock="maybe_lock", site=site(52))

    return record([(worker(k), f"n{k}") for k in range(threads)],
                  name="nulls").trace


def measure(trace, fixed):
    replayer = Replayer(jitter=0.0)
    original = replayer.replay(trace, scheme=ELSC_S).end_time
    after = replayer.replay(fixed, scheme=ORIG_S).end_time
    return original, after


class TestRwlockFix:
    def test_readers_marked_shared(self):
        trace = readers()
        fixed = apply_rwlock_fix(trace, "table_lock")
        shared = [e for e in fixed.iter_events() if e.kind == "acquire" and e.shared]
        assert len(shared) == 15  # 3 workers x 5 rounds

    def test_fixed_trace_valid_and_faster(self):
        trace = readers()
        fixed = apply_rwlock_fix(trace, "table_lock")
        validate(fixed)
        original, after = measure(trace, fixed)
        assert after < original

    def test_writer_sections_stay_exclusive(self):
        trace = disjoint_writers()
        fixed = apply_rwlock_fix(trace, "obj_lock")
        shared = [e for e in fixed.iter_events() if e.kind == "acquire" and e.shared]
        assert shared == []  # every section writes


class TestSplitFix:
    def test_locks_renamed_per_object(self):
        trace = disjoint_writers()
        fixed = apply_lock_split_fix(trace, "obj_lock")
        locks = {e.lock for e in fixed.iter_events() if e.kind == "acquire"}
        assert "obj_lock#obj[0]" in locks
        assert "obj_lock#obj[1]" in locks

    def test_split_is_faster(self):
        trace = disjoint_writers()
        fixed = apply_lock_split_fix(trace, "obj_lock")
        validate(fixed)
        original, after = measure(trace, fixed)
        assert after < original

    def test_memory_state_preserved(self):
        trace = disjoint_writers()
        fixed = apply_lock_split_fix(trace, "obj_lock")
        replayer = Replayer(jitter=0.0)
        a = replayer.replay(trace, scheme=ELSC_S).final_memory
        b = replayer.replay(fixed, scheme=ORIG_S).final_memory
        assert a == b


class TestAtomicFix:
    def test_commutative_sections_unlocked(self):
        trace = counters()
        fixed = apply_atomic_fix(trace, "ctr_lock")
        acquires = [e for e in fixed.iter_events() if e.kind == "acquire"]
        assert acquires == []

    def test_counter_value_preserved(self):
        trace = counters()
        fixed = apply_atomic_fix(trace, "ctr_lock")
        replayer = Replayer(jitter=0.0)
        a = replayer.replay(trace, scheme=ELSC_S).final_memory
        b = replayer.replay(fixed, scheme=ORIG_S).final_memory
        assert a["hits"] == b["hits"] == 12

    def test_non_commutative_sections_keep_lock(self):
        trace = disjoint_writers()  # Store ops, not Add
        fixed = apply_atomic_fix(trace, "obj_lock")
        acquires = [e for e in fixed.iter_events() if e.kind == "acquire"]
        assert len(acquires) == len(
            [e for e in trace.iter_events() if e.kind == "acquire"]
        )


class TestBranchFix:
    def test_null_locks_removed(self):
        trace = null_lockers()
        fixed = apply_branch_fix(trace, "maybe_lock")
        assert [e for e in fixed.iter_events() if e.kind == "acquire"] == []

    def test_faster_without_null_locks(self):
        trace = null_lockers()
        fixed = apply_branch_fix(trace, "maybe_lock")
        original, after = measure(trace, fixed)
        assert after <= original


class TestTryFix:
    def test_named_fix_outcome(self):
        outcome = try_fix(readers(), "table_lock", "rwlock")
        assert outcome.fix == "rwlock"
        assert outcome.lock == "table_lock"
        assert outcome.gain_ns > 0
        assert 0 < outcome.normalized_gain < 1

    def test_unknown_fix_raises(self):
        with pytest.raises(ValueError):
            try_fix(readers(), "table_lock", "magic")

    def test_outcome_renders(self):
        outcome = try_fix(counters(), "ctr_lock", "atomic")
        assert "atomic fix on ctr_lock" in str(outcome)
