"""Unit tests for the Eq. 1 anchor resolver."""

from repro.analysis import transform
from repro.perfdebug import AnchorResolver
from repro.record import record
from repro.replay import ELSC_S, Replayer
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace import CodeSite


def site(line):
    return CodeSite("anchor.c", line)


def fixture():
    def worker(k):
        yield Compute(100 + k, site=site(1))
        yield Acquire(lock="L", site=site(2))
        yield Read("x", site=site(3))
        yield Release(lock="L", site=site(4))
        yield Compute(50, site=site(5))

    def init():
        yield Write("x", op=Store(1), site=site(9))

    rec = record([(worker(0), "a"), (worker(1), "b"), (init(), "i")],
                 name="anchor")
    replay = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
    return rec.trace, replay


class TestAnchorResolver:
    def test_direct_hit(self):
        trace, replay = fixture()
        resolver = AnchorResolver(trace, replay)
        event = next(e for e in trace.iter_events() if e.kind == "read")
        t = resolver.resolve(event.uid, event.tid, "forward")
        assert t == replay.timestamps[event.uid]

    def test_none_falls_back_to_thread_edges(self):
        trace, replay = fixture()
        resolver = AnchorResolver(trace, replay)
        tid = trace.thread_ids[0]
        assert resolver.resolve(None, tid, "backward") == replay.thread_start[tid]
        assert resolver.resolve(None, tid, "forward") == replay.thread_end[tid]

    def test_removed_anchor_walks_to_survivor(self):
        """An anchor removed by transformation resolves to a neighbour."""
        trace, _ = fixture()
        result = transform(trace)
        free = Replayer(jitter=0.0).replay_transformed(result)
        resolver = AnchorResolver(trace, free)
        # the acquire events were replaced by markers with the SAME uid, so
        # use a release uid of a REMOVED section if one exists; fall back to
        # asserting the walk returns a sane timestamp either way
        release = next(e for e in trace.iter_events() if e.kind == "release")
        t = resolver.resolve(release.uid, release.tid, "forward")
        assert 0 <= t <= free.end_time

    def test_unknown_uid_uses_fallback(self):
        trace, replay = fixture()
        resolver = AnchorResolver(trace, replay)
        tid = trace.thread_ids[0]
        assert resolver.resolve("phantom", tid, "forward") == replay.thread_end[tid]
