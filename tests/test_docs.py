"""Smoke tests for the generated API reference."""

from repro.docs import generate, write


class TestApiDocs:
    def test_covers_all_packages(self):
        text = generate()
        for package in ("repro.sim", "repro.analysis", "repro.replay",
                        "repro.perfdebug", "repro.workloads"):
            assert f"## `{package}" in text

    def test_mentions_key_api(self):
        text = generate()
        assert "class `PerfPlay" in text
        assert "class `Machine" in text
        assert "`transform(" in text

    def test_write(self, tmp_path):
        target = write(tmp_path / "API.md")
        assert target.exists()
        assert "API reference" in target.read_text()
