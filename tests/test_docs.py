"""Smoke tests for the generated API reference.

Since the ``repro.api`` redesign the reference documents ONLY the facade
and the telemetry subsystem in full; every internal subpackage appears
solely as a one-line appendix entry.
"""

from repro.docs import INTERNAL_PACKAGES, generate, write


class TestApiDocs:
    def test_documents_only_the_facade(self):
        text = generate()
        assert "## `repro.api`" in text
        assert "## `repro.telemetry`" in text
        # internal modules must NOT get their own full sections
        for package in INTERNAL_PACKAGES:
            assert f"## `{package}`" not in text

    def test_facade_functions_fully_documented(self):
        text = generate()
        for fn in ("record", "analyze", "transform", "replay", "debug",
                   "report"):
            assert f"### `{fn}(" in text
        # full docstrings, not just summaries
        assert "DeprecationWarning" in text
        assert "telemetry=" in text

    def test_telemetry_surface_documented(self):
        text = generate()
        assert "class `Telemetry" in text
        assert "`span(" in text
        assert "`count(" in text

    def test_internal_appendix(self):
        text = generate()
        assert "## Internal modules" in text
        for package in INTERNAL_PACKAGES:
            assert f"- `{package}`" in text

    def test_write(self, tmp_path):
        target = write(tmp_path / "API.md")
        assert target.exists()
        assert "API reference" in target.read_text()
