"""Tests for the ASCII timeline renderer."""

from repro.record import record
from repro.sim import Acquire, Compute, Read, Release
from repro.trace.render import render_timeline


def contended():
    def prog(k):
        yield Compute(200 + 10 * k)
        yield Acquire(lock="L")
        yield Compute(400)
        yield Release(lock="L")
        yield Compute(100)

    return record([(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0).trace


class TestTimeline:
    def test_renders_one_lane_per_thread(self):
        trace = contended()
        text = render_timeline(trace, width=40)
        lines = text.splitlines()
        assert len(lines) == 1 + len(trace.thread_ids)

    def test_marks_critical_sections_and_blocking(self):
        text = render_timeline(contended(), width=60)
        assert "#" in text  # in-CS work
        assert "=" in text  # plain compute
        assert "~" in text  # the loser blocked on L

    def test_respects_width(self):
        text = render_timeline(contended(), width=30)
        for line in text.splitlines()[1:]:
            lane = line.split("|")[1]
            assert len(lane) == 30

    def test_empty_trace(self):
        from repro.trace import Trace

        assert "timeline" in render_timeline(Trace(), width=10)
