"""Tests for selective recording (state deltas) and checkpoints."""

from repro.record import record
from repro.sim import Acquire, Compute, Read, Release, SharedMemory, Store, Write
from repro.trace import (
    SideTable,
    StateDelta,
    diff_snapshots,
    slice_from,
    take_checkpoint,
    validate,
)


def sample_trace():
    def prog(k):
        yield Compute(100)
        yield Write("a", op=Store(k + 1))
        yield Compute(100)
        yield Acquire(lock="L")
        yield Read("a")
        yield Release(lock="L")
        yield Compute(100)
        yield Write("b", op=Store(9))

    return record([(prog(0), "t0"), (prog(1), "t1")],
                  lock_cost=0, mem_cost=0).trace


class TestStateDelta:
    def test_diff_snapshots(self):
        before = {"a": 1, "b": 2}
        after = {"a": 1, "b": 5, "c": 7}
        assert diff_snapshots(before, after) == {"b": 5, "c": 7}

    def test_diff_detects_removal(self):
        assert diff_snapshots({"a": 3}, {}) == {"a": 0}

    def test_apply_restores_memory(self):
        memory = SharedMemory({"a": 1})
        delta = StateDelta(sleep_uid="e9", duration=500, changes={"a": 4, "x": 2})
        delta.apply(memory)
        assert memory.read("a") == 4
        assert memory.read("x") == 2

    def test_round_trip(self):
        delta = StateDelta(sleep_uid="e9", duration=500, changes={"a": 4})
        assert StateDelta.decode(delta.encode()).changes == {"a": 4}

    def test_side_table_lookup(self):
        table = SideTable(deltas=[StateDelta("e1", 10, {}), StateDelta("e2", 20, {})])
        assert table.delta_for("e2").duration == 20
        assert table.delta_for("missing") is None
        assert SideTable.decode(table.encode()).delta_for("e1").duration == 10


class TestCheckpoint:
    def test_checkpoint_memory_reconstruction(self):
        trace = sample_trace()
        checkpoint = take_checkpoint(trace, t=150)
        # both threads wrote "a" by t=100; "b" comes later
        assert checkpoint.memory.get("a") in (1, 2)
        assert "b" not in checkpoint.memory

    def test_checkpoint_positions_split_events(self):
        trace = sample_trace()
        checkpoint = take_checkpoint(trace, t=150)
        for tid, position in checkpoint.positions.items():
            events = trace.threads[tid]
            assert all(e.t <= 150 for e in events[:position])
            assert all(e.t > 150 for e in events[position:])

    def test_slice_is_replayable_suffix(self):
        trace = sample_trace()
        checkpoint = take_checkpoint(trace, t=150)
        suffix = slice_from(trace, checkpoint)
        total = len(trace)
        kept = len(suffix)
        assert 0 < kept < total
        # timestamps rebased to the checkpoint
        assert min(e.t for e in suffix.iter_events()) >= 0

    def test_slice_keeps_lock_schedule_consistent(self):
        trace = sample_trace()
        checkpoint = take_checkpoint(trace, t=150)
        suffix = slice_from(trace, checkpoint)
        kept_uids = {e.uid for e in suffix.iter_events()}
        for uids in suffix.lock_schedule.values():
            for uid in uids:
                assert uid in kept_uids

    def test_checkpoint_round_trip(self):
        trace = sample_trace()
        checkpoint = take_checkpoint(trace, t=150)
        from repro.trace import Checkpoint

        clone = Checkpoint.decode(checkpoint.encode())
        assert clone.t == checkpoint.t
        assert clone.positions == checkpoint.positions


class TestCheckpointSectionSnapping:
    def test_never_splits_open_critical_sections(self):
        from repro.record import record
        from repro.sim import Acquire, Compute, Read, Release
        from repro.trace import problems, take_checkpoint, slice_from

        def prog(k):
            yield Compute(50 + k)
            yield Acquire(lock="L")
            yield Compute(200)   # checkpoint lands inside this section
            yield Release(lock="L")
            yield Compute(100)

        trace = record([(prog(0), "a"), (prog(1), "b")],
                       lock_cost=0, mem_cost=0).trace
        for t in (60, 120, 260, 320):
            checkpoint = take_checkpoint(trace, t)
            suffix = slice_from(trace, checkpoint)
            # the suffix must have balanced lock events in every thread
            issues = [i for i in problems(suffix) if "released" in i or "never" in i]
            assert issues == [], (t, issues)

    def test_snapped_suffix_is_replayable(self):
        from repro.record import record
        from repro.replay import Replayer
        from repro.sim import Acquire, Compute, Read, Release
        from repro.trace import take_checkpoint, slice_from

        def prog(k):
            yield Compute(50 + 7 * k)
            yield Acquire(lock="L")
            yield Compute(150)
            yield Release(lock="L")
            yield Compute(80)

        trace = record([(prog(0), "a"), (prog(1), "b")],
                       lock_cost=0, mem_cost=0).trace
        checkpoint = take_checkpoint(trace, 120)
        suffix = slice_from(trace, checkpoint)
        replay = Replayer(jitter=0.0).replay(suffix)
        assert replay.end_time >= 0
