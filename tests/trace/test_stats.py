"""Tests for the trace statistics summary."""

from repro.trace import trace_stats
from repro.workloads import get_workload


class TestTraceStats:
    def _stats(self):
        trace = get_workload("vips", scale=0.4).record().trace
        return trace, trace_stats(trace)

    def test_totals_match_trace(self):
        trace, stats = self._stats()
        assert stats.total_events == len(trace)
        assert stats.end_time == trace.end_time
        assert stats.locks == len(trace.lock_schedule)

    def test_kind_counts_sum(self):
        trace, stats = self._stats()
        assert sum(stats.kinds.values()) == len(trace)

    def test_acquisitions_match_schedule(self):
        trace, stats = self._stats()
        scheduled = sum(len(v) for v in trace.lock_schedule.values())
        assert sum(t.acquisitions for t in stats.threads.values()) == scheduled

    def test_contention_rate_bounds(self):
        _, stats = self._stats()
        assert 0.0 <= stats.contention_rate <= 1.0

    def test_render(self):
        _, stats = self._stats()
        text = stats.render()
        assert "events=" in text
        assert "thread" in text
