"""Tests for trace diffing."""

from repro.record import record
from repro.sim import Acquire, Compute, Read, Release
from repro.trace import dumps, loads
from repro.trace.diff import diff_traces


def make_trace(cs_len=100):
    def prog(k):
        yield Compute(50 + k)
        yield Acquire(lock="L")
        yield Read("x")
        yield Compute(cs_len)
        yield Release(lock="L")

    return record([(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0).trace


class TestDiff:
    def test_identical_traces(self):
        trace = make_trace()
        clone = loads(dumps(trace))
        diff = diff_traces(trace, clone)
        assert diff.identical
        assert diff.render() == "traces are identical"

    def test_detects_duration_changes(self):
        diff = diff_traces(make_trace(100), make_trace(200))
        assert not diff.identical
        assert diff.event_deltas

    def test_ignore_times_masks_duration_changes(self):
        diff = diff_traces(make_trace(100), make_trace(200), ignore_times=True)
        assert diff.identical

    def test_detects_missing_thread(self):
        left = make_trace()
        right = loads(dumps(left))
        right.threads.pop("t1")
        diff = diff_traces(left, right)
        assert any("only in left" in c for c in diff.thread_changes)

    def test_detects_extra_events(self):
        left = make_trace()
        right = loads(dumps(left))
        right.threads["t0"].pop()
        diff = diff_traces(left, right)
        assert any(d.right is None for d in diff.event_deltas)

    def test_detects_schedule_changes(self):
        left = make_trace()
        right = loads(dumps(left))
        right.lock_schedule["L"] = list(reversed(right.lock_schedule["L"]))
        diff = diff_traces(left, right, ignore_times=True)
        assert diff.schedule_changes

    def test_render_limits_output(self):
        diff = diff_traces(make_trace(100), make_trace(300))
        text = diff.render(limit=1)
        assert "more event deltas" in text or len(diff.event_deltas) <= 1
