"""Serialization round-trips, malformed-input rejection, and .jsonl.gz I/O."""

import gzip
import json

import pytest

from repro.errors import TraceError
from repro.record import record
from repro.sim import Acquire, Compute, Opaque, Read, Release, Store, Write
from repro.trace import CodeSite, Trace, dumps, loads, validate
from repro.trace import serialize

SITE = CodeSite("demo.c", 7, "worker")


def nested_lock_pair():
    """Two threads with nested critical sections (outer holds inner)."""

    def prog():
        yield Acquire(lock="outer", site=SITE)
        yield Acquire(lock="inner", site=SITE)
        yield Write("x", op=Store(1), site=SITE)
        yield Release(lock="inner", site=SITE)
        yield Compute(50, site=SITE)
        yield Release(lock="outer", site=SITE)

    return [(prog(), "alpha"), (prog(), "beta")]


def rwlock_trio():
    """Two shared readers and one exclusive writer on one rwlock."""

    def reader():
        yield Acquire(lock="rw", shared=True, site=SITE)
        yield Read("x", site=SITE)
        yield Compute(40, site=SITE)
        yield Release(lock="rw", site=SITE)

    def writer():
        yield Compute(10, site=SITE)
        yield Acquire(lock="rw", site=SITE)
        yield Write("x", op=Store(5), site=SITE)
        yield Release(lock="rw", site=SITE)

    return [(reader(), "r0"), (reader(), "r1"), (writer(), "w")]


def opaque_pair():
    """A bypassed range recorded as a sleep + side-table state delta."""

    def prog():
        yield Compute(20, site=SITE)
        yield Opaque(duration=100, changes={"buf": 3}, site=SITE)
        yield Read("buf", site=SITE)

    return [(prog(), "t0"), (prog(), "t1")]


def assert_identical(trace, clone):
    assert clone.meta.encode() == trace.meta.encode()
    assert clone.thread_ids == trace.thread_ids
    assert clone.lock_schedule == trace.lock_schedule
    assert clone.end_time == trace.end_time
    assert [e.encode() for e in trace.iter_events()] == [
        e.encode() for e in clone.iter_events()
    ]
    assert clone.side.encode() == trace.side.encode()


class TestRoundTrip:
    def test_nested_locks(self):
        trace = record(nested_lock_pair(), name="nested").trace
        clone = loads(dumps(trace))
        assert_identical(trace, clone)
        validate(clone)

    def test_rwlock_shared_acquires(self):
        trace = record(rwlock_trio(), name="rw").trace
        clone = loads(dumps(trace))
        assert_identical(trace, clone)
        shared = [e for e in clone.iter_events() if e.shared]
        assert len(shared) == 2

    def test_opaque_range_side_table(self):
        trace = record(opaque_pair(), name="opaque").trace
        assert trace.side.deltas, "opaque range must produce a side table"
        clone = loads(dumps(trace))
        assert_identical(trace, clone)
        assert clone.side.deltas[0].changes == {"buf": 3}

    def test_declared_but_empty_thread(self):
        trace = record(nested_lock_pair(), name="empty-thread").trace
        trace.add_thread("idle")
        clone = loads(dumps(trace))
        assert "idle" in clone.thread_ids
        assert clone.threads["idle"] == []
        validate(clone)  # declared-but-empty threads are legal

    def test_dumps_matches_streaming_writer(self):
        import io

        trace = record(nested_lock_pair(), name="stream").trace
        out = io.StringIO()
        serialize.write_trace(trace, out)
        assert dumps(trace) == out.getvalue()


class TestMalformedInput:
    def _lines(self, trace):
        return dumps(trace).splitlines()

    def test_undeclared_tid_rejected(self):
        trace = record(nested_lock_pair(), name="bad-tid").trace
        lines = self._lines(trace)
        event = json.loads(lines[-1])
        event["tid"] = "ghost"
        lines[-1] = json.dumps(event)
        with pytest.raises(TraceError, match="undeclared thread"):
            loads("\n".join(lines))

    def test_truncated_body_rejected(self):
        trace = record(nested_lock_pair(), name="truncated").trace
        lines = self._lines(trace)
        with pytest.raises(TraceError, match="truncated trace body"):
            loads("\n".join(lines[:-2]))

    def test_missing_headers_rejected(self):
        with pytest.raises(TraceError, match="missing header"):
            loads('{"meta": {}}')

    def test_corrupt_side_line_rejected(self):
        trace = record(opaque_pair(), name="bad-side").trace
        lines = self._lines(trace)
        assert set(json.loads(lines[3])) == {"side"}
        lines[3] = '{"side": 42}'
        with pytest.raises(TraceError, match="malformed side table"):
            loads("\n".join(lines))

    def test_non_json_line_rejected(self):
        trace = record(nested_lock_pair(), name="bad-json").trace
        lines = self._lines(trace)
        lines[-1] = "not json at all"
        with pytest.raises(TraceError, match="malformed trace line"):
            loads("\n".join(lines))

    def test_non_object_line_rejected(self):
        trace = record(nested_lock_pair(), name="bad-shape").trace
        lines = self._lines(trace)
        lines.append("[1, 2, 3]")
        with pytest.raises(TraceError, match="expected object"):
            loads("\n".join(lines))

    def test_event_with_stray_side_key_is_an_event(self):
        # Only a *single-key* {"side": ...} object is a side table; an
        # event line is identified by its full shape even as first body
        # line, so a malformed event with a stray key errors as an event.
        trace = record(nested_lock_pair(), name="shape").trace
        lines = self._lines(trace)
        # line 3 is the symbols header; line 4 is the first event
        assert set(json.loads(lines[3])) == {"symbols"}
        event = json.loads(lines[4])
        event["side"] = {"deltas": []}
        lines[4] = json.dumps(event)
        clone = loads("\n".join(lines))
        assert not clone.side.deltas
        assert len(clone) == len(trace)


class TestFileIO:
    def test_plain_jsonl_round_trip(self, tmp_path):
        trace = record(nested_lock_pair(), name="plain").trace
        path = tmp_path / "t.jsonl"
        serialize.dump(trace, path)
        assert path.read_text().startswith('{"meta"')
        assert_identical(trace, serialize.load(path))

    def test_gzip_round_trip(self, tmp_path):
        trace = record(rwlock_trio(), name="gz").trace
        path = tmp_path / "t.jsonl.gz"
        serialize.dump(trace, path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert handle.readline().startswith('{"meta"')
        assert_identical(trace, serialize.load(path))

    def test_gzip_bytes_deterministic(self, tmp_path):
        trace = record(nested_lock_pair(), name="det").trace
        a, b = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        serialize.dump(trace, a)
        serialize.dump(trace, b)
        assert a.read_bytes() == b.read_bytes()

    def test_gzip_smaller_than_plain(self, tmp_path):
        trace = record(nested_lock_pair(), name="size").trace
        plain, packed = tmp_path / "t.jsonl", tmp_path / "t.jsonl.gz"
        serialize.dump(trace, plain)
        serialize.dump(trace, packed)
        assert packed.stat().st_size < plain.stat().st_size


class TestValidateWrongThread:
    def test_event_filed_under_wrong_thread_reported(self):
        from repro.trace import COMPUTE, TraceEvent
        from repro.trace.validate import problems

        trace = Trace()
        trace.add_thread("t0")
        trace.add_thread("t1")
        trace.threads["t0"].append(
            TraceEvent(uid="e0", tid="t1", kind=COMPUTE, t=0, duration=1)
        )
        assert any("wrong thread" in issue for issue in problems(trace))
