"""Segmented streaming trace format: round trips, damage, edge shapes."""

import gzip
import json

import pytest

from repro.errors import SalvageWarning, TraceError
from repro.record import record
from repro.sim import Acquire, Compute, Release, Store, Write
from repro.trace import dump, dumps, load, load_trace
from repro.trace.segments import (
    DEFAULT_SEGMENT_EVENTS,
    SegmentedTraceWriter,
    index_path,
    is_segmented_file,
    load_index,
    load_segmented,
    open_segmented,
    salvage_segmented,
    segment_digests,
    write_segmented,
)


def locked_trace(rounds=6):
    def prog(k):
        for i in range(rounds):
            yield Compute(40 + k)
            yield Acquire(lock="L")
            yield Write("x", op=Store(i), site=None)
            yield Release(lock="L")

    return record([(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0).trace


def zero_event_thread_trace():
    """A declared thread with no events at all rides along."""
    trace = locked_trace()
    trace.add_thread("idle")
    return trace


class TestRoundTrip:
    @pytest.mark.parametrize("segment_events", [1, 2, 3, 7, DEFAULT_SEGMENT_EVENTS])
    def test_byte_identical_round_trip(self, tmp_path, segment_events):
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=segment_events)
        assert is_segmented_file(path)
        assert dumps(load_segmented(path)) == dumps(trace)

    def test_plain_container_round_trip(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl"  # no .gz: plain text container
        write_segmented(trace, path, segment_events=5)
        assert is_segmented_file(path)
        assert dumps(load_segmented(path)) == dumps(trace)

    def test_load_dispatches_on_format(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=5)
        assert dumps(load(path)) == dumps(trace)
        loaded = load_trace(path)
        assert loaded.report is None
        assert dumps(loaded.trace) == dumps(trace)

    def test_monolithic_not_misdetected(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.jsonl.gz"
        dump(trace, path)
        assert not is_segmented_file(path)

    def test_gzip_members_are_zcat_compatible(self, tmp_path):
        # each block is its own gzip member; the concatenation must still
        # decode as one stream with standard tooling
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=4)
        text = gzip.decompress(path.read_bytes()).decode()
        lines = [json.loads(line) for line in text.splitlines()]
        assert "repro_segments" in lines[0]
        assert "footer" in lines[-1]

    def test_zero_event_thread(self, tmp_path):
        trace = zero_event_thread_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=3)
        loaded = load_segmented(path)
        assert dumps(loaded) == dumps(trace)
        assert "idle" in loaded.threads

    def test_cross_segment_symbol_delta(self, tmp_path):
        # fresh locks/addresses keep appearing, so later segments must
        # carry symbol deltas that the reader applies incrementally
        def prog(k):
            for i in range(12):
                yield Compute(10 + k)
                yield Acquire(lock=f"L{i}")
                yield Write(f"x{i}", op=Store(i), site=None)
                yield Release(lock=f"L{i}")

        trace = record(
            [(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0
        ).trace
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=5)
        assert dumps(load_segmented(path)) == dumps(trace)

    def test_event_exactly_at_chunk_boundary(self, tmp_path):
        trace = locked_trace(rounds=4)
        n = len(trace)
        for segment_events in (n, n - 1, n // 2):
            path = tmp_path / f"t{segment_events}.seg.jsonl.gz"
            write_segmented(trace, path, segment_events=segment_events)
            assert dumps(load_segmented(path)) == dumps(trace)

    def test_writer_rejects_undeclared_thread(self, tmp_path):
        trace = locked_trace()
        first, second = trace.thread_ids[0], trace.thread_ids[1]
        writer = SegmentedTraceWriter(
            tmp_path / "t.seg.jsonl.gz",
            meta=trace.meta,
            threads=[first],  # the second thread is not declared
            lock_schedule=trace.lock_schedule,
        )
        events = list(trace.iter_time_order())
        stray = next(e for e in events if e.tid == second)
        with pytest.raises(TraceError, match="undeclared thread"):
            writer.add(stray)
        writer.abort()
        assert not (tmp_path / "t.seg.jsonl.gz").exists()


class TestIndex:
    def test_index_written_and_loadable(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        written = write_segmented(trace, path, segment_events=5)
        stored = load_index(path)
        assert stored is not None
        assert stored.events == written.events == len(trace)
        assert [s.digest for s in stored.segments] == [
            s.digest for s in written.segments
        ]

    def test_digests_agree_with_stream_when_index_missing(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=5)
        fast = segment_digests(path)
        index_path(path).unlink()
        assert segment_digests(path) == fast

    def test_stale_index_ignored(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=5)
        # rewrite the data file with a different segmentation but leave
        # the old sidecar behind: file_size no longer matches
        index_path(path).rename(tmp_path / "stale.idx")
        write_segmented(trace, path, segment_events=2)
        (tmp_path / "stale.idx").rename(index_path(path))
        fresh = write_segmented(trace, tmp_path / "ref.seg.jsonl.gz", segment_events=2)
        assert segment_digests(path) == [s.digest for s in fresh.segments]

    def test_data_file_self_sufficient(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=5)
        index_path(path).unlink()
        assert dumps(load_segmented(path)) == dumps(trace)


class TestDamage:
    def _segmented(self, tmp_path, rounds=12, segment_events=5):
        trace = locked_trace(rounds=rounds)
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=segment_events)
        return trace, path

    def test_corrupt_chunk_fails_digest_check(self, tmp_path):
        trace, path = self._segmented(tmp_path)
        text = gzip.decompress(path.read_bytes()).decode()
        lines = text.splitlines()
        i = next(k for k, line in enumerate(lines) if '"chunk"' in line)
        damaged = json.loads(lines[i])
        damaged["t"][0] += 1
        lines[i] = json.dumps(damaged, separators=(",", ":"), sort_keys=True)
        blob = gzip.compress(("\n".join(lines) + "\n").encode())
        path.write_bytes(blob)
        index_path(path).unlink()
        with open_segmented(path) as reader, pytest.raises(TraceError, match="digest"):
            list(reader.segments())

    def test_truncation_strict_fails(self, tmp_path):
        trace, path = self._segmented(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError):
            load(path)

    def test_truncation_salvages_segment_prefix(self, tmp_path):
        trace, path = self._segmented(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        # the sidecar index survives, so the report knows the full size
        with pytest.warns(SalvageWarning):
            loaded = salvage_segmented(path)
        assert 0 < len(loaded.trace) < len(trace)
        assert not loaded.report.clean
        assert loaded.report.dropped_events > 0
        assert loaded.report.stopped_reason
        # salvaged prefix upholds the trace invariants: no lock left held
        for events in loaded.trace.threads.values():
            held = set()
            for event in events:
                if event.kind == "acquire":
                    held.add(event.lock)
                elif event.kind == "release":
                    held.discard(event.lock)
            assert not held

    def test_salvage_dispatch_through_load_trace(self, tmp_path):
        trace, path = self._segmented(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: int(len(data) * 0.7)])
        with pytest.warns(SalvageWarning):
            loaded = load_trace(path, salvage=True)
        assert 0 < len(loaded.trace) < len(trace)

    def test_missing_footer_strict_fails_clean_prefix_salvages(self, tmp_path):
        trace, path = self._segmented(tmp_path)
        text = gzip.decompress(path.read_bytes()).decode()
        lines = text.splitlines()
        assert "footer" in lines[-1]
        blob = gzip.compress(("\n".join(lines[:-1]) + "\n").encode())
        path.write_bytes(blob)
        index_path(path).unlink()
        with pytest.raises(TraceError, match="footer"):
            load(path)
        with pytest.warns(SalvageWarning):
            loaded = salvage_segmented(path)
        # every segment survived; only the footer is gone
        assert len(loaded.trace) == len(trace)

    def test_salvaged_prefix_replays(self, tmp_path):
        from repro.replay import Replayer

        trace, path = self._segmented(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.warns(SalvageWarning):
            loaded = salvage_segmented(path)
        result = Replayer(jitter=0.0).replay(loaded.trace)
        assert result.end_time >= 0


class TestAddBlock:
    """``add_block`` must be byte-for-byte what the same ``add`` calls do."""

    META = dict(lock_cost=0, mem_cost=0)

    def _events(self):
        from repro.trace.codesite import CodeSite
        from repro.trace.events import TraceEvent

        site = CodeSite("gen.c", 7, "f")
        return [
            TraceEvent("e0", "a", "compute", t=0, duration=5, site=site),
            TraceEvent("e1", "a", "acquire", t=5, lock="L", t_request=3,
                       spin=True),
            TraceEvent("e2", "a", "write", t=6, addr="x", value=2,
                       op=("store", 2)),
            TraceEvent("e3", "a", "release", t=7, lock="L"),
            TraceEvent("e4", "a", "wait", t=8, token="tok", reason="cond"),
            TraceEvent("e5", "a", "post", t=9, token="tok", woken=["b"]),
            TraceEvent("e6", "a", "read", t=10, addr="y.late", value=0),
            TraceEvent("e7", "a", "acquire", t=11, lock="M", t_request=11,
                       shared=True),
            TraceEvent("e8", "a", "release", t=12, lock="M"),
            TraceEvent("e9", "a", "compute", t=13, duration=1),
        ]

    def _write_with_add(self, path, events, segment_events):
        from repro.trace.trace import TraceMeta

        writer = SegmentedTraceWriter(
            path, meta=TraceMeta(name="blk", **self.META), threads=["a"],
            lock_schedule={"L": ["e1"], "M": ["e7"]},
            segment_events=segment_events,
        )
        for event in events:
            writer.add(event)
        writer.close()

    def _write_with_add_block(self, path, events, segment_events):
        from repro.trace.trace import TraceMeta

        writer = SegmentedTraceWriter(
            path, meta=TraceMeta(name="blk", **self.META), threads=["a"],
            lock_schedule={"L": ["e1"], "M": ["e7"]},
            segment_events=segment_events,
        )
        writer.add_block(
            "a",
            uids=[e.uid for e in events],
            kinds=[e.kind for e in events],
            t=[e.t for e in events],
            duration=[e.duration for e in events],
            t_request=[e.t_request for e in events],
            value=[e.value for e in events],
            lock=[e.lock for e in events],
            addr=[e.addr for e in events],
            spin=[e.spin for e in events],
            shared=[e.shared for e in events],
            sites=[e.site for e in events],
            op={i: e.op for i, e in enumerate(events) if e.op is not None},
            token={i: e.token for i, e in enumerate(events)
                   if e.token is not None},
            reason={i: e.reason for i, e in enumerate(events) if e.reason},
            woken={i: e.woken for i, e in enumerate(events) if e.woken},
        )
        writer.close()

    @pytest.mark.parametrize("segment_events", [1, 3, 4, 7, 10, 64])
    def test_byte_identical_to_add(self, tmp_path, segment_events):
        # segment_events < len(events) makes one block span several
        # flushes, so mid-block symbol deltas (the "y.late" addr first
        # appears at event 6) must land in the same segment both ways
        events = self._events()
        one = tmp_path / "one.seg.jsonl.gz"
        blk = tmp_path / "blk.seg.jsonl.gz"
        self._write_with_add(one, events, segment_events)
        self._write_with_add_block(blk, events, segment_events)
        assert one.read_bytes() == blk.read_bytes()
        assert dumps(load_segmented(one)) == dumps(load_segmented(blk))

    def test_scalar_broadcast(self, tmp_path):
        from repro.trace.trace import TraceMeta

        path = tmp_path / "b.seg.jsonl.gz"
        writer = SegmentedTraceWriter(
            path, meta=TraceMeta(name="blk", **self.META), threads=["a"],
            lock_schedule={},
        )
        writer.add_block("a", uids=["e0", "e1"], kinds="compute",
                         t=[0, 10], duration=10)
        writer.close()
        trace = load_segmented(path)
        events = list(trace.iter_time_order())
        assert [e.kind for e in events] == ["compute", "compute"]
        assert [e.duration for e in events] == [10, 10]

    def test_undeclared_thread_rejected(self, tmp_path):
        from repro.trace.trace import TraceMeta

        writer = SegmentedTraceWriter(
            tmp_path / "b.seg.jsonl.gz",
            meta=TraceMeta(name="blk", **self.META), threads=["a"],
            lock_schedule={},
        )
        with pytest.raises(TraceError, match="undeclared thread"):
            writer.add_block("ghost", uids=["e0"], kinds="compute", t=[0])
        writer.abort()

    def test_column_length_mismatch_rejected(self, tmp_path):
        from repro.trace.trace import TraceMeta

        writer = SegmentedTraceWriter(
            tmp_path / "b.seg.jsonl.gz",
            meta=TraceMeta(name="blk", **self.META), threads=["a"],
            lock_schedule={},
        )
        with pytest.raises(TraceError, match="column 't'"):
            writer.add_block("a", uids=["e0", "e1"], kinds="compute", t=[0])
        writer.abort()

    def test_empty_block_is_a_no_op(self, tmp_path):
        from repro.trace.trace import TraceMeta

        path = tmp_path / "b.seg.jsonl.gz"
        writer = SegmentedTraceWriter(
            path, meta=TraceMeta(name="blk", **self.META), threads=["a"],
            lock_schedule={},
        )
        writer.add_block("a", uids=[], kinds="compute", t=[])
        writer.close()
        assert len(load_segmented(path)) == 0


class TestColumnarLoader:
    def test_byte_identical_to_eager_loader(self, tmp_path):
        from repro.trace.segments import load_segmented_columnar

        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=5)
        assert dumps(load_segmented_columnar(path)) == dumps(trace)

    def test_zero_event_threads_survive(self, tmp_path):
        from repro.trace.segments import load_segmented_columnar

        trace = zero_event_thread_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=3)
        core = load_segmented_columnar(path)
        assert dumps(core) == dumps(trace)
        assert "idle" in core.thread_ids

    def test_analysis_equals_eager_load(self, tmp_path):
        from repro.analysis import analyze_pairs
        from repro.trace.segments import load_segmented_columnar

        trace = locked_trace()
        path = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=4)
        eager = analyze_pairs(load_segmented(path))
        columnar = analyze_pairs(load_segmented_columnar(path))
        assert [(p.c1.uid, p.c2.uid, p.kind) for p in eager.pairs] == \
            [(p.c1.uid, p.c2.uid, p.kind) for p in columnar.pairs]
