"""Salvage-mode trace loading: recover the longest well-formed prefix."""

import json

import pytest

from repro.errors import SalvageWarning, TraceError
from repro.record import record
from repro.sim import Acquire, AwaitFlag, Compute, Release, SetFlag, Store, Write
from repro.trace import dump, dumps, load, load_trace, loads, salvage_read


def locked_trace(rounds=6):
    def prog(k):
        for i in range(rounds):
            yield Compute(40 + k)
            yield Acquire(lock="L")
            yield Write("x", op=Store(i), site=None)
            yield Release(lock="L")

    return record([(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0).trace


def flag_trace():
    def producer():
        yield Compute(10)
        yield SetFlag(flag="go")
        yield Compute(10)
        yield SetFlag(flag="go2")

    def consumer():
        yield AwaitFlag(flag="go")
        yield Compute(10)
        yield AwaitFlag(flag="go2")
        yield Compute(10)

    return record(
        [(producer(), "p"), (consumer(), "c")], lock_cost=0, mem_cost=0
    ).trace


class TestSalvageRead:
    def test_clean_input_is_clean(self):
        trace = locked_trace()
        loaded = salvage_read(dumps(trace).splitlines())
        assert loaded.report.clean
        assert len(loaded.trace) == len(trace)
        assert loaded.trace.lock_schedule == trace.lock_schedule

    def test_truncated_body_recovers_prefix(self):
        trace = locked_trace()
        lines = dumps(trace).splitlines()
        kept = lines[: len(lines) - 8]
        with pytest.warns(SalvageWarning):
            loaded = salvage_read(kept)
        assert 0 < len(loaded.trace) < len(trace)
        assert loaded.report.dropped_events >= 8

    def test_garbage_line_stops_the_read(self):
        trace = locked_trace()
        lines = dumps(trace).splitlines()
        cut = len(lines) // 2
        lines[cut] = '{"uid": "e1", "broken'
        with pytest.warns(SalvageWarning):
            loaded = salvage_read(lines)
        assert loaded.report.stopped_reason
        assert len(loaded.trace) <= cut

    def test_header_damage_is_unsalvageable(self):
        trace = locked_trace()
        lines = dumps(trace).splitlines()
        lines[0] = "not json at all"
        with pytest.raises(TraceError, match="unsalvageable"):
            salvage_read(lines)

    def test_missing_headers_unsalvageable(self):
        with pytest.raises(TraceError, match="unsalvageable"):
            salvage_read([])

    def test_unfinished_critical_section_trimmed(self):
        trace = locked_trace()
        lines = dumps(trace).splitlines()
        # cut immediately after an acquire so a lock is left held
        for i in reversed(range(len(lines))):
            if '"acquire"' in lines[i]:
                lines = lines[: i + 1]
                break
        with pytest.warns(SalvageWarning):
            loaded = salvage_read(lines)
        assert loaded.report.trimmed_events >= 1
        for events in loaded.trace.threads.values():
            held = set()
            for event in events:
                if event.kind == "acquire":
                    held.add(event.lock)
                elif event.kind == "release":
                    held.discard(event.lock)
            assert not held

    def test_schedule_pruned_to_surviving_acquires(self):
        trace = locked_trace()
        lines = dumps(trace).splitlines()
        with pytest.warns(SalvageWarning):
            loaded = salvage_read(lines[: len(lines) - 10])
        surviving = {
            e.uid for e in loaded.trace.iter_events() if e.kind == "acquire"
        }
        for uids in loaded.trace.lock_schedule.values():
            assert set(uids) <= surviving
        assert loaded.report.pruned_schedule > 0

    def test_orphaned_wait_trimmed_with_its_post(self):
        trace = flag_trace()
        lines = dumps(trace).splitlines()
        # delete the second POST line only: its waiter would starve a
        # replay forever, so salvage must trim the waiter too
        posts = [
            i for i, line in enumerate(lines)
            if json.loads(line).get("kind") == "post"
        ]
        del lines[posts[-1]]
        with pytest.warns(SalvageWarning):
            loaded = salvage_read(lines)
        posted = {
            e.token for e in loaded.trace.iter_events() if e.kind == "post"
        }
        for event in loaded.trace.iter_events():
            if event.kind == "wait" and event.token:
                assert event.token in posted

    def test_salvaged_prefix_replays(self):
        from repro.replay import Replayer

        trace = locked_trace()
        lines = dumps(trace).splitlines()
        with pytest.warns(SalvageWarning):
            loaded = salvage_read(lines[: len(lines) - 6])
        result = Replayer(jitter=0.0).replay(loaded.trace)
        assert result.end_time >= 0


class TestLoadTrace:
    def test_strict_mode_matches_load(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.trace.gz"
        dump(trace, path)
        strict = load_trace(path)
        assert strict.report is None
        assert dumps(strict.trace) == dumps(load(path))

    def test_truncated_gzip_strict_fails_salvage_recovers(self, tmp_path):
        trace = locked_trace(rounds=30)
        path = tmp_path / "t.trace.gz"
        dump(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceError):
            load(path)
        with pytest.warns(SalvageWarning):
            loaded = load_trace(path, salvage=True)
        assert 0 < len(loaded.trace) < len(trace)
        assert not loaded.report.clean

    def test_plain_text_truncation(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.trace"
        dump(trace, path)
        text = path.read_text()
        path.write_text(text[: int(len(text) * 0.7)])
        with pytest.warns(SalvageWarning):
            loaded = load_trace(path, salvage=True)
        assert 0 < len(loaded.trace) < len(trace)

    def test_report_renders_one_line(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.trace"
        dump(trace, path)
        text = path.read_text()
        path.write_text(text[: int(len(text) * 0.7)])
        with pytest.warns(SalvageWarning):
            loaded = load_trace(path, salvage=True)
        rendered = loaded.report.render()
        assert "\n" not in rendered
        assert "kept" in rendered
