"""The interned columnar trace core: symbol tables, lazy views, round-trips."""

import pickle

import pytest

from repro.errors import TraceError
from repro.trace import dumps, loads
from repro.trace.interning import (
    ColumnarTrace,
    InternTables,
    LazyEvents,
    SymbolTable,
    canonical_tables,
)
from repro.workloads import get_workload

from tests.analysis.helpers import cs_reader, cs_writer, record_programs


@pytest.fixture(scope="module")
def trace():
    return get_workload("mixed-bag", threads=3, seed=2).record().trace


class TestSymbolTable:
    def test_intern_is_idempotent(self):
        table = SymbolTable()
        assert table.intern("t0") == 0
        assert table.intern("t1") == 1
        assert table.intern("t0") == 0
        assert len(table) == 2

    def test_round_trip(self):
        table = SymbolTable()
        for name in ("A", "B", "C"):
            table.intern(name)
        clone = SymbolTable.decode(table.encode())
        assert clone.names == ["A", "B", "C"]
        assert clone.id("B") == 1
        assert clone.name(2) == "C"

    def test_decode_rejects_non_lists(self):
        with pytest.raises(TypeError):
            SymbolTable.decode("not-a-list")
        with pytest.raises(TypeError):
            SymbolTable.decode([1, 2, 3])


class TestColumnarTrace:
    def test_events_round_trip_exactly(self, trace):
        core = ColumnarTrace.from_trace(trace)
        for tid, events in trace.threads.items():
            assert list(core.threads[tid]) == events

    def test_read_api_matches_trace(self, trace):
        core = ColumnarTrace.from_trace(trace)
        assert core.thread_ids == trace.thread_ids
        assert len(core) == len(trace)
        assert core.end_time == trace.end_time
        assert core.locks() == trace.locks()
        for kind in ("acquire", "read", "write"):
            assert core.count(kind) == trace.count(kind)
        assert [e.uid for e in core.iter_time_order()] == [
            e.uid for e in trace.iter_time_order()
        ]

    def test_lazy_events_cache_and_slice(self, trace):
        core = ColumnarTrace.from_trace(trace)
        tid = trace.thread_ids[0]
        view = core.threads[tid]
        assert isinstance(view, LazyEvents)
        assert view[0] is view[0]  # materialized once, cached
        assert view[-1] == trace.threads[tid][-1]
        assert view[1:3] == trace.threads[tid][1:3]

    def test_trace_columnar_is_memoized_and_invalidated(self):
        trace = record_programs(cs_reader("L", "x"), cs_writer("L", "x"))
        core = trace.columnar()
        assert trace.columnar() is core
        trace.append(trace.threads[trace.thread_ids[0]][0])
        assert trace.columnar() is not core

    def test_pickle_drops_columnar_cache(self, trace):
        trace.columnar()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._columnar is None
        assert len(clone) == len(trace)


class TestSymbolsSerialization:
    def test_symbols_survive_round_trip(self, trace):
        clone = loads(dumps(trace))
        assert isinstance(clone.symbols, InternTables)
        assert clone.symbols.tids.names == canonical_tables(trace).tids.names

    def test_round_trip_is_byte_stable(self, trace):
        text = dumps(trace)
        assert dumps(loads(text)) == text

    def test_old_files_without_symbols_still_load(self, trace):
        lines = [
            line
            for line in dumps(trace).splitlines()
            if not line.startswith('{"symbols"')
        ]
        clone = loads("\n".join(lines))
        assert clone.symbols is None
        assert len(clone) == len(trace)

    def test_malformed_symbols_rejected(self, trace):
        lines = dumps(trace).splitlines()
        idx = next(i for i, l in enumerate(lines) if l.startswith('{"symbols"'))
        lines[idx] = '{"symbols": {"tids": 42}}'
        with pytest.raises(TraceError, match="malformed symbol table"):
            loads("\n".join(lines))

    def test_loaded_symbols_seed_interning(self, trace):
        clone = loads(dumps(trace))
        core = clone.columnar()
        assert core.tables is clone.symbols
