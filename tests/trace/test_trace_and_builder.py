"""Tests for trace recording, container queries, and serialization."""

import pytest

from repro.errors import TraceError
from repro.record import record
from repro.sim import (
    Acquire,
    BarrierWait,
    Compute,
    CondWait,
    Read,
    Release,
    SemAcquire,
    SemRelease,
    Signal,
    Store,
    Write,
)
from repro.trace import (
    ACQUIRE,
    COMPUTE,
    POST,
    READ,
    RELEASE,
    WAIT,
    WRITE,
    CodeSite,
    dumps,
    loads,
    validate,
)

SITE = CodeSite("demo.c", 42, "worker")


def simple_pair():
    def prog():
        yield Acquire(lock="L", site=SITE)
        yield Read("x", site=SITE)
        yield Write("x", op=Store(7), site=SITE)
        yield Compute(100, site=SITE)
        yield Release(lock="L", site=SITE)

    return [(prog(), "alpha"), (prog(), "beta")]


class TestRecording:
    def test_records_all_event_kinds(self):
        result = record(simple_pair(), name="demo", lock_cost=0, mem_cost=0)
        trace = result.trace
        assert trace.count(ACQUIRE) == 2
        assert trace.count(RELEASE) == 2
        assert trace.count(READ) == 2
        assert trace.count(WRITE) == 2
        assert trace.count(COMPUTE) == 2
        assert len(trace.thread_ids) == 2

    def test_lock_schedule_matches_acquire_order(self):
        trace = record(simple_pair(), lock_cost=0, mem_cost=0).trace
        schedule = trace.lock_schedule["L"]
        assert len(schedule) == 2
        acquires = sorted(
            (e for e in trace.iter_events() if e.kind == ACQUIRE), key=lambda e: e.t
        )
        assert [a.uid for a in acquires] == schedule

    def test_second_acquire_waits(self):
        trace = record(simple_pair(), lock_cost=0, mem_cost=0).trace
        waits = [e.wait_time for e in trace.iter_events() if e.kind == ACQUIRE]
        assert sorted(waits) == [0, 100]

    def test_event_uids_unique(self):
        trace = record(simple_pair(), lock_cost=0, mem_cost=0).trace
        uids = [e.uid for e in trace.iter_events()]
        assert len(uids) == len(set(uids))

    def test_meta_round_trips_machine_params(self):
        result = record(simple_pair(), name="demo", seed=3, num_cores=4,
                        lock_cost=5, mem_cost=2)
        meta = result.trace.meta
        assert meta.name == "demo"
        assert meta.seed == 3
        assert meta.num_cores == 4
        assert meta.lock_cost == 5
        assert meta.mem_cost == 2

    def test_write_event_carries_op_and_value(self):
        trace = record(simple_pair(), lock_cost=0, mem_cost=0).trace
        writes = [e for e in trace.iter_events() if e.kind == WRITE]
        assert all(w.op == ("store", 7) for w in writes)
        assert all(w.value == 7 for w in writes)

    def test_site_preserved(self):
        trace = record(simple_pair(), lock_cost=0, mem_cost=0).trace
        computes = [e for e in trace.iter_events() if e.kind == COMPUTE]
        assert all(c.site == SITE for c in computes)


class TestWaitPostLowering:
    def test_cond_signal_lowered_with_pairing(self):
        def waiter():
            yield Acquire(lock="L")
            yield CondWait(cond="C", lock="L")
            yield Release(lock="L")

        def signaler():
            yield Compute(100)
            yield Acquire(lock="L")
            yield Signal(cond="C")
            yield Release(lock="L")

        trace = record([(waiter(), "w"), (signaler(), "s")],
                       lock_cost=0, mem_cost=0).trace
        waits = [e for e in trace.iter_events() if e.kind == WAIT]
        posts = [e for e in trace.iter_events() if e.kind == POST]
        assert len(waits) == 1 and len(posts) == 1
        assert waits[0].reason == "posted"
        assert waits[0].token == posts[0].uid
        assert posts[0].woken == [waits[0].uid]
        # cond wait re-acquires the mutex: waiter has 2 acquires
        waiter_tid = waits[0].tid
        acquires = [e for e in trace.events_of(waiter_tid) if e.kind == ACQUIRE]
        assert len(acquires) == 2

    def test_timeout_wait_has_no_token(self):
        def prog():
            yield Acquire(lock="L")
            yield CondWait(cond="C", lock="L", timeout=500)
            yield Release(lock="L")

        trace = record([(prog(), "w")], lock_cost=0, mem_cost=0).trace
        waits = [e for e in trace.iter_events() if e.kind == WAIT]
        assert len(waits) == 1
        assert waits[0].reason == "timeout"
        assert waits[0].token is None
        assert waits[0].duration == 500

    def test_semaphore_pairing(self):
        def consumer():
            yield SemAcquire(sem="S")

        def producer():
            yield Compute(10)
            yield SemRelease(sem="S")

        trace = record([(consumer(), "c"), (producer(), "p")],
                       lock_cost=0, mem_cost=0).trace
        waits = [e for e in trace.iter_events() if e.kind == WAIT]
        posts = [e for e in trace.iter_events() if e.kind == POST]
        assert len(waits) == 1 and len(posts) == 1
        assert waits[0].token == posts[0].uid

    def test_barrier_last_arriver_posts(self):
        def prog(delay):
            yield Compute(delay)
            yield BarrierWait(barrier="B", parties=2)

        trace = record([(prog(10), "a"), (prog(90), "b")],
                       lock_cost=0, mem_cost=0).trace
        waits = [e for e in trace.iter_events() if e.kind == WAIT]
        posts = [e for e in trace.iter_events() if e.kind == POST]
        assert len(waits) == 1 and len(posts) == 1
        assert waits[0].duration == 80
        assert posts[0].woken == [waits[0].uid]


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        trace = record(simple_pair(), name="demo", lock_cost=3, mem_cost=1).trace
        clone = loads(dumps(trace))
        assert clone.meta.encode() == trace.meta.encode()
        assert clone.lock_schedule == trace.lock_schedule
        assert clone.thread_ids == trace.thread_ids
        originals = [e.encode() for e in trace.iter_events()]
        restored = [e.encode() for e in clone.iter_events()]
        assert originals == restored

    def test_loads_rejects_truncated(self):
        with pytest.raises(TraceError):
            loads("{}")

    def test_validate_round_trip(self):
        trace = record(simple_pair(), lock_cost=0, mem_cost=0).trace
        validate(loads(dumps(trace)))


class TestValidation:
    def test_detects_unbalanced_lock(self):
        from repro.trace import Trace, TraceEvent

        trace = Trace()
        trace.append(TraceEvent(uid="e0", tid="t0", kind=ACQUIRE, t=0, lock="L"))
        with pytest.raises(TraceError):
            validate(trace)

    def test_detects_time_disorder(self):
        from repro.trace import Trace, TraceEvent

        trace = Trace()
        trace.append(TraceEvent(uid="e0", tid="t0", kind=COMPUTE, t=100, duration=1))
        trace.append(TraceEvent(uid="e1", tid="t0", kind=COMPUTE, t=50, duration=1))
        with pytest.raises(TraceError):
            validate(trace)

    def test_clean_trace_passes(self):
        trace = record(simple_pair(), lock_cost=0, mem_cost=0).trace
        validate(trace)
