"""Index rebuild and reader resume for the segmented streaming format."""

import json

import pytest

from repro import api
from repro.errors import TraceError
from repro.trace.segments import (
    ensure_index,
    open_segmented,
    rebuild_index,
    write_segmented,
)


@pytest.fixture(scope="module")
def trace():
    return api.record("mysql", threads=3, input_size="simsmall")


def _write(trace, path, events=32):
    return write_segmented(trace, path, segment_events=events)


def _index_dict(index):
    return {
        "digest": index.digest,
        "events": index.events,
        "file_size": index.file_size,
        "footer_offset": index.footer_offset,
        "offsets": [s.offset for s in index.segments],
    }


class TestRebuildIndex:
    @pytest.mark.parametrize("name", ["t.seg.jsonl.gz", "t.seg.jsonl"])
    def test_rebuild_matches_writer_index(self, trace, tmp_path, name):
        path = tmp_path / name
        written = _write(trace, path)
        rebuilt = rebuild_index(path)
        assert rebuilt is not None
        assert _index_dict(rebuilt) == _index_dict(written)

    def test_writer_records_footer_offset(self, trace, tmp_path):
        written = _write(trace, tmp_path / "t.seg.jsonl.gz")
        assert written.footer_offset is not None
        assert written.footer_offset > written.segments[-1].offset

    def test_truncated_file_rebuilds_to_none(self, trace, tmp_path):
        path = tmp_path / "t.seg.jsonl.gz"
        _write(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])
        assert rebuild_index(path) is None


class TestEnsureIndex:
    def test_missing_sidecar_is_silently_rebuilt(self, trace, tmp_path):
        path = tmp_path / "t.seg.jsonl.gz"
        written = _write(trace, path)
        sidecar = path.with_name(path.name + ".idx")
        sidecar.unlink()
        index = ensure_index(path)
        assert index is not None
        assert _index_dict(index) == _index_dict(written)
        assert sidecar.exists()  # rewritten for the next reader

    def test_stale_sidecar_is_silently_reindexed(self, trace, tmp_path,
                                                 recwarn):
        from repro import telemetry
        from repro.telemetry import to_dict

        path = tmp_path / "t.seg.jsonl.gz"
        written = _write(trace, path)
        sidecar = path.with_name(path.name + ".idx")
        # a crashed rewrite: sidecar describes a different file size
        stale = json.loads(sidecar.read_text())
        stale["file_size"] += 12345
        sidecar.write_text(json.dumps(stale))
        sink = telemetry.Telemetry()
        with telemetry.use_telemetry(sink):
            index = ensure_index(path)
        assert index is not None
        assert _index_dict(index) == _index_dict(written)
        counters = to_dict(sink, timings=False)["counters"]
        assert counters.get("segments.reindexed") == 1
        assert len(recwarn) == 0  # silent, not a warning

    def test_fresh_sidecar_is_used_as_is(self, trace, tmp_path):
        from repro import telemetry
        from repro.telemetry import to_dict

        path = tmp_path / "t.seg.jsonl.gz"
        _write(trace, path)
        sink = telemetry.Telemetry()
        with telemetry.use_telemetry(sink):
            assert ensure_index(path) is not None
        counters = to_dict(sink, timings=False)["counters"]
        assert "segments.reindexed" not in counters


class TestReaderResume:
    @pytest.mark.parametrize("name", ["t.seg.jsonl.gz", "t.seg.jsonl"])
    def test_suspend_resume_mid_stream_sees_identical_tail(
        self, trace, tmp_path, name
    ):
        path = tmp_path / name
        _write(trace, path)

        def segment_events(segment):
            return [
                chunk.column.event(i)
                for chunk in segment.chunks
                for i in range(len(chunk.column.kind))
            ]

        with open_segmented(path) as reader:
            clean = [segment_events(s) for s in reader.segments()]

        for k in (1, len(clean) // 2, len(clean) - 1):
            with open_segmented(path) as reader:
                state = None
                for j, segment in enumerate(reader.segments(), start=1):
                    if j == k:
                        state = reader.suspend()
                        break
            fresh = open_segmented(path)
            try:
                fresh.resume(state)
                tail = [segment_events(s) for s in fresh.segments()]
            finally:
                fresh.close()
            assert len(tail) == len(clean) - k
            for got, expected in zip(tail, clean[k:]):
                assert [e.uid for e in got] == [e.uid for e in expected]

    def test_resume_past_last_segment_yields_empty_tail(self, trace, tmp_path):
        path = tmp_path / "t.seg.jsonl.gz"
        _write(trace, path)
        with open_segmented(path) as reader:
            for _segment in reader.segments():
                pass
            state = reader.suspend()
        fresh = open_segmented(path)
        try:
            fresh.resume(state)
            assert list(fresh.segments()) == []
        finally:
            fresh.close()

    def test_resume_rejects_unbackable_state(self, trace, tmp_path):
        path = tmp_path / "t.seg.jsonl.gz"
        _write(trace, path)
        fresh = open_segmented(path)
        try:
            with pytest.raises(TraceError):
                fresh.resume({"tables": None, "thread_counts": {},
                              "segments_read": -1, "events_seen": 0})
        finally:
            fresh.close()
