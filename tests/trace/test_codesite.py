"""Tests for code sites and code regions."""

import pytest

from repro.trace import CodeRegion, CodeSite


class TestCodeSite:
    def test_str(self):
        assert str(CodeSite("a.c", 10, "f")) == "a.c:10:f"
        assert str(CodeSite("a.c", 10)) == "a.c:10"

    def test_roundtrip(self):
        site = CodeSite("fil0fil.cc", 5609, "fil_flush")
        assert CodeSite.decode(site.encode()) == site

    def test_decode_none(self):
        assert CodeSite.decode(None) is None

    def test_ordering(self):
        assert CodeSite("a.c", 1) < CodeSite("a.c", 2) < CodeSite("b.c", 1)


class TestCodeRegion:
    def test_from_sites_orders_lines(self):
        region = CodeRegion.from_sites(CodeSite("a.c", 30), CodeSite("a.c", 10))
        assert (region.start_line, region.end_line) == (10, 30)

    def test_from_sites_cross_file_degrades(self):
        region = CodeRegion.from_sites(CodeSite("a.c", 5), CodeSite("b.c", 9))
        assert region == CodeRegion("a.c", 5, 5)

    def test_invalid_span_raises(self):
        with pytest.raises(ValueError):
            CodeRegion("a.c", 10, 5)

    def test_overlaps(self):
        base = CodeRegion("a.c", 10, 20)
        assert base.overlaps(CodeRegion("a.c", 20, 30))
        assert base.overlaps(CodeRegion("a.c", 5, 10))
        assert base.overlaps(CodeRegion("a.c", 12, 18))
        assert not base.overlaps(CodeRegion("a.c", 21, 30))
        assert not base.overlaps(CodeRegion("b.c", 10, 20))

    def test_merge(self):
        merged = CodeRegion("a.c", 10, 20).merge(CodeRegion("a.c", 15, 30))
        assert merged == CodeRegion("a.c", 10, 30)

    def test_merge_disjoint_raises(self):
        with pytest.raises(ValueError):
            CodeRegion("a.c", 1, 2).merge(CodeRegion("a.c", 5, 6))

    def test_roundtrip(self):
        region = CodeRegion("a.c", 3, 9)
        assert CodeRegion.decode(region.encode()) == region
