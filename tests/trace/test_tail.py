"""SegmentTail: incremental reads of a growing file, torn-tail verdicts.

The regression pinned down here: a gzip member that is still *being
written* (the recorder got half a block onto disk) must read as
"incomplete tail, retry later" — ``poll()`` returns what is complete and
keeps the partial bytes in the carry — not as corruption.  Corruption
(bytes that can never become a valid member) must still raise
:class:`TraceError`.
"""

import pytest

from repro import api
from repro.errors import TraceError
from repro.trace.segments import SegmentTail, write_segmented


@pytest.fixture(scope="module")
def seg_bytes(tmp_path_factory):
    trace = api.record("blackscholes", threads=2, scale=0.2, seed=1)
    path = tmp_path_factory.mktemp("tail") / "t.seg.jsonl.gz"
    write_segmented(trace, path, segment_events=8)
    return path.read_bytes()


def _poll_all(tail):
    segments = []
    while True:
        batch = tail.poll()
        if not batch:
            return segments
        segments.extend(batch)


class TestIncompleteTail:
    def test_two_step_append_mid_gzip_member(self, seg_bytes, tmp_path):
        """Cut the file inside a gzip member: the first poll parses only
        the complete members (no error), the second — after the rest of
        the bytes land — parses the remainder and reaches the footer."""
        live = tmp_path / "live.seg.jsonl.gz"
        cut = len(seg_bytes) // 2
        with SegmentTail(live) as tail:
            live.write_bytes(seg_bytes[:cut])
            before = _poll_all(tail)
            assert not tail.complete  # footer can't have been reached
            with open(live, "ab") as handle:
                handle.write(seg_bytes[cut:])
            after = _poll_all(tail)
            assert after, "completing the bytes must finish the parse"
            assert tail.complete
            assert len(before) + len(after) == tail.segments_read

    def test_one_byte_dribble_never_errors(self, seg_bytes, tmp_path):
        live = tmp_path / "live.seg.jsonl.gz"
        total = 0
        step = max(1, len(seg_bytes) // 257)
        with SegmentTail(live) as tail:
            for offset in range(0, len(seg_bytes), step):
                with open(live, "ab") as handle:
                    handle.write(seg_bytes[offset:offset + step])
                total += len(tail.poll())
            assert tail.complete
            assert total == tail.segments_read

    def test_missing_file_polls_empty(self, tmp_path):
        with SegmentTail(tmp_path / "nothere.seg.jsonl.gz") as tail:
            assert tail.poll() == []
            assert not tail.header_ready
            assert not tail.complete

    def test_pause_at_cut_is_not_corruption(self, seg_bytes, tmp_path):
        """Polling repeatedly at a mid-member cut keeps returning [] —
        the partial member is carried, never condemned."""
        live = tmp_path / "live.seg.jsonl.gz"
        cut = len(seg_bytes) - len(seg_bytes) // 3
        live.write_bytes(seg_bytes[:cut])
        with SegmentTail(live) as tail:
            _poll_all(tail)
            for _ in range(3):
                assert tail.poll() == []
            assert not tail.complete


class TestTornTail:
    def test_corrupt_gzip_member_is_trace_error(self, seg_bytes, tmp_path):
        """Garbage that can never decompress is a verdict, not a retry."""
        live = tmp_path / "live.seg.jsonl.gz"
        cut = len(seg_bytes) // 2
        blob = bytearray(seg_bytes[:cut])
        # find the second member's header and wreck its deflate stream
        second = bytes(blob).find(b"\x1f\x8b", 2)
        assert second > 0
        for i in range(second + 10, min(second + 64, len(blob))):
            blob[i] ^= 0xFF
        live.write_bytes(bytes(blob))
        with SegmentTail(live) as tail:
            with pytest.raises(TraceError):
                for _ in range(8):
                    tail.poll()


class TestSuspendBoundaries:
    def test_suspend_at_requires_keep_boundaries(self, seg_bytes, tmp_path):
        live = tmp_path / "live.seg.jsonl.gz"
        live.write_bytes(seg_bytes)
        with SegmentTail(live) as tail:
            _poll_all(tail)
            with pytest.raises(TraceError):
                tail.suspend_at(1)

    def test_suspend_at_matches_fold_position(self, seg_bytes, tmp_path):
        live = tmp_path / "live.seg.jsonl.gz"
        live.write_bytes(seg_bytes)
        with SegmentTail(live) as tail:
            tail.keep_boundaries = True
            segments = _poll_all(tail)
            assert len(segments) >= 3
            state = tail.suspend_at(2)
            assert state["segments_read"] == 2
            # earlier boundaries are pruned once a later one is taken
            with pytest.raises(TraceError):
                tail.suspend_at(1)
            assert tail.suspend_at(3)["segments_read"] == 3
