"""Torn/truncated/mislabeled trace files: the loader never crashes rawly.

Regression tests for three container-level bugs:

* a bit flip inside a gzip deflate stream raises ``zlib.error`` — which
  is *not* an ``OSError`` — and used to escape salvage mode uncaught;
* ``dump()`` wrote the target file in place, so a crash mid-dump left a
  torn file where a previous good trace had been;
* a file named ``*.gz`` without gzip bytes (or gzip bytes without the
  suffix) produced a confusing JSON/unicode error instead of naming the
  container mismatch.
"""

import gzip
import warnings

import pytest

from repro.errors import SalvageWarning, TraceError
from repro.record import record
from repro.sim import Acquire, Compute, Release, Store, Write
from repro.trace import dump, load, load_trace
from repro.trace import serialize


def locked_trace(rounds=12):
    def prog(k):
        for i in range(rounds):
            yield Compute(40 + k)
            yield Acquire(lock="L")
            yield Write("x", op=Store(i), site=None)
            yield Release(lock="L")

    return record([(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0).trace


class TestGzipBitflipSalvage:
    def test_flipped_byte_in_deflate_stream_salvages(self, tmp_path):
        """zlib.error from a corrupt deflate stream must not escape.

        gzip.BadGzipFile is an OSError but zlib.error is not, so a flip
        that corrupts the compressed payload (rather than the gzip
        framing) used to crash salvage mode with a raw zlib.error.
        """
        trace = locked_trace()
        path = tmp_path / "t.jsonl.gz"
        dump(trace, path)
        data = bytearray(path.read_bytes())
        # sweep flips across the whole file — header, deflate stream and
        # trailer — at deterministic positions; salvage must survive all
        for pos in range(10, len(data) - 8, max(1, len(data) // 64)):
            flipped = bytearray(data)
            flipped[pos] ^= 0xFF
            path.write_bytes(bytes(flipped))
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    load_trace(path, salvage=True)
            except TraceError:
                pass  # unsalvageable damage reports cleanly

    def test_truncated_gzip_salvages_with_warning(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.jsonl.gz"
        dump(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: int(len(data) * 0.6)])
        with pytest.warns(SalvageWarning):
            loaded = load_trace(path, salvage=True)
        assert 0 < len(loaded.trace) < len(trace)

    def test_strict_load_reports_damage_as_trace_error(self, tmp_path):
        trace = locked_trace()
        path = tmp_path / "t.jsonl.gz"
        dump(trace, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            load(path)


class TestAtomicDump:
    def test_failed_dump_preserves_previous_file(self, tmp_path, monkeypatch):
        """A dump that dies mid-write must leave the old bytes untouched."""
        path = tmp_path / "t.jsonl.gz"
        dump(locked_trace(rounds=3), path)
        before = path.read_bytes()

        def explode(trace, handle):
            handle.write('{"meta": {}}\n')  # partial output, then crash
            raise RuntimeError("simulated crash mid-dump")

        monkeypatch.setattr(serialize, "write_trace", explode)
        with pytest.raises(RuntimeError):
            dump(locked_trace(rounds=5), path)
        assert path.read_bytes() == before  # old trace intact, not torn
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert not leftovers

    def test_successful_dump_replaces_and_cleans_up(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        dump(locked_trace(rounds=3), path)
        dump(locked_trace(rounds=5), path)
        assert len(load(path)) == len(locked_trace(rounds=5))
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert not leftovers

    def test_dump_is_gzip_when_suffix_says_so(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        dump(locked_trace(rounds=3), path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"


class TestContainerMismatch:
    def test_gz_suffix_without_gzip_bytes(self, tmp_path):
        trace = locked_trace(rounds=3)
        plain = tmp_path / "t.jsonl"
        dump(trace, plain)
        mislabeled = tmp_path / "t.jsonl.gz"
        mislabeled.write_bytes(plain.read_bytes())
        with pytest.raises(TraceError, match="does not start with the gzip magic"):
            load(mislabeled)
        with pytest.raises(TraceError, match="does not start with the gzip magic"):
            load_trace(mislabeled, salvage=True)

    def test_gzip_bytes_without_gz_suffix(self, tmp_path):
        trace = locked_trace(rounds=3)
        gz = tmp_path / "t.jsonl.gz"
        dump(trace, gz)
        mislabeled = tmp_path / "t.jsonl"
        mislabeled.write_bytes(gz.read_bytes())
        with pytest.raises(TraceError, match="not named [*].gz"):
            load(mislabeled)
        with pytest.raises(TraceError, match="not named [*].gz"):
            load_trace(mislabeled, salvage=True)

    def test_error_names_the_offending_file(self, tmp_path):
        mislabeled = tmp_path / "t.jsonl.gz"
        mislabeled.write_text('{"meta": {}}\n')
        with pytest.raises(TraceError, match="t.jsonl.gz"):
            load(mislabeled)
