"""Additional property-based tests: rwlocks, fusion, fix rewriters."""

from hypothesis import given, settings, strategies as st

from repro.perfdebug.fusion import FusedUlcp, fuse
from repro.perfdebug.metrics import UlcpPerformance
from repro.perfdebug.rewrite import apply_lock_split_fix, apply_rwlock_fix
from repro.record import record
from repro.replay import ELSC_S, ORIG_S, Replayer
from repro.sim import Acquire, Compute, Machine, Read, Release, Store, Write
from repro.trace import CodeRegion, CodeSite, problems


# ------------------------------------------------------------------ rwlock

rw_program_strategy = st.lists(
    st.tuples(
        st.booleans(),           # shared?
        st.integers(0, 200),     # think time
        st.integers(1, 120),     # hold time
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=30, deadline=None)
@given(st.lists(rw_program_strategy, min_size=1, max_size=4))
def test_rwlock_exclusion_invariant(threads):
    """At no simulated instant do a writer and any other holder coexist."""
    intervals = []

    def prog(sections, k):
        for shared, think, hold in sections:
            if think:
                yield Compute(think)
            yield Acquire(lock="RW", shared=shared)
            start = None  # captured via machine time below
            yield Compute(hold)
            yield Release(lock="RW")

    m = Machine(num_cores=8, lock_cost=0, mem_cost=0)

    # observer captures hold intervals
    class Obs:
        def __getattr__(self, name):
            def cb(*args, **kwargs):
                pass

            return cb

        def on_acquired(self, tid, lock, t_request, t_acquired, site, uid,
                        spin, shared=False):
            open_holds[tid] = (t_acquired, shared)

        def on_released(self, tid, lock, t, site, uid):
            start, shared = open_holds.pop(tid)
            intervals.append((start, t, shared, tid))

    open_holds = {}
    m.observer = Obs()
    for k, sections in enumerate(threads):
        m.add_thread(prog(sections, k))
    m.run()

    for i, (s1, e1, shared1, t1) in enumerate(intervals):
        for s2, e2, shared2, t2 in intervals[i + 1:]:
            overlap = max(s1, s2) < min(e1, e2)
            if overlap:
                assert shared1 and shared2, (
                    f"writer overlapped another holder: {intervals}"
                )


# ------------------------------------------------------------------ fusion


def _perf(delta, r1, r2):
    class _CS:
        def __init__(self, region):
            self._region = region

        @property
        def region(self):
            return self._region

    class _Pair:
        def __init__(self):
            self.c1 = _CS(r1)
            self.c2 = _CS(r2)
            self.kind = "read_read"

        @property
        def region1(self):
            return r1

        @property
        def region2(self):
            return r2

    return UlcpPerformance(
        pair=_Pair(), delta_t=delta,
        time1_original=0, time1_free=0,
        time23_original=delta, time23_free=0,
    )


region_strategy = st.builds(
    lambda start, length: CodeRegion("f.c", start, start + length),
    st.integers(1, 60),
    st.integers(0, 8),
)

perf_strategy = st.builds(
    _perf, st.integers(0, 1000), region_strategy, region_strategy
)


@settings(max_examples=40, deadline=None)
@given(st.lists(perf_strategy, max_size=8), st.randoms())
def test_fusion_total_delta_conserved_and_order_stable(perfs, rnd):
    """Fusion conserves total ΔT, and the group count is permutation-
    independent (the fixpoint does not depend on input order)."""
    groups = fuse(list(perfs))
    assert sum(g.delta_t for g in groups) == sum(p.delta_t for p in perfs)
    assert sum(g.count for g in groups) == len(perfs)
    shuffled = list(perfs)
    rnd.shuffle(shuffled)
    again = fuse(shuffled)
    assert len(again) == len(groups)


# ------------------------------------------------------------- fix rewrites


fixture_strategy = st.lists(
    st.tuples(st.integers(0, 150), st.integers(1, 6)), min_size=2, max_size=4
)


@settings(max_examples=25, deadline=None)
@given(fixture_strategy)
def test_rwlock_fix_preserves_wellformedness_and_memory(threads):
    def reader(think, rounds):
        for _ in range(rounds):
            if think:
                yield Compute(think)
            yield Acquire(lock="L", site=CodeSite("p.c", 5))
            yield Read("shared", site=CodeSite("p.c", 6))
            yield Release(lock="L", site=CodeSite("p.c", 7))

    def init():
        yield Write("shared", op=Store(9), site=CodeSite("p.c", 1))

    programs = [(reader(t, r), f"r{i}") for i, (t, r) in enumerate(threads)]
    programs.append((init(), "init"))
    trace = record(programs, name="prop").trace
    fixed = apply_rwlock_fix(trace, "L")
    assert problems(fixed) == []
    replayer = Replayer(jitter=0.0)
    original = replayer.replay(trace, scheme=ELSC_S)
    after = replayer.replay(fixed, scheme=ORIG_S)
    assert after.final_memory == original.final_memory
    assert after.end_time <= original.end_time


@settings(max_examples=25, deadline=None)
@given(fixture_strategy)
def test_split_fix_preserves_memory(threads):
    def writer(k, think, rounds):
        for r in range(rounds):
            if think:
                yield Compute(think)
            yield Acquire(lock="L", site=CodeSite("p.c", 5))
            yield Write(f"slot[{k}]", op=Store(r + 1), site=CodeSite("p.c", 6))
            yield Release(lock="L", site=CodeSite("p.c", 7))

    def scanner():
        yield Compute(5000)
        for k in range(len(threads)):
            yield Read(f"slot[{k}]")

    programs = [
        (writer(k, t, r), f"w{k}") for k, (t, r) in enumerate(threads)
    ]
    programs.append((scanner(), "scan"))
    trace = record(programs, name="prop").trace
    fixed = apply_lock_split_fix(trace, "L")
    assert problems(fixed) == []
    replayer = Replayer(jitter=0.0)
    original = replayer.replay(trace, scheme=ELSC_S)
    after = replayer.replay(fixed, scheme=ORIG_S)
    assert after.final_memory == original.final_memory
