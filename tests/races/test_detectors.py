"""Tests for the Eraser and happens-before race detectors."""

from repro.analysis import transform
from repro.races import eraser_races, happens_before_races, transformed_trace_races
from repro.races.happens_before import VectorClock
from repro.record import record
from repro.sim import Acquire, Compute, Read, Release, SetFlag, AwaitFlag, Store, Write
from repro.trace import CodeSite


def site(line):
    return CodeSite("races.c", line)


def rec(*programs):
    return record(list(programs), lock_cost=0, mem_cost=0).trace


class TestVectorClock:
    def test_tick_and_join(self):
        a = VectorClock()
        a.tick("t0")
        b = VectorClock()
        b.tick("t1")
        b.join(a)
        assert b.clocks == {"t0": 1, "t1": 1}

    def test_happens_before(self):
        a = VectorClock({"t0": 1})
        b = VectorClock({"t0": 2, "t1": 1})
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_concurrent_clocks(self):
        a = VectorClock({"t0": 1})
        b = VectorClock({"t1": 1})
        assert not a.happens_before(b) or not b.happens_before(a)


class TestEraser:
    def test_locked_accesses_are_clean(self):
        def prog(val, delay):
            yield Compute(delay)
            yield Acquire(lock="L")
            yield Write("x", op=Store(val))
            yield Release(lock="L")

        assert eraser_races(rec(prog(1, 0), prog(2, 50))) == []

    def test_unlocked_conflicting_writes_race(self):
        def prog(val, delay):
            yield Compute(delay)
            yield Write("x", op=Store(val))

        races = eraser_races(rec(prog(1, 0), prog(2, 50)))
        assert len(races) == 1
        assert races[0].addr == "x"

    def test_read_only_sharing_is_clean(self):
        def prog(delay):
            yield Compute(delay)
            yield Read("x")

        assert eraser_races(rec(prog(0), prog(50))) == []

    def test_inconsistent_locks_race(self):
        # Eraser refines the candidate lockset only after leaving the
        # exclusive state, so the empty intersection shows at the third
        # access: {B} (t1's) ∩ {A} (t0's second write) = {}.
        def prog(lock, delays):
            for delay in delays:
                yield Compute(delay)
                yield Acquire(lock=lock)
                yield Write("x", op=Store(1))
                yield Release(lock=lock)

        races = eraser_races(rec(prog("A", [0, 100]), prog("B", [50])))
        assert len(races) == 1

    def test_exclusive_phase_never_races(self):
        def prog():
            for i in range(5):
                yield Write("x", op=Store(i))

        assert eraser_races(rec(prog())) == []


class TestHappensBefore:
    def test_lock_ordered_accesses_are_clean(self):
        def prog(val, delay):
            yield Compute(delay)
            yield Acquire(lock="L")
            yield Write("x", op=Store(val))
            yield Release(lock="L")

        assert happens_before_races(rec(prog(1, 0), prog(2, 50))) == []

    def test_unordered_conflicting_accesses_race(self):
        def prog(val, delay):
            yield Compute(delay)
            yield Write("x", op=Store(val))

        races = happens_before_races(rec(prog(1, 0), prog(2, 50)))
        assert races
        assert races[0].addr == "x"

    def test_flag_edge_orders_accesses(self):
        def producer():
            yield Write("x", op=Store(1))
            yield SetFlag(flag="ready")

        def consumer():
            yield AwaitFlag(flag="ready")
            yield Read("x")

        assert happens_before_races(rec(producer(), consumer())) == []

    def test_transformed_trace_tlcps_stay_ordered(self):
        def writer(val, delay):
            yield Compute(delay)
            yield Acquire(lock="L", site=site(1))
            yield Write("x", op=Store(val), site=site(2))
            yield Release(lock="L", site=site(3))

        trace = rec(writer(1, 0), writer(2, 50))
        result = transform(trace)
        # the TLCP became a causal edge; the transformed trace is race-free
        assert transformed_trace_races(result) == []

    def test_transformed_trace_reports_removed_conflicts(self):
        """If a real conflict were (wrongly) declassified, HB must flag it."""

        def writer(val, delay):
            yield Compute(delay)
            yield Acquire(lock="L", site=site(1))
            yield Write("x", op=Store(val), site=site(2))
            yield Release(lock="L", site=site(3))

        trace = rec(writer(1, 0), writer(2, 50))
        result = transform(trace)
        # forcibly break the causal edges to simulate a bad transformation
        result.plan.preds = {uid: [] for uid in result.plan.preds}
        races = transformed_trace_races(result)
        assert races
