"""Backend parity: numpy kernels == pure Python == reference, byte for byte.

The vectorized kernels (:mod:`repro.kernels`) must be invisible in the
output: for any trace, analysis and transformation under the numpy
backend equal the pure-Python walk, which in turn equals the retained
:mod:`repro.analysis.reference` oracle — identical pair kinds,
breakdowns, section state and serialized transformed traces.

Also covered here: the ``REPRO_NO_NUMPY`` forced-fallback knob, the
affinity-sharded single-trace scan (``jobs N == jobs 1`` determinism,
error surfacing, graceful unpinned degradation) and the
``runner.affinity`` telemetry gauge.
"""

import os
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro import kernels
from repro.analysis import analyze_pairs, transform
from repro.analysis.reference import analyze_pairs_reference
from repro.analysis.streaming import analyze_segments
from repro.errors import TraceError
from repro.record import record
from repro.telemetry import Telemetry, use_telemetry
from repro.trace import dumps, loads
from repro.trace.segments import SegmentedTraceWriter, write_segmented
from repro.trace.trace import TraceMeta
from repro.workloads import get_workload

from tests.analysis.test_engine_equivalence import (
    breakdown_tuple,
    build_program,
    pair_kinds,
    program_set_strategy,
    section_state,
)

requires_numpy = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="numpy not installed"
)

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


@contextmanager
def forced_backend(name):
    previous = kernels.backend()
    kernels.set_backend(name)
    try:
        yield
    finally:
        kernels.set_backend(previous)


def _full_output(payload, backend):
    """Analysis + transformed bytes under one backend, on a fresh trace.

    A fresh ``loads`` per backend matters: the scan and columnar-view
    memos live on the trace object, and a shared instance would let the
    second backend coast on the first one's cached work.
    """
    with forced_backend(backend):
        trace = loads(payload)
        analysis = analyze_pairs(trace)
        result = transform(trace, analysis=analysis)
        return (
            pair_kinds(analysis),
            breakdown_tuple(analysis),
            section_state(analysis.sections),
            dumps(result.trace),
        )


def _reference_output(payload):
    with forced_backend("python"):
        trace = loads(payload)
        analysis = analyze_pairs_reference(trace)
        result = transform(trace, analysis=analysis)
        return (
            pair_kinds(analysis),
            breakdown_tuple(analysis),
            section_state(analysis.sections),
            dumps(result.trace),
        )


# ------------------------------------------------------- backend parity


@requires_numpy
@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_random_programs_backend_parity(program_specs):
    programs = [build_program(sections) for sections in program_specs]
    payload = dumps(record([p() for p in programs]).trace)
    vectorized = _full_output(payload, "numpy")
    pure = _full_output(payload, "python")
    reference = _reference_output(payload)
    assert vectorized == pure
    assert pure == reference


@requires_numpy
@pytest.mark.parametrize("workload", ("tunable-contention", "mixed-bag"))
def test_workload_backend_parity(workload):
    trace = get_workload(workload, threads=4, seed=5).record().trace
    payload = dumps(trace)
    assert _full_output(payload, "numpy") == _full_output(payload, "python")


def test_forced_fallback_env_knob():
    """REPRO_NO_NUMPY forces the python backend even with numpy installed."""
    code = (
        "import repro.kernels as k; "
        "assert not k.HAVE_NUMPY; "
        "assert k.backend() == 'python'; "
        "assert not k.use_numpy(); "
        "print('ok')"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={**os.environ, "REPRO_NO_NUMPY": "1",
             "PYTHONPATH": str(SRC_DIR)},
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


@requires_numpy
def test_numpy_backend_refused_when_disabled(monkeypatch):
    monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
    with pytest.raises(RuntimeError, match="unavailable"):
        kernels.set_backend("numpy")
    assert kernels.set_backend("auto") == "python"
    kernels.set_backend("auto")  # restore under the real HAVE_NUMPY later


# --------------------------------------------------- sharded fan-out scan


def _segmented_workload(tmp_path, name="shard.seg.jsonl.gz"):
    trace = get_workload("mixed-bag", threads=4, seed=2).record().trace
    path = tmp_path / name
    write_segmented(trace, path, segment_events=256)
    return path


def _analysis_state(analysis):
    """Comparable state for streaming analyses.

    Unlike :func:`section_state` this never touches ``cs.body`` — a
    streamed section's body deliberately stays in the file (only its
    span is known) — so it compares everything a scan produces:
    identity, anchors, order and the four access masks.
    """
    sections = {
        cs.uid: (
            cs.tid,
            cs.lock,
            cs.lock_index,
            cs.pre_anchor,
            cs.post_anchor,
            frozenset(cs.reads),
            frozenset(cs.writes),
            frozenset(cs.srd),
            frozenset(cs.swr),
        )
        for cs in analysis.sections
    }
    return (
        pair_kinds(analysis),
        breakdown_tuple(analysis),
        [cs.uid for cs in analysis.sections],
        sections,
        analysis.events,
    )


def test_sharded_scan_matches_serial(tmp_path):
    path = _segmented_workload(tmp_path)
    serial = analyze_segments(path, jobs=1)
    sharded = analyze_segments(path, jobs=2)
    assert _analysis_state(sharded) == _analysis_state(serial)


def test_sharded_scan_more_jobs_than_threads(tmp_path):
    path = _segmented_workload(tmp_path)
    serial = analyze_segments(path, jobs=1)
    sharded = analyze_segments(path, jobs=64)  # clamps to thread count
    assert _analysis_state(sharded) == _analysis_state(serial)


def test_sharded_scan_rejects_checkpoint(tmp_path):
    path = _segmented_workload(tmp_path)
    with pytest.raises(ValueError, match="serial scan"):
        analyze_segments(path, jobs=2, checkpoint=object())


def test_sharded_scan_surfaces_trace_errors(tmp_path):
    path = tmp_path / "bad.seg.jsonl.gz"
    writer = SegmentedTraceWriter(
        path,
        meta=TraceMeta(name="bad", lock_cost=0, mem_cost=0),
        threads=["t0", "t1"],
        lock_schedule={"L": ["a0"]},
    )
    writer.add_block("t0", uids=["a0"], kinds="acquire", t=[0],
                     lock="L", t_request=[0])
    writer.add_block("t1", uids=["c0"], kinds="compute", t=[5], duration=1)
    writer.close()
    with pytest.raises(TraceError, match="unclosed"):
        analyze_segments(path, jobs=2)


def test_sharded_scan_unpinned_fallback(tmp_path, monkeypatch):
    """No pinnable CPUs: the fan-out still runs, gauge records 0."""
    from repro.runner import affinity

    monkeypatch.setattr(affinity, "slots", lambda: [])
    path = _segmented_workload(tmp_path)
    sink = Telemetry()
    with use_telemetry(sink):
        sharded = analyze_segments(path, jobs=2)
    serial = analyze_segments(path, jobs=1)
    assert _analysis_state(sharded) == _analysis_state(serial)
    assert sink.snapshot()["gauges"]["runner.affinity"] == 0


def test_sharded_scan_records_affinity_gauge(tmp_path):
    from repro.runner import affinity

    path = _segmented_workload(tmp_path)
    sink = Telemetry()
    with use_telemetry(sink):
        analyze_segments(path, jobs=2)
    assert (
        sink.snapshot()["gauges"]["runner.affinity"]
        == len(affinity.slots())
    )


def test_analyze_facade_jobs_needs_segmented_file():
    from repro import api

    trace = get_workload("tunable-contention", threads=2, seed=0)
    trace = trace.record().trace
    with pytest.raises(TraceError, match="jobs"):
        api.analyze(trace, jobs=2)


# ------------------------------------------------------------- affinity


def test_affinity_degrades_silently(monkeypatch):
    from repro.runner import affinity

    monkeypatch.setattr(affinity, "supported", lambda: False)
    assert affinity.slots() == []
    assert affinity.pin(0) is None
    assert affinity.pin(3, []) is None


def test_affinity_pin_compact_placement():
    from repro.runner import affinity

    if not affinity.supported():
        pytest.skip("platform cannot pin")
    original = os.sched_getaffinity(0)
    cpus = sorted(original)
    try:
        for index in (0, 1, len(cpus) + 1):
            cpu = affinity.pin(index, cpus)
            assert cpu == cpus[index % len(cpus)]
            assert os.sched_getaffinity(0) == {cpu}
    finally:
        os.sched_setaffinity(0, original)
