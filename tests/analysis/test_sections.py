"""Tests for critical-section extraction and shadow annotation."""

import pytest

from repro.analysis import (
    annotate_shared_sets,
    extract_sections,
    sections_by_lock,
    shared_addresses,
)
from repro.errors import TraceError
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from tests.analysis.helpers import cs_reader, cs_writer, record_programs, site


class TestExtraction:
    def test_simple_sections(self):
        trace = record_programs(cs_reader("L", "x"), cs_writer("L", "x", stagger=5))
        sections = extract_sections(trace)
        assert len(sections) == 2
        assert all(cs.lock == "L" for cs in sections)
        assert sections[0].lock_index == 0
        assert sections[1].lock_index == 1

    def test_body_contents(self):
        trace = record_programs(cs_reader("L", "x"))
        (cs,) = extract_sections(trace)
        kinds = [e.kind for e in cs.body]
        assert kinds == ["read", "compute"]
        assert cs.reads == {"x"}
        assert cs.writes == set()

    def test_duration_and_bounds(self):
        trace = record_programs(cs_reader("L", "x", duration=100))
        (cs,) = extract_sections(trace)
        assert cs.t_end - cs.t_start == 100
        assert cs.duration == 100

    def test_nested_sections(self):
        def prog():
            yield Acquire(lock="outer", site=site(1))
            yield Acquire(lock="inner", site=site(2))
            yield Write("x", op=Store(1), site=site(3))
            yield Release(lock="inner", site=site(4))
            yield Compute(10, site=site(5))
            yield Release(lock="outer", site=site(6))

        trace = record_programs(prog())
        sections = extract_sections(trace)
        assert len(sections) == 2
        outer = next(cs for cs in sections if cs.lock == "outer")
        inner = next(cs for cs in sections if cs.lock == "inner")
        # outer body contains the inner lock events and its write
        assert {"x"} == outer.writes == inner.writes
        inner_kinds = [e.kind for e in inner.body]
        assert inner_kinds == ["write"]
        outer_kinds = [e.kind for e in outer.body]
        assert outer_kinds == ["acquire", "write", "release", "compute"]

    def test_region_spans_lock_and_unlock_sites(self):
        trace = record_programs(cs_reader("L", "x", line=10))
        (cs,) = extract_sections(trace)
        assert cs.region.start_line == 10
        assert cs.region.end_line == 13

    def test_anchors(self):
        def prog():
            yield Compute(5, site=site(1))
            yield Acquire(lock="L", site=site(2))
            yield Release(lock="L", site=site(3))
            yield Compute(5, site=site(4))

        trace = record_programs(prog())
        (cs,) = extract_sections(trace)
        pre = trace.event(cs.pre_anchor)
        post = trace.event(cs.post_anchor)
        assert pre.kind == "compute"
        assert post.kind == "compute"

    def test_anchor_fallback_to_thread_edges(self):
        def prog():
            yield Acquire(lock="L")
            yield Release(lock="L")

        trace = record_programs(prog())
        (cs,) = extract_sections(trace)
        # thread_start precedes, thread_end follows
        assert trace.event(cs.pre_anchor).kind == "thread_start"
        assert trace.event(cs.post_anchor).kind == "thread_end"

    def test_unbalanced_trace_rejected(self):
        from repro.trace import Trace, TraceEvent

        trace = Trace()
        trace.append(TraceEvent(uid="e0", tid="t0", kind="acquire", t=0, lock="L"))
        with pytest.raises(TraceError):
            extract_sections(trace)

    def test_sections_by_lock_groups_in_order(self):
        trace = record_programs(
            cs_reader("A", "x"),
            cs_reader("A", "x", stagger=5),
            cs_reader("B", "y"),
        )
        grouped = sections_by_lock(extract_sections(trace))
        assert set(grouped) == {"A", "B"}
        assert [cs.lock_index for cs in grouped["A"]] == [0, 1]


class TestShadow:
    def test_shared_addresses_needs_two_threads(self):
        trace = record_programs(cs_reader("L", "x"), cs_writer("L", "y", stagger=5))
        assert shared_addresses(trace) == set()

    def test_shared_addresses_found(self):
        trace = record_programs(cs_reader("L", "x"), cs_writer("L", "x", stagger=5))
        assert shared_addresses(trace) == {"x"}

    def test_annotate_restricts_to_shared(self):
        trace = record_programs(cs_reader("L", "x"), cs_writer("L", "x", stagger=5))
        sections = extract_sections(trace)
        annotate_shared_sets(sections, shared_addresses(trace))
        reader = next(cs for cs in sections if cs.reads)
        assert reader.srd == {"x"}
        assert reader.swr == set()

    def test_private_access_makes_section_empty(self):
        trace = record_programs(cs_writer("L", "private"), cs_reader("L", "x", stagger=5))
        sections = extract_sections(trace)
        annotate_shared_sets(sections, shared_addresses(trace))
        assert all(cs.is_empty for cs in sections)

    def test_shadow_memory_incremental(self):
        from repro.analysis import ShadowMemory

        shadow = ShadowMemory()
        shadow.record_read("t0", "x")
        assert not shadow.is_shared("x")
        shadow.record_write("t1", "x")
        assert shadow.is_shared("x")
        assert shadow.readers("x") == {"t0"}
        assert shadow.writers("x") == {"t1"}
        assert shadow.addresses() == {"x"}
