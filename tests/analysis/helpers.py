"""Shared trace-building helpers for analysis tests.

``record_programs`` records small hand-written programs on a zero-cost
machine so tests can reason about exact structure without cost noise.
"""

from repro.record import record
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace import CodeSite


def record_programs(*programs, **kwargs):
    kwargs.setdefault("lock_cost", 0)
    kwargs.setdefault("mem_cost", 0)
    return record(list(programs), **kwargs).trace


def site(line, file="test.c", fn="f"):
    return CodeSite(file, line, fn)


def cs_reader(lock, addr, duration=100, line=10, stagger=0):
    """A thread with one read-only critical section."""
    if stagger:
        yield Compute(stagger)
    yield Acquire(lock=lock, site=site(line))
    yield Read(addr, site=site(line + 1))
    yield Compute(duration, site=site(line + 2))
    yield Release(lock=lock, site=site(line + 3))


def cs_writer(lock, addr, value=1, duration=100, line=20, stagger=0, op=None):
    """A thread with one writing critical section."""
    if stagger:
        yield Compute(stagger)
    yield Acquire(lock=lock, site=site(line))
    yield Write(addr, op=op or Store(value), site=site(line + 1))
    yield Compute(duration, site=site(line + 2))
    yield Release(lock=lock, site=site(line + 3))


def cs_empty(lock, duration=100, line=30, stagger=0):
    """A null-lock critical section: no shared accesses inside."""
    if stagger:
        yield Compute(stagger)
    yield Acquire(lock=lock, site=site(line))
    yield Compute(duration, site=site(line + 1))
    yield Release(lock=lock, site=site(line + 2))
