"""Tests for RULE 1-4: topology building, re-sync, and trace rewriting.

The central fixture reconstructs the paper's Figure 7 example:

* T1 runs R1 (reads addr "1") then R2 (reads addr "2"),
* T2 runs R2 then W1 (writes addr "1"),
* T3 runs W1 twice,

all under one lock L, with staggers pinning the acquisition order to
``R1(T1), R2(T2), W1st(T3), W1(T2), R2(T1), W2nd(T3)``.
"""

import pytest

from repro.analysis import (
    CAUSAL,
    build_resync_plan,
    build_topology,
    annotate_shared_sets,
    effective_lockset,
    extract_sections,
    mutually_exclusive,
    shared_addresses,
    transform,
)
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace.events import ACQUIRE, CS_ENTER, CS_EXIT, RELEASE
from tests.analysis.helpers import record_programs, site


def _cs(lock, events, line):
    yield Acquire(lock=lock, site=site(line))
    for event in events:
        yield event
    yield Release(lock=lock, site=site(line + 2))


def figure7_trace():
    def t1():
        yield from _cs("L", [Read("1", site=site(11))], 10)
        yield Compute(40)
        yield from _cs("L", [Read("2", site=site(16))], 15)

    def t2():
        yield Compute(10)
        yield from _cs("L", [Read("2", site=site(21))], 20)
        yield Compute(15)
        yield from _cs("L", [Write("1", op=Store(5), site=site(26))], 25)

    def t3():
        yield Compute(20)
        yield from _cs("L", [Write("1", op=Store(3), site=site(31))], 30)
        yield Compute(25)
        yield from _cs("L", [Write("1", op=Store(9), site=site(36))], 35)

    return record_programs(t1(), t2(), t3())


def figure7_topology(**kwargs):
    trace = figure7_trace()
    sections = extract_sections(trace)
    annotate_shared_sets(sections, shared_addresses(trace))
    topology = build_topology(trace, sections, **kwargs)
    return trace, sections, topology


def label(sections):
    """Map each section to a readable label for assertions."""
    names = {}
    per_thread_counts = {}
    for cs in sorted(sections, key=lambda c: c.lock_index):
        body_kinds = {e.kind for e in cs.body}
        rw = "W" if "write" in body_kinds else "R"
        addr = next(e.addr for e in cs.body if e.kind in ("read", "write"))
        count = per_thread_counts.get((cs.tid, rw, addr), 0)
        per_thread_counts[(cs.tid, rw, addr)] = count + 1
        suffix = "" if count == 0 else "'"
        names[f"{rw}{addr}@{cs.tid}{suffix}"] = cs
    return names


class TestRule1:
    def test_causal_edges_match_paper_example(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        edges = set(topology.causal_edges())
        expected = {
            (cs["R1@t0"].uid, cs["W1@t1"].uid),
            (cs["R1@t0"].uid, cs["W1@t2"].uid),
            (cs["W1@t2"].uid, cs["W1@t1"].uid),
            (cs["W1@t1"].uid, cs["W1@t2'"].uid),
        }
        assert edges == expected

    def test_read_read_pairs_get_no_edge(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        assert topology.is_standalone(cs["R2@t0"].uid)
        assert topology.is_standalone(cs["R2@t1"].uid)

    def test_topology_is_acyclic(self):
        _, _, topology = figure7_topology()
        order = topology.toposort()
        assert len(order) == 6

    def test_benign_skipped_during_search(self):
        # T1 writes 7; T2 writes 7 (benign) then writes 9 (real conflict):
        # the causal edge must skip the benign section and land on the real one.
        def t1():
            yield from _cs("L", [Write("x", op=Store(7), site=site(11))], 10)

        def t2():
            yield Compute(10)
            yield from _cs("L", [Write("x", op=Store(7), site=site(21))], 20)
            yield Compute(5)
            yield from _cs("L", [Write("x", op=Store(9), site=site(26))], 25)

        trace = record_programs(t1(), t2())
        sections = extract_sections(trace)
        annotate_shared_sets(sections, shared_addresses(trace))
        topology = build_topology(trace, sections)
        by_index = sorted(sections, key=lambda c: c.lock_index)
        first, benign, real = by_index
        assert real.uid in topology.succs(first.uid)
        assert benign.uid not in topology.succs(first.uid)


class TestRule2:
    def test_order_edges_chain_causal_nodes(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        causal_chain = [cs["R1@t0"], cs["W1@t2"], cs["W1@t1"], cs["W1@t2'"]]
        for first, second in zip(causal_chain, causal_chain[1:]):
            assert second.uid in topology.succs(first.uid)

    def test_order_edges_can_be_disabled(self):
        _, _, with_order = figure7_topology(order_edges=True)
        _, _, without = figure7_topology(order_edges=False)
        assert len(without.edges) <= len(with_order.edges)


class TestRule3:
    def test_aux_locks_assigned_to_outdegree_nodes(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        plan = build_resync_plan(topology)
        for name in ("R1@t0", "W1@t2", "W1@t1"):
            assert cs[name].uid in plan.aux_locks
        # final W has no successors -> no own lock
        assert cs["W1@t2'"].uid not in plan.aux_locks

    def test_locksets_include_pred_locks(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        plan = build_resync_plan(topology)
        w1_t1 = cs["W1@t1"].uid  # preds: R1@t0 and W1@t2
        lockset = set(plan.lockset_of(w1_t1))
        assert plan.aux_locks[cs["R1@t0"].uid] in lockset
        assert plan.aux_locks[cs["W1@t2"].uid] in lockset

    def test_standalone_nodes_removed(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        plan = build_resync_plan(topology)
        assert cs["R2@t0"].uid in plan.removed
        assert cs["R2@t1"].uid in plan.removed

    def test_aux_schedule_owner_first(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        plan = build_resync_plan(topology)
        own = plan.aux_locks[cs["R1@t0"].uid]
        schedule = plan.aux_schedule[own]
        assert schedule[0] == cs["R1@t0"].uid
        assert set(schedule[1:]) == {cs["W1@t1"].uid, cs["W1@t2"].uid}


class TestRule4:
    def test_mutual_exclusion_via_lockset_intersection(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        plan = build_resync_plan(topology)
        assert mutually_exclusive(plan, cs["R1@t0"].uid, cs["W1@t1"].uid)
        assert not mutually_exclusive(plan, cs["R2@t0"].uid, cs["R2@t1"].uid)

    def test_effective_lockset_shrinks_with_ended_preds(self):
        trace, sections, topology = figure7_topology()
        cs = label(sections)
        plan = build_resync_plan(topology)
        target = cs["W1@t1"].uid
        full = effective_lockset(plan, target, ended=set())
        shrunk = effective_lockset(plan, target, ended={cs["R1@t0"].uid})
        assert len(shrunk) == len(full) - 1
        assert plan.aux_locks[cs["R1@t0"].uid] not in shrunk


class TestTransform:
    def test_transformed_trace_has_no_original_lock_events(self):
        result = transform(figure7_trace())
        kinds = {e.kind for e in result.trace.iter_events()}
        assert ACQUIRE not in kinds
        assert RELEASE not in kinds

    def test_markers_present_for_kept_sections(self):
        result = transform(figure7_trace())
        enters = [e for e in result.trace.iter_events() if e.kind == CS_ENTER]
        exits = [e for e in result.trace.iter_events() if e.kind == CS_EXIT]
        kept = 6 - len(result.plan.removed)
        assert len(enters) == kept == len(exits) == 4

    def test_marker_uids_match_original_events(self):
        result = transform(figure7_trace())
        original_acquires = {
            e.uid for e in result.original.iter_events() if e.kind == ACQUIRE
        }
        for enter in (e for e in result.trace.iter_events() if e.kind == CS_ENTER):
            assert enter.uid in original_acquires
            assert enter.token == enter.uid

    def test_body_events_survive_unchanged(self):
        result = transform(figure7_trace())
        original_mem = [
            e.uid for e in result.original.iter_events() if e.kind in ("read", "write")
        ]
        new_mem = [
            e.uid for e in result.trace.iter_events() if e.kind in ("read", "write")
        ]
        assert sorted(original_mem) == sorted(new_mem)

    def test_null_lock_sync_dropped_entirely(self):
        from tests.analysis.helpers import cs_empty, cs_reader

        trace = record_programs(cs_empty("L"), cs_reader("L", "x", stagger=5))
        result = transform(trace)
        assert len(result.plan.removed) == 2
        kinds = {e.kind for e in result.trace.iter_events()}
        assert CS_ENTER not in kinds

    def test_transform_counts_sections(self):
        result = transform(figure7_trace())
        assert len(result.sections) == 6
        assert result.removed_sections == 2
