"""Checkpointed streaming analysis resumes mid-scan and matches a clean run."""

import pytest

from repro import api, telemetry
from repro.runner.checkpoint import Checkpointer
from repro.telemetry import to_dict
from repro.trace.segments import ensure_index, open_segmented, write_segmented


class _AbortAfter(Checkpointer):
    """A checkpointer that kills the scan right after its Nth save —
    the in-process stand-in for SIGKILL between two checkpoints."""

    class Abort(BaseException):
        pass

    def __init__(self, *args, abort_after=1, **kwargs):
        super().__init__(*args, **kwargs)
        self.abort_after = abort_after
        self.saves = 0

    def save(self, payload, segments_done):
        super().save(payload, segments_done)
        self.saves += 1
        if self.saves >= self.abort_after:
            raise self.Abort


@pytest.fixture(scope="module")
def seg_file(tmp_path_factory):
    trace = api.record("mysql", threads=3, input_size="simsmall")
    path = tmp_path_factory.mktemp("seg") / "t.seg.jsonl.gz"
    index = write_segmented(trace, path, segment_events=32)
    assert len(index.segments) >= 6  # the resume tests need a real tail
    return path


def _tag(path):
    index = ensure_index(path)
    return f"{index.digest}:{index.file_size}"


class TestAnalysisResume:
    def test_resume_after_abort_matches_clean(self, seg_file, tmp_path):
        from repro.analysis.streaming import analyze_segments

        clean = analyze_segments(seg_file)

        ckpt_path = tmp_path / "scan.ckpt.pkl.gz"
        aborting = _AbortAfter(
            ckpt_path, tag=_tag(seg_file), every=2, abort_after=2
        )
        with pytest.raises(_AbortAfter.Abort):
            analyze_segments(seg_file, checkpoint=aborting)
        assert ckpt_path.exists()

        sink = telemetry.Telemetry()
        with telemetry.use_telemetry(sink):
            resumed = analyze_segments(
                seg_file,
                checkpoint=Checkpointer(ckpt_path, tag=_tag(seg_file), every=2),
            )
        counters = to_dict(sink, timings=False)["counters"]
        # the scan really did restart mid-file, from the 2nd save (4 done)
        assert counters.get("analyze.segments_resumed") == 4
        assert resumed.breakdown == clean.breakdown
        assert len(resumed.pairs) == len(clean.pairs)
        assert [p.kind for p in resumed.pairs] == [p.kind for p in clean.pairs]
        # a finished analysis clears its checkpoint
        assert not ckpt_path.exists()

    def test_resume_redoes_less_than_ten_percent_with_tight_cadence(
        self, seg_file, tmp_path
    ):
        """The acceptance bar: with cadence ~1% of the segment count, a
        resumed scan redoes < 10% of the segments."""
        from repro.analysis.streaming import analyze_segments

        index = ensure_index(seg_file)
        total = len(index.segments)
        ckpt_path = tmp_path / "scan.ckpt.pkl.gz"
        aborting = _AbortAfter(
            ckpt_path, tag=_tag(seg_file), every=1, abort_after=total - 1
        )
        with pytest.raises(_AbortAfter.Abort):
            analyze_segments(seg_file, checkpoint=aborting)

        sink = telemetry.Telemetry()
        with telemetry.use_telemetry(sink):
            analyze_segments(
                seg_file,
                checkpoint=Checkpointer(ckpt_path, tag=_tag(seg_file), every=1),
            )
        counters = to_dict(sink, timings=False)["counters"]
        redone = total - counters.get("analyze.segments_resumed", 0)
        assert redone / total < 0.10

    def test_api_resume_roundtrip(self, seg_file):
        clean = api.analyze(seg_file)
        resumed = api.analyze(seg_file, resume="api-rt", checkpoint_every=2)
        assert resumed.breakdown == clean.breakdown


class TestTimelineResume:
    def test_timeline_resume_matches_clean(self, seg_file, tmp_path):
        from repro.timeline import to_columnar_json
        from repro.timeline.build import build_timeline_segments

        analysis = api.analyze(seg_file)
        with open_segmented(seg_file) as reader:
            clean = build_timeline_segments(reader, analysis=analysis)

        ckpt_path = tmp_path / "lanes.ckpt.pkl.gz"
        aborting = _AbortAfter(
            ckpt_path, tag=_tag(seg_file), every=2, abort_after=2
        )
        with pytest.raises(_AbortAfter.Abort):
            with open_segmented(seg_file) as reader:
                build_timeline_segments(
                    reader, analysis=analysis, checkpoint=aborting
                )
        assert ckpt_path.exists()

        sink = telemetry.Telemetry()
        with telemetry.use_telemetry(sink):
            with open_segmented(seg_file) as reader:
                resumed = build_timeline_segments(
                    reader,
                    analysis=analysis,
                    checkpoint=Checkpointer(
                        ckpt_path, tag=_tag(seg_file), every=2
                    ),
                )
        counters = to_dict(sink, timings=False)["counters"]
        assert counters.get("timeline.segments_resumed") == 4
        assert to_columnar_json(resumed) == to_columnar_json(clean)
        assert not ckpt_path.exists()
