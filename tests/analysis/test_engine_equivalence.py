"""Equivalence: fused columnar engine vs the retained reference path.

The contract the engine must honour (ISSUE: "hard equivalence bar"):
for any trace, the single-pass interned/bitmask pipeline and the original
multi-pass string-set pipeline produce identical sections, shared sets,
pair kinds, breakdowns and transformed traces — byte for byte once
serialized.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_pairs, transform
from repro.analysis.reference import analyze_pairs_reference
from repro.record import record
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace import CodeSite, dumps
from repro.workloads import get_workload

WORKLOADS = ("tunable-contention", "mixed-bag")


def breakdown_tuple(analysis):
    b = analysis.breakdown
    return (b.null_lock, b.read_read, b.disjoint_write, b.benign, b.tlcp)


def pair_kinds(analysis):
    return [(p.c1.uid, p.c2.uid, p.kind) for p in analysis.pairs]


def section_state(sections):
    return {
        cs.uid: (
            cs.tid,
            cs.lock,
            cs.lock_index,
            cs.pre_anchor,
            cs.post_anchor,
            frozenset(cs.reads),
            frozenset(cs.writes),
            frozenset(cs.srd),
            frozenset(cs.swr),
            [e.uid for e in cs.body],
        )
        for cs in sections
    }


def assert_equivalent(trace):
    engine = analyze_pairs(trace)
    reference = analyze_pairs_reference(trace)
    assert pair_kinds(engine) == pair_kinds(reference)
    assert breakdown_tuple(engine) == breakdown_tuple(reference)
    assert section_state(engine.sections) == section_state(reference.sections)
    transformed = transform(trace, analysis=engine)
    transformed_ref = transform(trace, analysis=reference)
    assert dumps(transformed.trace) == dumps(transformed_ref.trace)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", (0, 1, 7))
@pytest.mark.parametrize("threads", (2, 4))
def test_synthetic_workloads_equivalent(workload, seed, threads):
    spec = get_workload(workload, threads=threads, seed=seed, scale=0.5)
    assert_equivalent(spec.record().trace)


@pytest.mark.parametrize("name", ("fluidanimate", "dedup", "mysql"))
def test_paper_workloads_equivalent(name):
    spec = get_workload(name, threads=2, scale=0.25)
    assert_equivalent(spec.record().trace)


def test_benign_detection_off_equivalent():
    trace = get_workload("tunable-contention", threads=4, seed=3).record().trace
    engine = analyze_pairs(trace, benign_detection=False)
    reference = analyze_pairs_reference(trace, benign_detection=False)
    assert pair_kinds(engine) == pair_kinds(reference)
    assert breakdown_tuple(engine) == breakdown_tuple(reference)


# --------------------------------------------- random-program property

ADDRS = ("x", "y", "z")
LOCKS = ("A", "B")

op_strategy = st.one_of(
    st.tuples(st.just("read"), st.sampled_from(ADDRS)),
    st.tuples(st.just("store"), st.sampled_from(ADDRS), st.integers(0, 3)),
    st.tuples(st.just("add"), st.sampled_from(ADDRS), st.integers(1, 3)),
    st.tuples(st.just("compute"), st.integers(1, 200)),
)

cs_strategy = st.tuples(
    st.sampled_from(LOCKS),
    st.lists(op_strategy, max_size=4),
    st.integers(0, 300),
)

program_set_strategy = st.lists(
    st.lists(cs_strategy, min_size=1, max_size=5), min_size=1, max_size=4
)


def build_program(sections):
    def prog():
        line = 10
        for lock, body, think in sections:
            if think:
                yield Compute(think, site=CodeSite("gen.c", line))
            yield Acquire(lock=lock, site=CodeSite("gen.c", line + 1))
            for op in body:
                if op[0] == "read":
                    yield Read(op[1], site=CodeSite("gen.c", line + 2))
                elif op[0] == "store":
                    yield Write(op[1], op=Store(op[2]), site=CodeSite("gen.c", line + 2))
                elif op[0] == "add":
                    yield Write(op[1], op=Add(op[2]), site=CodeSite("gen.c", line + 2))
                else:
                    yield Compute(op[1], site=CodeSite("gen.c", line + 2))
            yield Release(lock=lock, site=CodeSite("gen.c", line + 3))
            line += 10

    return prog


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_random_programs_equivalent(program_specs):
    programs = [build_program(sections) for sections in program_specs]
    trace = record([p() for p in programs]).trace
    assert_equivalent(trace)
