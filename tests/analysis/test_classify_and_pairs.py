"""Tests for Algorithm 1, the benign reversed replay, and pair enumeration."""

from repro.analysis import (
    BENIGN,
    DISJOINT_WRITE,
    FALSE,
    NULL_LOCK,
    READ_READ,
    TLCP,
    WriteTimeline,
    analyze_pairs,
    annotate_shared_sets,
    classify_pair,
    extract_sections,
    is_benign,
    shared_addresses,
)
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from tests.analysis.helpers import (
    cs_empty,
    cs_reader,
    cs_writer,
    record_programs,
    site,
)


def annotated_sections(trace):
    sections = extract_sections(trace)
    annotate_shared_sets(sections, shared_addresses(trace))
    return sorted(sections, key=lambda cs: cs.lock_index)


class TestClassify:
    def test_null_lock(self):
        trace = record_programs(cs_empty("L"), cs_reader("L", "x", stagger=5))
        c1, c2 = annotated_sections(trace)
        assert classify_pair(c1, c2) == NULL_LOCK

    def test_read_read(self):
        # a third thread writes x elsewhere so x is shared
        trace = record_programs(
            cs_reader("L", "x"),
            cs_reader("L", "x", stagger=5),
        )
        c1, c2 = annotated_sections(trace)
        assert classify_pair(c1, c2) == READ_READ

    def test_disjoint_write(self):
        def toucher():
            # makes both addresses shared without holding the lock
            yield Compute(500)
            yield Read("a")
            yield Read("b")

        trace = record_programs(
            cs_writer("L", "a"),
            cs_writer("L", "b", stagger=5),
            toucher(),
        )
        sections = annotated_sections(trace)
        c1, c2 = [cs for cs in sections if cs.lock == "L"]
        assert classify_pair(c1, c2) == DISJOINT_WRITE

    def test_conflicting_pair_is_false(self):
        trace = record_programs(
            cs_writer("L", "x", value=1),
            cs_writer("L", "x", value=2, stagger=5),
        )
        c1, c2 = annotated_sections(trace)
        assert classify_pair(c1, c2) == FALSE

    def test_read_write_conflict_is_false(self):
        trace = record_programs(
            cs_reader("L", "x"),
            cs_writer("L", "x", stagger=5),
        )
        c1, c2 = annotated_sections(trace)
        assert classify_pair(c1, c2) == FALSE


class TestBenign:
    def test_redundant_writes_are_benign(self):
        trace = record_programs(
            cs_writer("L", "x", value=7),
            cs_writer("L", "x", value=7, stagger=5),
        )
        c1, c2 = annotated_sections(trace)
        assert is_benign(c1, c2, WriteTimeline(trace))

    def test_commutative_adds_are_benign(self):
        trace = record_programs(
            cs_writer("L", "ctr", op=Add(3)),
            cs_writer("L", "ctr", op=Add(5), stagger=5),
        )
        c1, c2 = annotated_sections(trace)
        assert is_benign(c1, c2, WriteTimeline(trace))

    def test_different_stores_not_benign(self):
        trace = record_programs(
            cs_writer("L", "x", value=1),
            cs_writer("L", "x", value=2, stagger=5),
        )
        c1, c2 = annotated_sections(trace)
        assert not is_benign(c1, c2, WriteTimeline(trace))

    def test_read_vs_write_not_benign(self):
        trace = record_programs(
            cs_reader("L", "x"),
            cs_writer("L", "x", value=9, stagger=5),
        )
        c1, c2 = annotated_sections(trace)
        assert not is_benign(c1, c2, WriteTimeline(trace))

    def test_write_then_read_same_value_benign(self):
        # writer stores the value the cell already has; reader sees it either way
        def setup_then_read():
            yield Write("x", op=Store(7))
            yield Compute(5)
            yield Acquire(lock="L", site=site(40))
            yield Read("x", site=site(41))
            yield Release(lock="L", site=site(42))

        def rewriter():
            yield Read("x")  # make x shared for this thread too
            yield Compute(20)
            yield Acquire(lock="L", site=site(50))
            yield Write("x", op=Store(7), site=site(51))
            yield Release(lock="L", site=site(52))

        trace = record_programs(setup_then_read(), rewriter())
        sections = annotated_sections(trace)
        c1, c2 = sections
        assert is_benign(c1, c2, WriteTimeline(trace))

    def test_timeline_reconstructs_state(self):
        def prog():
            yield Write("x", op=Store(3))
            yield Compute(100)
            yield Write("x", op=Store(9))

        trace = record_programs(prog())
        timeline = WriteTimeline(trace)
        assert timeline.value_at("x", 0) == 0
        assert timeline.value_at("x", 50) == 3
        assert timeline.value_at("x", 1000) == 9
        assert timeline.value_at("untouched", 50) == 0


class TestPairEnumeration:
    def test_counts_by_category(self):
        trace = record_programs(
            cs_reader("L", "x", duration=50),
            cs_reader("L", "x", duration=50, stagger=5),
        )
        analysis = analyze_pairs(trace)
        assert analysis.breakdown.read_read == 1
        assert analysis.breakdown.total_ulcps == 1

    def test_same_thread_pairs_skipped(self):
        def prog():
            for _ in range(3):
                yield Acquire(lock="L")
                yield Read("x")
                yield Release(lock="L")

        def other():
            yield Compute(1000)
            yield Write("x", op=Store(1))  # makes x shared, outside lock

        trace = record_programs(prog(), other())
        analysis = analyze_pairs(trace)
        assert analysis.pairs == []

    def test_three_sections_make_two_pairs(self):
        trace = record_programs(
            cs_reader("L", "x", duration=30),
            cs_reader("L", "x", duration=30, stagger=5),
            cs_reader("L", "x", duration=30, stagger=10),
        )
        analysis = analyze_pairs(trace)
        assert len(analysis.pairs) == 2
        assert analysis.breakdown.read_read == 2

    def test_tlcp_detected(self):
        trace = record_programs(
            cs_writer("L", "x", value=1),
            cs_writer("L", "x", value=2, stagger=5),
        )
        analysis = analyze_pairs(trace)
        assert analysis.breakdown.tlcp == 1
        assert analysis.ulcps == []

    def test_benign_detection_toggle(self):
        programs = lambda: (
            cs_writer("L", "x", value=7),
            cs_writer("L", "x", value=7, stagger=5),
        )
        with_benign = analyze_pairs(record_programs(*programs()))
        without = analyze_pairs(record_programs(*programs()), benign_detection=False)
        assert with_benign.breakdown.benign == 1
        assert without.breakdown.benign == 0
        assert without.breakdown.tlcp == 1

    def test_contended_flag(self):
        trace = record_programs(
            cs_reader("L", "x", duration=100),
            cs_reader("L", "x", duration=100, stagger=5),
        )
        analysis = analyze_pairs(trace)
        (pair,) = analysis.pairs
        assert pair.contended
