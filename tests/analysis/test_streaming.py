"""Streaming (segmented) analysis paths against their whole-trace twins.

Every streaming entry point — ``analyze_segments``, ``stats_segments``,
``build_timeline_segments`` — must produce output identical to the
monolithic path, including a workload whose FALSE pairs exercise the
second (benign-evidence) pass.
"""

import json

import pytest

from repro import api
from repro.analysis.pairs import analyze_pairs
from repro.analysis.streaming import analyze_segments
from repro.errors import TraceError
from repro.timeline import (
    build_timeline,
    build_timeline_segments,
    to_chrome_json,
    to_columnar_json,
)
from repro.trace.segments import open_segmented, write_segmented
from repro.trace.stats import stats_segments, trace_stats


@pytest.fixture(scope="module")
def workload_trace():
    # mysql at this size classifies pairs into every category, including
    # benign (so the streaming second pass actually runs)
    return api.record("mysql", threads=3, input_size="simsmall", scale=0.4, seed=1)


@pytest.fixture(scope="module")
def segmented_path(workload_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("seg") / "t.seg.jsonl.gz"
    write_segmented(workload_trace, path, segment_events=37)
    return path


def _analysis_fingerprint(analysis):
    return {
        "events": analysis.events,
        "sections": [
            (cs.uid, cs.tid, cs.lock, cs.t_start, cs.t_end, cs.lock_index)
            for cs in analysis.sections
        ],
        "pairs": [
            (p.c1.uid, p.c2.uid, p.kind, p.lock) for p in analysis.pairs
        ],
        "breakdown": {
            k: getattr(analysis.breakdown, k)
            for k in ("null_lock", "read_read", "disjoint_write", "benign", "tlcp")
        },
        "benign_cache": dict(analysis.benign_cache),
    }


class TestAnalyzeParity:
    def test_full_parity_including_benign_pass(self, workload_trace, segmented_path):
        whole = analyze_pairs(workload_trace)
        streamed = analyze_segments(segmented_path)
        assert whole.breakdown.benign > 0  # the second pass was exercised
        assert _analysis_fingerprint(streamed) == _analysis_fingerprint(whole)

    def test_parity_without_benign_detection(self, workload_trace, segmented_path):
        whole = analyze_pairs(workload_trace, benign_detection=False)
        streamed = analyze_segments(segmented_path, benign_detection=False)
        assert _analysis_fingerprint(streamed) == _analysis_fingerprint(whole)

    def test_parity_at_segment_size_one(self, workload_trace, tmp_path):
        # every event is its own segment: all cross-segment state carries
        path = tmp_path / "t1.seg.jsonl.gz"
        write_segmented(workload_trace, path, segment_events=1)
        whole = analyze_pairs(workload_trace)
        streamed = analyze_segments(path)
        assert _analysis_fingerprint(streamed) == _analysis_fingerprint(whole)

    def test_streamed_sections_expose_memory_ops_for_false_pairs(
        self, segmented_path
    ):
        streamed = analyze_segments(segmented_path)
        for (uid1, uid2) in streamed.benign_cache:
            by_uid = {cs.uid: cs for cs in streamed.sections}
            for uid in (uid1, uid2):
                ops = by_uid[uid].memory_ops()
                assert all(op.kind in ("read", "write") for op in ops)


class TestApiStream:
    def test_auto_streams_segmented_path(self, workload_trace, segmented_path):
        whole = api.analyze(workload_trace)
        auto = api.analyze(segmented_path)
        explicit = api.analyze(segmented_path, stream=True)
        assert _analysis_fingerprint(auto) == _analysis_fingerprint(whole)
        assert _analysis_fingerprint(explicit) == _analysis_fingerprint(whole)

    def test_stream_false_loads_fully(self, workload_trace, segmented_path):
        whole = api.analyze(workload_trace)
        loaded = api.analyze(segmented_path, stream=False)
        assert _analysis_fingerprint(loaded) == _analysis_fingerprint(whole)

    def test_stream_true_rejects_monolithic(self, workload_trace, tmp_path):
        from repro.trace import dump

        path = tmp_path / "t.jsonl.gz"
        dump(workload_trace, path)
        with pytest.raises(TraceError, match="segmented"):
            api.analyze(path, stream=True)

    def test_stream_true_rejects_trace_object(self, workload_trace):
        with pytest.raises(TraceError, match="segmented"):
            api.analyze(workload_trace, stream=True)


class TestStatsParity:
    def test_render_and_fields_identical(self, workload_trace, segmented_path):
        whole = trace_stats(workload_trace)
        with open_segmented(segmented_path) as reader:
            streamed = stats_segments(reader)
        assert streamed.render() == whole.render()
        assert streamed.total_events == whole.total_events
        assert streamed.end_time == whole.end_time
        assert streamed.locks == whole.locks
        assert streamed.shared_addresses == whole.shared_addresses
        assert dict(streamed.kinds) == dict(whole.kinds)
        assert set(streamed.threads) == set(whole.threads)
        for tid, expected in whole.threads.items():
            got = streamed.threads[tid]
            for attr in ("events", "compute_ns", "acquisitions", "contended",
                         "wait_ns", "reads", "writes"):
                assert getattr(got, attr) == getattr(expected, attr), (tid, attr)


class TestTimelineParity:
    def test_chrome_and_columnar_json_identical(
        self, workload_trace, segmented_path
    ):
        analysis = analyze_pairs(workload_trace)
        whole = build_timeline(workload_trace, analysis=analysis)
        streamed_analysis = analyze_segments(segmented_path)
        with open_segmented(segmented_path) as reader:
            streamed = build_timeline_segments(reader, analysis=streamed_analysis)
        assert to_chrome_json(streamed) == to_chrome_json(whole)
        assert to_columnar_json(streamed) == to_columnar_json(whole)
        # sanity: the chrome export is non-trivial
        doc = json.loads(to_chrome_json(streamed))
        assert doc["traceEvents"]

    def test_unmerged_parity(self, workload_trace, segmented_path):
        whole = build_timeline(workload_trace, merge=False)
        with open_segmented(segmented_path) as reader:
            streamed = build_timeline_segments(reader, merge=False)
        assert to_columnar_json(streamed) == to_columnar_json(whole)
