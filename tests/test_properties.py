"""Property-based tests (hypothesis) on core invariants.

Strategy: generate small random multi-threaded lock programs, record
them, and check the pipeline's invariants — trace well-formedness,
serialization round-trips, topology acyclicity, transformation identity
on uids, benign-test symmetry, replay-time conservation.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    analyze_pairs,
    build_resync_plan,
    build_topology,
    annotate_shared_sets,
    extract_sections,
    shared_addresses,
    transform,
)
from repro.analysis.benign import WriteTimeline, is_benign
from repro.record import record
from repro.replay import ELSC_S, Replayer
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace import CodeSite, dumps, loads, problems
from repro.util.stats import summarize

# ----------------------------------------------------------- generators

ADDRS = ("x", "y", "z")
LOCKS = ("A", "B")

op_strategy = st.one_of(
    st.tuples(st.just("read"), st.sampled_from(ADDRS)),
    st.tuples(st.just("store"), st.sampled_from(ADDRS), st.integers(0, 3)),
    st.tuples(st.just("add"), st.sampled_from(ADDRS), st.integers(1, 3)),
    st.tuples(st.just("compute"), st.integers(1, 200)),
)

cs_strategy = st.tuples(
    st.sampled_from(LOCKS),
    st.lists(op_strategy, max_size=4),
    st.integers(0, 300),  # think time before the section
)

thread_strategy = st.lists(cs_strategy, min_size=1, max_size=5)
program_set_strategy = st.lists(thread_strategy, min_size=1, max_size=4)


def build_program(sections, thread_index):
    def prog():
        line = 10
        for lock, body, think in sections:
            if think:
                yield Compute(think, site=CodeSite("gen.c", line))
            yield Acquire(lock=lock, site=CodeSite("gen.c", line + 1))
            for op in body:
                if op[0] == "read":
                    yield Read(op[1], site=CodeSite("gen.c", line + 2))
                elif op[0] == "store":
                    yield Write(op[1], op=Store(op[2]), site=CodeSite("gen.c", line + 2))
                elif op[0] == "add":
                    yield Write(op[1], op=Add(op[2]), site=CodeSite("gen.c", line + 2))
                else:
                    yield Compute(op[1], site=CodeSite("gen.c", line + 2))
            yield Release(lock=lock, site=CodeSite("gen.c", line + 3))
            line += 10

    return prog()


def record_random(threads):
    programs = [
        (build_program(sections, i), f"g{i}") for i, sections in enumerate(threads)
    ]
    return record(programs, name="hypothesis").trace


# ----------------------------------------------------------- properties


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_recorded_traces_are_well_formed(threads):
    trace = record_random(threads)
    assert problems(trace) == []


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_serialization_round_trip(threads):
    trace = record_random(threads)
    clone = loads(dumps(trace))
    assert [e.encode() for e in clone.iter_events()] == [
        e.encode() for e in trace.iter_events()
    ]
    assert clone.lock_schedule == trace.lock_schedule


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_topology_is_acyclic_and_edges_point_forward(threads):
    trace = record_random(threads)
    sections = extract_sections(trace)
    annotate_shared_sets(sections, shared_addresses(trace))
    topology = build_topology(trace, sections)
    topology.toposort()  # raises on a cycle
    by_uid = topology.nodes
    for src, dst, _kind in topology.edges:
        assert by_uid[src].lock == by_uid[dst].lock
        assert by_uid[src].lock_index < by_uid[dst].lock_index
        assert by_uid[src].tid != by_uid[dst].tid


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_transform_preserves_non_lock_events(threads):
    trace = record_random(threads)
    result = transform(trace)
    original_other = [
        e.uid
        for e in trace.iter_events()
        if e.kind not in ("acquire", "release")
    ]
    new_other = [
        e.uid
        for e in result.trace.iter_events()
        if e.kind not in ("cs_enter", "cs_exit")
    ]
    assert original_other == new_other


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_classification_is_exhaustive(threads):
    trace = record_random(threads)
    analysis = analyze_pairs(trace)
    breakdown = analysis.breakdown
    total = (
        breakdown.null_lock
        + breakdown.read_read
        + breakdown.disjoint_write
        + breakdown.benign
        + breakdown.tlcp
    )
    assert total == len(analysis.pairs)


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_resync_plan_lockset_structure(threads):
    trace = record_random(threads)
    sections = extract_sections(trace)
    annotate_shared_sets(sections, shared_addresses(trace))
    topology = build_topology(trace, sections)
    plan = build_resync_plan(topology)
    for uid in topology.nodes:
        if uid in plan.removed:
            assert topology.is_standalone(uid)
            assert uid not in plan.locksets
            continue
        lockset = plan.locksets[uid]
        # own lock present iff the node has successors
        if topology.outdegree(uid) > 0:
            assert plan.aux_locks[uid] == lockset[0]
        # every predecessor with successors contributes its lock
        for pred in plan.preds[uid]:
            if pred in plan.aux_locks:
                assert plan.aux_locks[pred] in lockset


@settings(max_examples=25, deadline=None)
@given(program_set_strategy)
def test_elsc_replay_reproduces_recorded_time(threads):
    trace = record_random(threads)
    replay = Replayer(jitter=0.0).replay(trace, scheme=ELSC_S)
    assert replay.end_time == trace.end_time


@settings(max_examples=25, deadline=None)
@given(program_set_strategy)
def test_transformed_replay_is_deadlock_free_and_stamps_markers(threads):
    trace = record_random(threads)
    result = transform(trace)
    replay = Replayer(jitter=0.0).replay_transformed(result)
    for events in result.trace.threads.values():
        for event in events:
            if event.kind in ("cs_enter", "cs_exit"):
                assert event.uid in replay.timestamps


@settings(max_examples=40, deadline=None)
@given(program_set_strategy)
def test_benign_classification_invariants(threads):
    """Read-only and commutative-add pairs are always benign; a pair the
    reversed replay rejects must truly collide on some address."""
    trace = record_random(threads)
    sections = extract_sections(trace)
    annotate_shared_sets(sections, shared_addresses(trace))
    timeline = WriteTimeline(trace)
    same_lock = [
        (a, b)
        for a in sections
        for b in sections
        if a.lock == b.lock and a.lock_index < b.lock_index and a.tid != b.tid
    ]
    for a, b in same_lock[:12]:
        kinds_a = {e.kind for e in a.body if e.kind in ("read", "write")}
        kinds_b = {e.kind for e in b.body if e.kind in ("read", "write")}
        if "write" not in kinds_a and "write" not in kinds_b:
            assert is_benign(a, b, timeline)
        ops = [e.op for e in a.body + b.body if e.kind == "write"]
        if ops and all(op is not None and op[0] == "add" for op in ops):
            if not (kinds_a | kinds_b) - {"write"}:
                assert is_benign(a, b, timeline)
        if not is_benign(a, b, timeline):
            touched_a = {e.addr for e in a.body if e.kind in ("read", "write")}
            touched_b = {e.addr for e in b.body if e.kind in ("read", "write")}
            assert touched_a & touched_b


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=50))
def test_summary_invariants(values):
    summary = summarize(values)
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.stdev >= 0
    assert summary.n == len(values)
