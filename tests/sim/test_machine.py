"""Unit tests for the discrete-event machine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import (
    Acquire,
    Add,
    AwaitFlag,
    BarrierWait,
    Broadcast,
    Compute,
    CondWait,
    Machine,
    Read,
    Release,
    SemAcquire,
    SemRelease,
    SetFlag,
    Signal,
    Sleep,
    Store,
    Write,
)


def new_machine(**kwargs):
    kwargs.setdefault("lock_cost", 0)
    kwargs.setdefault("mem_cost", 0)
    return Machine(**kwargs)


class TestBasicExecution:
    def test_single_thread_compute_advances_time(self):
        m = new_machine()

        def prog():
            yield Compute(100)
            yield Compute(50)

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 150
        assert result.threads["t0"].cpu_ns == 150

    def test_empty_program_finishes_at_zero(self):
        m = new_machine()

        def prog():
            return
            yield  # pragma: no cover

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 0

    def test_threads_run_in_parallel_on_separate_cores(self):
        m = new_machine(num_cores=2)

        def prog():
            yield Compute(100)

        m.add_thread(prog())
        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 100

    def test_single_core_serializes_compute(self):
        m = new_machine(num_cores=1)

        def prog():
            yield Compute(100)

        m.add_thread(prog())
        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 200

    def test_run_twice_raises(self):
        m = new_machine()
        m.add_thread(iter(()))
        m.run()
        with pytest.raises(SimulationError):
            m.run()

    def test_add_thread_after_run_raises(self):
        m = new_machine()
        m.add_thread(iter(()))
        m.run()
        with pytest.raises(SimulationError):
            m.add_thread(iter(()))


class TestMemory:
    def test_read_default_zero(self):
        m = new_machine()
        seen = []

        def prog():
            value = yield Read("x")
            seen.append(value)

        m.add_thread(prog())
        m.run()
        assert seen == [0]

    def test_write_store_then_read(self):
        m = new_machine()
        seen = []

        def prog():
            yield Write("x", op=Store(42))
            value = yield Read("x")
            seen.append(value)

        m.add_thread(prog())
        m.run()
        assert seen == [42]

    def test_write_add_accumulates(self):
        m = new_machine()

        def prog():
            yield Write("ctr", op=Add(5))
            yield Write("ctr", op=Add(7))

        m.add_thread(prog())
        m.run()
        assert m.memory.read("ctr") == 12

    def test_mem_cost_charged(self):
        m = Machine(lock_cost=0, mem_cost=10)

        def prog():
            yield Read("x")
            yield Write("x", op=Store(1))

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 20


class TestLocks:
    def test_uncontended_acquire_release(self):
        m = new_machine()

        def prog():
            yield Acquire(lock="L")
            yield Compute(10)
            yield Release(lock="L")

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 10
        assert result.locks["L"].acquisitions == 1
        assert result.locks["L"].contended_acquisitions == 0

    def test_contended_lock_serializes_critical_sections(self):
        m = new_machine(num_cores=4)

        def prog():
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")

        m.add_thread(prog())
        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 200
        assert result.locks["L"].contended_acquisitions == 1
        # exactly one thread waited 100ns
        waits = sorted(t.block_ns for t in result.threads.values())
        assert waits == [0, 100]

    def test_spin_wait_counts_as_cpu_waste(self):
        m = new_machine(num_cores=4)

        def holder():
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")

        def spinner():
            yield Compute(1)  # ensure holder grabs the lock first
            yield Acquire(lock="L", spin=True)
            yield Release(lock="L")

        m.add_thread(holder())
        tid = m.add_thread(spinner())
        result = m.run()
        assert result.threads[tid].spin_ns == 99
        assert result.threads[tid].cpu_ns >= 99
        assert result.threads[tid].block_ns == 0

    def test_reacquire_held_lock_raises(self):
        m = new_machine()

        def prog():
            yield Acquire(lock="L")
            yield Acquire(lock="L")

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_release_unheld_lock_raises(self):
        m = new_machine()

        def prog():
            yield Release(lock="L")

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_exit_holding_lock_raises(self):
        m = new_machine()

        def prog():
            yield Acquire(lock="L")

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_lock_cost_charged(self):
        m = Machine(lock_cost=50, mem_cost=0)

        def prog():
            yield Acquire(lock="L")
            yield Release(lock="L")

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 100

    def test_deadlock_detected(self):
        m = new_machine()

        def prog(first, second):
            yield Acquire(lock=first)
            yield Compute(10)
            yield Acquire(lock=second)
            yield Release(lock=second)
            yield Release(lock=first)

        m.add_thread(prog("A", "B"))
        m.add_thread(prog("B", "A"))
        with pytest.raises(DeadlockError):
            m.run()

    def test_fifo_wake_order(self):
        m = new_machine(num_cores=4)
        order = []

        def holder():
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")

        def waiter(name, delay):
            yield Compute(delay)
            yield Acquire(lock="L")
            order.append(name)
            yield Release(lock="L")

        m.add_thread(holder())
        m.add_thread(waiter("first", 10))
        m.add_thread(waiter("second", 20))
        m.run()
        assert order == ["first", "second"]


class TestCondVars:
    def test_signal_wakes_waiter(self):
        m = new_machine(num_cores=2)
        results = []

        def waiter():
            yield Acquire(lock="L")
            outcome = yield CondWait(cond="C", lock="L")
            results.append(outcome)
            yield Release(lock="L")

        def signaler():
            yield Compute(100)
            yield Acquire(lock="L")
            yield Signal(cond="C")
            yield Release(lock="L")

        m.add_thread(waiter())
        m.add_thread(signaler())
        result = m.run()
        assert results == ["signaled"]
        assert result.end_time >= 100

    def test_timedwait_times_out(self):
        m = new_machine()
        results = []

        def waiter():
            yield Acquire(lock="L")
            outcome = yield CondWait(cond="C", lock="L", timeout=500)
            results.append(outcome)
            yield Release(lock="L")

        m.add_thread(waiter())
        result = m.run()
        assert results == ["timeout"]
        assert result.end_time == 500

    def test_broadcast_wakes_all(self):
        m = new_machine(num_cores=4)
        results = []

        def waiter():
            yield Acquire(lock="L")
            outcome = yield CondWait(cond="C", lock="L")
            results.append(outcome)
            yield Release(lock="L")

        def caster():
            yield Compute(50)
            yield Acquire(lock="L")
            yield Broadcast(cond="C")
            yield Release(lock="L")

        m.add_thread(waiter())
        m.add_thread(waiter())
        m.add_thread(caster())
        m.run()
        assert results == ["signaled", "signaled"]

    def test_cond_wait_without_lock_raises(self):
        m = new_machine()

        def prog():
            yield CondWait(cond="C", lock="L")

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_signal_with_no_waiters_is_noop(self):
        m = new_machine()

        def prog():
            yield Signal(cond="C")
            yield Compute(10)

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 10


class TestSemaphores:
    def test_blocking_p_waits_for_v(self):
        m = new_machine(num_cores=2)

        def consumer():
            yield SemAcquire(sem="S")
            yield Compute(10)

        def producer():
            yield Compute(100)
            yield SemRelease(sem="S")

        m.add_thread(consumer())
        m.add_thread(producer())
        result = m.run()
        assert result.end_time == 110

    def test_precharged_semaphore_does_not_block(self):
        m = new_machine()
        m.set_semaphore("S", 1)

        def prog():
            yield SemAcquire(sem="S")
            yield Compute(10)

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 10

    def test_credit_consumed_once(self):
        m = new_machine(num_cores=2)

        def consumer():
            yield SemAcquire(sem="S")

        def producer():
            yield SemRelease(sem="S")

        m.add_thread(consumer())
        m.add_thread(consumer())
        m.add_thread(producer())
        with pytest.raises(DeadlockError):
            m.run()


class TestBarriers:
    def test_barrier_releases_when_full(self):
        m = new_machine(num_cores=4)

        def prog(delay):
            yield Compute(delay)
            yield BarrierWait(barrier="B", parties=3)
            yield Compute(10)

        m.add_thread(prog(10))
        m.add_thread(prog(20))
        m.add_thread(prog(300))
        result = m.run()
        assert result.end_time == 310
        # the two early arrivers blocked until the last one showed up
        blocks = sorted(t.block_ns for t in result.threads.values())
        assert blocks == [0, 280, 290]

    def test_barrier_is_reusable(self):
        m = new_machine(num_cores=2)

        def prog():
            yield BarrierWait(barrier="B", parties=2)
            yield Compute(5)
            yield BarrierWait(barrier="B", parties=2)

        m.add_thread(prog())
        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 5


class TestFlagsAndSleep:
    def test_await_set_flag(self):
        m = new_machine(num_cores=2)

        def waiter():
            yield AwaitFlag(flag="go")
            yield Compute(10)

        def setter():
            yield Compute(100)
            yield SetFlag(flag="go")

        m.add_thread(waiter())
        m.add_thread(setter())
        result = m.run()
        assert result.end_time == 110

    def test_await_already_set_flag_passes(self):
        m = new_machine()

        def prog():
            yield SetFlag(flag="go")
            yield AwaitFlag(flag="go")
            yield Compute(10)

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 10

    def test_sleep_blocks_off_core(self):
        m = new_machine(num_cores=1)

        def sleeper():
            yield Sleep(duration=100)

        def worker():
            yield Compute(50)

        m.add_thread(sleeper())
        m.add_thread(worker())
        result = m.run()
        assert result.end_time == 100
        assert result.threads["t0"].block_ns == 100


class TestDeterminism:
    def _run_once(self, seed):
        import random

        from repro.sim.policies import RandomPolicy

        m = Machine(
            num_cores=2,
            lock_cost=0,
            mem_cost=0,
            wake_policy=RandomPolicy(random.Random(seed)),
            sched_rng=random.Random(seed + 1),
        )

        def prog(n):
            for _ in range(n):
                yield Acquire(lock="L")
                yield Compute(13)
                yield Release(lock="L")
                yield Compute(7)

        m.add_thread(prog(20))
        m.add_thread(prog(20))
        m.add_thread(prog(20))
        return m.run().end_time

    def test_same_seed_same_result(self):
        assert self._run_once(42) == self._run_once(42)

    def test_different_seeds_can_differ(self):
        times = {self._run_once(s) for s in range(8)}
        assert len(times) >= 1  # sanity; variance asserted in replay tests


class TestOpaqueRanges:
    def test_opaque_blocks_and_applies_delta(self):
        m = new_machine()
        seen = []

        def prog():
            from repro.sim import Opaque

            yield Compute(50)
            yield Opaque(duration=300, changes={"fd.state": 5})
            value = yield Read("fd.state")
            seen.append(value)

        m.add_thread(prog())
        result = m.run()
        assert result.end_time == 350
        assert seen == [5]
        assert result.threads["t0"].block_ns == 300

    def test_opaque_runs_off_core(self):
        m = new_machine(num_cores=1)

        def sleeper():
            from repro.sim import Opaque

            yield Opaque(duration=200, changes={})

        def worker():
            yield Compute(150)

        m.add_thread(sleeper())
        m.add_thread(worker())
        result = m.run()
        # the worker computes while the opaque range is pending
        assert result.end_time == 200
