"""Tests for readers-writer lock semantics in the machine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Acquire, Compute, Machine, Release


def new_machine(**kwargs):
    kwargs.setdefault("lock_cost", 0)
    kwargs.setdefault("mem_cost", 0)
    return Machine(**kwargs)


def reader(delay, hold):
    yield Compute(delay)
    yield Acquire(lock="RW", shared=True)
    yield Compute(hold)
    yield Release(lock="RW")


def writer(delay, hold):
    yield Compute(delay)
    yield Acquire(lock="RW")
    yield Compute(hold)
    yield Release(lock="RW")


class TestSharedMode:
    def test_readers_overlap(self):
        m = new_machine(num_cores=4)
        m.add_thread(reader(0, 100))
        m.add_thread(reader(0, 100))
        m.add_thread(reader(0, 100))
        result = m.run()
        assert result.end_time == 100  # all three held the lock concurrently
        assert result.locks["RW"].contended_acquisitions == 0

    def test_writer_excludes_readers(self):
        m = new_machine(num_cores=4)
        m.add_thread(writer(0, 100))
        m.add_thread(reader(10, 50))
        result = m.run()
        # the reader waits for the writer: 100 + 50
        assert result.end_time == 150

    def test_readers_exclude_writer(self):
        m = new_machine(num_cores=4)
        m.add_thread(reader(0, 100))
        m.add_thread(reader(0, 100))
        m.add_thread(writer(10, 50))
        result = m.run()
        assert result.end_time == 150

    def test_reader_batch_granted_together(self):
        m = new_machine(num_cores=4)
        m.add_thread(writer(0, 100))
        m.add_thread(reader(10, 80))
        m.add_thread(reader(20, 80))
        result = m.run()
        # both readers start at the writer's release and overlap
        assert result.end_time == 180

    def test_writer_after_readers_waits_for_all(self):
        m = new_machine(num_cores=4)
        m.add_thread(reader(0, 100))
        m.add_thread(reader(0, 200))
        m.add_thread(writer(10, 50))
        result = m.run()
        assert result.end_time == 250

    def test_reader_reacquire_raises(self):
        m = new_machine()

        def prog():
            yield Acquire(lock="RW", shared=True)
            yield Acquire(lock="RW", shared=True)

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_exit_holding_shared_raises(self):
        m = new_machine()

        def prog():
            yield Acquire(lock="RW", shared=True)

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_shared_release_accounting(self):
        m = new_machine(num_cores=2)
        m.add_thread(reader(0, 100))
        m.add_thread(reader(0, 150))
        result = m.run()
        assert result.locks["RW"].acquisitions == 2
        assert result.locks["RW"].total_hold_ns == 250


class TestRecordReplayShared:
    def test_shared_flag_survives_record_and_replay(self):
        from repro.record import record
        from repro.replay import ELSC_S, Replayer

        rec = record(
            [(reader(0, 100), "r0"), (reader(0, 100), "r1"), (writer(10, 50), "w")],
            lock_cost=0, mem_cost=0,
        )
        acquires = [e for e in rec.trace.iter_events() if e.kind == "acquire"]
        assert sum(1 for a in acquires if a.shared) == 2
        replay = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        assert replay.end_time == rec.recorded_time
