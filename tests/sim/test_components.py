"""Component tests: policies, stats, memory, timebase."""

import random

import pytest

from repro.sim import (
    Acquire,
    Add,
    Compute,
    FifoPolicy,
    LifoPolicy,
    Machine,
    RandomPolicy,
    Release,
    SharedMemory,
    Store,
    format_ns,
)
from repro.sim.timebase import MICROSECOND, MILLISECOND, SECOND


class TestWakePolicies:
    class _W:
        def __init__(self, name):
            self.name = name

    def test_fifo_picks_first(self):
        waiters = [self._W("a"), self._W("b")]
        assert FifoPolicy().choose("L", waiters).name == "a"

    def test_lifo_picks_last(self):
        waiters = [self._W("a"), self._W("b")]
        assert LifoPolicy().choose("L", waiters).name == "b"

    def test_random_is_seeded(self):
        waiters = [self._W(str(i)) for i in range(10)]
        first = RandomPolicy(random.Random(3)).choose("L", waiters)
        second = RandomPolicy(random.Random(3)).choose("L", waiters)
        assert first.name == second.name

    def test_lifo_policy_changes_grant_order(self):
        order = []

        def holder():
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")

        def waiter(name, delay):
            yield Compute(delay)
            yield Acquire(lock="L")
            order.append(name)
            yield Release(lock="L")

        m = Machine(num_cores=4, lock_cost=0, mem_cost=0,
                    wake_policy=LifoPolicy())
        m.add_thread(holder())
        m.add_thread(waiter("early", 10))
        m.add_thread(waiter("late", 20))
        m.run()
        assert order == ["late", "early"]


class TestSharedMemory:
    def test_default_zero_and_contains(self):
        memory = SharedMemory()
        assert memory.read("x") == 0
        assert "x" not in memory
        memory.write("x", Store(3))
        assert "x" in memory
        assert len(memory) == 1

    def test_ops(self):
        memory = SharedMemory({"x": 10})
        assert memory.write("x", Add(5)) == 15
        assert memory.write("x", Store(2)) == 2

    def test_snapshot_restore(self):
        memory = SharedMemory({"a": 1})
        snapshot = memory.snapshot()
        memory.write("a", Store(9))
        memory.restore(snapshot)
        assert memory.read("a") == 1

    def test_snapshot_is_a_copy(self):
        memory = SharedMemory({"a": 1})
        snapshot = memory.snapshot()
        snapshot["a"] = 99
        assert memory.read("a") == 1


class TestTimebase:
    def test_format_ns_units(self):
        assert format_ns(5) == "5ns"
        assert format_ns(2 * MICROSECOND) == "2.000us"
        assert format_ns(3 * MILLISECOND) == "3.000ms"
        assert format_ns(SECOND) == "1.000s"


class TestMachineAccounting:
    def test_lock_stats_hold_and_wait(self):
        m = Machine(num_cores=4, lock_cost=0, mem_cost=0)

        def prog(delay, hold):
            yield Compute(delay)
            yield Acquire(lock="L")
            yield Compute(hold)
            yield Release(lock="L")

        m.add_thread(prog(0, 100))
        m.add_thread(prog(10, 50))
        result = m.run()
        stats = result.locks["L"]
        assert stats.acquisitions == 2
        assert stats.contended_acquisitions == 1
        assert stats.total_hold_ns == 150
        assert stats.total_wait_ns == 90

    def test_machine_result_aggregates(self):
        m = Machine(num_cores=2, lock_cost=0, mem_cost=0)

        def prog():
            yield Compute(100)

        m.add_thread(prog())
        m.add_thread(prog())
        result = m.run()
        assert result.total_cpu_ns == 200
        assert result.total_block_ns == 0
        assert result.cpu_waste_per_thread() == 0.0

    def test_thread_lifetime(self):
        m = Machine(num_cores=1, lock_cost=0, mem_cost=0)

        def prog():
            yield Compute(100)

        m.add_thread(prog())
        m.add_thread(prog())
        result = m.run()
        lifetimes = sorted(t.lifetime_ns for t in result.threads.values())
        assert lifetimes == [100, 200]
