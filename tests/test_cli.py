"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mysql" in out
        assert "table1" in out

    def test_record_replay_transform_roundtrip(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        assert main(["record", "transmissionBT", "-o", trace_file]) == 0
        assert main(["replay", trace_file, "--runs", "2"]) == 0
        out_file = str(tmp_path / "free.jsonl")
        assert main(["transform", trace_file, "-o", out_file]) == 0
        out = capsys.readouterr().out
        assert "ULCP pairs" in out
        assert "ULCP-free trace" in out

    def test_debug_workload(self, capsys):
        assert main(["debug", "transmissionBT"]) == 0
        assert "PERFPLAY report" in capsys.readouterr().out

    def test_debug_trace_file(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        assert main(["debug", "--trace", trace_file]) == 0
        assert "PERFPLAY report" in capsys.readouterr().out

    def test_debug_without_target_fails(self):
        assert main(["debug"]) == 2

    def test_profile_workload(self, capsys):
        assert main(["profile", "transmissionBT"]) == 0
        out = capsys.readouterr().out
        assert "pipeline profile" in out
        for stage in ("record", "intern", "scan", "classify", "benign",
                      "transform", "replay", "total"):
            assert stage in out
        assert "events=" in out

    def test_profile_trace_file(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        assert main(["profile", "--trace", trace_file, "--no-replay"]) == 0
        out = capsys.readouterr().out
        assert "intern" in out
        stage_names = [line.split()[0] for line in out.splitlines()[1:]]
        assert "replay" not in stage_names  # stage skipped
        assert "record" not in stage_names  # loaded, not recorded

    def test_profile_without_target_fails(self):
        assert main(["profile"]) == 2

    def test_timeline(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        assert main(["timeline", trace_file, "--width", "40"]) == 0
        assert "timeline" in capsys.readouterr().out

    def test_timeline_chrome_format(self, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        capsys.readouterr()
        assert main(["timeline", trace_file, "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]
        assert {"M", "X"} <= {e["ph"] for e in doc["traceEvents"]}

    def test_timeline_chrome_to_file(self, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "t.jsonl")
        out_file = tmp_path / "timeline.chrome.json"
        main(["record", "transmissionBT", "-o", trace_file])
        capsys.readouterr()
        assert main([
            "timeline", trace_file, "--format", "chrome",
            "-o", str(out_file),
        ]) == 0
        assert capsys.readouterr().out == ""  # written to the file instead
        doc = json.loads(out_file.read_text())
        assert doc["metadata"]["unit"] == "1 simulated ns = 1 trace us"

    def test_timeline_columnar_format(self, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        capsys.readouterr()
        assert main(["timeline", trace_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["threads"]

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "table1", "--no-cache"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_jobs_matches_serial(self, tmp_path, capsys):
        assert main(["experiment", "figure2", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiment", "figure2", "--no-cache", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_experiment_populates_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "experiment", "table1", "--cache-dir", cache_dir, "--jobs", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        info = capsys.readouterr().out
        assert "traces     : 16" in info
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "traces     : 0" in capsys.readouterr().out

    def test_replay_jobs_flag(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl.gz")
        assert main(["record", "pbzip2", "-o", trace_file]) == 0
        capsys.readouterr()
        assert main(["replay", trace_file, "--runs", "2", "--jobs", "2"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["replay", trace_file, "--runs", "2", "--jobs", "1"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_sensitivity(self, capsys):
        assert main([
            "sensitivity", "bodytrack",
            "--threads-list", "2", "--sizes", "simlarge",
        ]) == 0
        assert "configurations" in capsys.readouterr().out

    def test_record_with_options(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        assert main([
            "record", "canneal", "--threads", "4", "--input-size", "simsmall",
            "--scale", "0.5", "--seed", "3", "-o", trace_file,
        ]) == 0
        from repro.trace import load

        trace = load(trace_file)
        assert trace.meta.params["threads"] == 4
        assert trace.meta.params["input_size"] == "simsmall"


class TestNewCommands:
    def test_advise_workload(self, capsys):
        assert main(["advise", "transmissionBT"]) == 0
        assert "Fix advisor" in capsys.readouterr().out

    def test_advise_needs_target(self):
        assert main(["advise"]) == 2

    def test_locks_profile(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        capsys.readouterr()
        assert main(["locks", trace_file]) == 0
        assert "rate" in capsys.readouterr().out

    def test_fix_command(self, capsys):
        assert main([
            "fix", "transmissionBT", "--lock", "rr_lock", "--fix", "rwlock",
        ]) == 0
        assert "rwlock fix" in capsys.readouterr().out

    def test_fix_unknown_fix(self, capsys):
        assert main([
            "fix", "transmissionBT", "--lock", "rr_lock", "--fix", "nope",
        ]) == 2

    def test_selfcheck_command(self, capsys):
        assert main(["selfcheck", "transmissionBT"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_selfcheck_trace(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "canneal", "-o", trace_file])
        capsys.readouterr()
        assert main(["selfcheck", "--trace", trace_file]) == 0

    def test_stats_command(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "canneal", "-o", trace_file])
        capsys.readouterr()
        assert main(["stats", trace_file]) == 0
        assert "events=" in capsys.readouterr().out

    def test_compare_command(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        main(["record", "transmissionBT", "-o", a])
        main(["record", "transmissionBT", "--seed", "5", "-o", b])
        capsys.readouterr()
        assert main(["compare", a, b]) == 0
        assert "Before/after comparison" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_analyze_text(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        capsys.readouterr()
        assert main(["analyze", trace_file]) == 0
        out = capsys.readouterr().out
        assert "pairs" in out

    def test_analyze_json(self, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        capsys.readouterr()
        assert main(["analyze", trace_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["v"] == 1 and data["ok"] is True
        assert "pairs" in data["result"]


class TestTelemetryFlag:
    def test_record_writes_telemetry_json(self, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "t.jsonl")
        artifact = str(tmp_path / "TELEMETRY.json")
        assert main([
            "record", "transmissionBT", "-o", trace_file,
            "--telemetry", artifact,
        ]) == 0
        data = json.loads((tmp_path / "TELEMETRY.json").read_text())
        assert data["counters"]["record.traces"] == 1
        assert data["counters"]["sim.runs"] == 1
        # default export strips wall times for byte-determinism
        assert all("ns" not in s for s in data["spans"])

    def test_prom_format(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        artifact = str(tmp_path / "t.prom")
        main(["record", "transmissionBT", "-o", trace_file])
        assert main([
            "replay", trace_file, "--runs", "2",
            "--telemetry", artifact, "--telemetry-format", "prom",
        ]) == 0
        text = (tmp_path / "t.prom").read_text()
        assert "# TYPE repro_replay_runs counter" in text
        assert "repro_replay_runs 2" in text

    def test_jobs_telemetry_byte_identical(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl.gz")
        main(["record", "pbzip2", "-o", trace_file])
        serial = str(tmp_path / "serial.json")
        parallel = str(tmp_path / "parallel.json")
        assert main([
            "replay", trace_file, "--runs", "4", "--jobs", "1",
            "--telemetry", serial,
        ]) == 0
        assert main([
            "replay", trace_file, "--runs", "4", "--jobs", "4",
            "--telemetry", parallel,
        ]) == 0
        assert (tmp_path / "serial.json").read_bytes() == \
            (tmp_path / "parallel.json").read_bytes()

    def test_telemetry_subcommand_renders_summary(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        artifact = str(tmp_path / "TELEMETRY.json")
        main(["record", "transmissionBT", "-o", trace_file,
              "--telemetry", artifact])
        capsys.readouterr()
        assert main(["telemetry", artifact]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "record.traces" in out

    def test_telemetry_subcommand_converts_to_prom(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        artifact = str(tmp_path / "TELEMETRY.json")
        main(["record", "transmissionBT", "-o", trace_file,
              "--telemetry", artifact])
        capsys.readouterr()
        assert main(["telemetry", artifact, "--format", "prom"]) == 0
        assert "# TYPE repro_record_traces counter" in capsys.readouterr().out

    def test_debug_with_telemetry(self, tmp_path, capsys):
        import json

        artifact = str(tmp_path / "d.json")
        assert main([
            "debug", "transmissionBT", "--telemetry", artifact,
        ]) == 0
        data = json.loads((tmp_path / "d.json").read_text())
        assert data["counters"]["analyze.pairs"] > 0
        assert data["counters"]["transform.runs"] >= 1


class TestFaultsCommand:
    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "pool.worker_crash" in out
        assert "trace.truncate" in out
        assert "sim.thread_kill" in out

    def test_faults_demo(self, capsys):
        assert main(["faults", "demo", "--jobs", "2", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "n/a" in out
        assert "salvage" in out.lower()

    def test_faults_demo_no_faults_is_clean(self, capsys):
        assert main([
            "faults", "demo", "--no-faults", "--jobs", "2", "--scale", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "n/a" not in out
        assert "quarantined" not in out


class TestRobustExperimentFlags:
    def test_partial_mode_renders_na_for_quarantined_cell(self, capsys):
        # a run that finished but degraded cells to n/a exits 3, not 0,
        # so scripts can tell "clean table" from "table with holes"
        assert main([
            "experiment", "table1", "--no-cache", "--jobs", "2",
            "--retries", "0", "--partial",
            "--fault", "pool.worker_crash@1:times=99",
        ]) == 3
        out = capsys.readouterr().out
        assert "n/a" in out
        assert "crash after 1 attempt" in out

    def test_policy_flags_without_faults_match_plain_run(self, capsys):
        assert main(["experiment", "table1", "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "experiment", "table1", "--no-cache", "--jobs", "2",
            "--retries", "2", "--task-timeout", "120", "--partial",
        ]) == 0
        assert capsys.readouterr().out == plain

    def test_bad_fault_spec_is_one_line_error(self, capsys):
        assert main([
            "experiment", "table1", "--no-cache",
            "--fault", "pool.nonsense",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1


class TestSalvageFlag:
    def _truncated_trace(self, tmp_path):
        trace_file = tmp_path / "t.jsonl"
        main(["record", "transmissionBT", "-o", str(trace_file)])
        text = trace_file.read_text()
        trace_file.write_text(text[: int(len(text) * 0.7)])
        return str(trace_file)

    def test_strict_load_fails_with_one_line_error(self, tmp_path, capsys):
        trace_file = self._truncated_trace(tmp_path)
        capsys.readouterr()
        assert main(["stats", trace_file]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_salvage_recovers_prefix(self, tmp_path, capsys):
        trace_file = self._truncated_trace(tmp_path)
        capsys.readouterr()
        assert main(["stats", trace_file, "--salvage"]) == 0
        captured = capsys.readouterr()
        assert "salvage:" in captured.err
        assert "kept" in captured.err

    def test_salvage_and_strict_conflict(self, tmp_path, capsys):
        trace_file = self._truncated_trace(tmp_path)
        with pytest.raises(SystemExit):
            main(["stats", trace_file, "--salvage", "--strict"])


class TestReportCommand:
    def _trace(self, tmp_path):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        return trace_file

    def test_report_from_trace_file(self, tmp_path, capsys):
        trace_file = self._trace(tmp_path)
        out = tmp_path / "REPORT.html"
        capsys.readouterr()
        assert main(["report", trace_file, "-o", str(out)]) == 0
        html = out.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "Execution waterfalls" in html
        assert "report ->" in capsys.readouterr().err

    def test_report_is_byte_deterministic(self, tmp_path):
        trace_file = self._trace(tmp_path)
        first, second = tmp_path / "a.html", tmp_path / "b.html"
        assert main(["report", trace_file, "-o", str(first)]) == 0
        assert main(["report", trace_file, "-o", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_report_with_transformed_positional(self, tmp_path):
        trace_file = self._trace(tmp_path)
        free_file = str(tmp_path / "free.jsonl")
        assert main(["transform", trace_file, "-o", free_file]) == 0
        out = tmp_path / "REPORT.html"
        assert main(["report", trace_file, free_file, "-o", str(out)]) == 0
        assert "<!DOCTYPE html>" in out.read_text(encoding="utf-8")

    def test_report_from_workload_name(self, tmp_path):
        out = tmp_path / "REPORT.html"
        assert main(["report", "transmissionBT", "-o", str(out)]) == 0
        assert out.exists()

    def test_report_on_salvaged_trace(self, tmp_path, capsys):
        trace_file = self._trace(tmp_path)
        text = open(trace_file).read()
        open(trace_file, "w").write(text[: int(len(text) * 0.7)])
        out = tmp_path / "REPORT.html"
        capsys.readouterr()
        assert main(["report", trace_file, "--salvage", "-o", str(out)]) == 0
        assert "salvage:" in capsys.readouterr().err
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_report_zero_ulcps_renders_empty_state(self, tmp_path):
        # blackscholes partitions its data: no lock contention at all
        out = tmp_path / "REPORT.html"
        assert main([
            "report", "blackscholes", "--scale", "0.5", "-o", str(out),
        ]) == 0
        assert "No unnecessary lock contentions" in out.read_text(
            encoding="utf-8"
        )


class TestLogFlags:
    def test_log_json_emits_parseable_lines(self, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        text = open(trace_file).read()
        open(trace_file, "w").write(text[: int(len(text) * 0.7)])
        capsys.readouterr()
        assert main([
            "--log-json", "--log-level", "info",
            "stats", trace_file, "--salvage",
        ]) == 0
        lines = capsys.readouterr().err.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert any(r.get("event") == "trace.salvage" for r in records)
        assert any(r.get("event") == "cli.salvage" for r in records)

    def test_log_level_silences_info(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        text = open(trace_file).read()
        open(trace_file, "w").write(text[: int(len(text) * 0.7)])
        capsys.readouterr()
        assert main([
            "--log-level", "error", "stats", trace_file, "--salvage",
        ]) == 0
        assert capsys.readouterr().err == ""  # warning-level salvage muted


class TestStreamingCli:
    def _record(self, tmp_path, *extra):
        trace_file = str(tmp_path / "t.jsonl.gz")
        assert main(["record", "mysql", "--threads", "3",
                     "--input-size", "simsmall", "--scale", "0.4",
                     "--seed", "1", "-o", trace_file, *extra]) == 0
        return trace_file

    def _convert(self, tmp_path, trace_file, segment_events="37"):
        seg_file = str(tmp_path / "t.seg.jsonl.gz")
        assert main(["convert", trace_file, seg_file,
                     "--segment-events", segment_events]) == 0
        return seg_file

    def test_convert_reports_segment_count(self, tmp_path, capsys):
        trace_file = self._record(tmp_path)
        capsys.readouterr()
        self._convert(tmp_path, trace_file)
        out = capsys.readouterr().out
        assert "segments" in out

    def test_convert_back_to_monolithic_round_trips_bytes(self, tmp_path, capsys):
        trace_file = self._record(tmp_path)
        seg_file = self._convert(tmp_path, trace_file)
        back = str(tmp_path / "back.jsonl.gz")
        assert main(["convert", seg_file, back, "--monolithic"]) == 0
        assert open(back, "rb").read() == open(trace_file, "rb").read()

    def test_record_segment_events_matches_convert(self, tmp_path, capsys):
        trace_file = self._record(tmp_path)
        seg_file = self._convert(tmp_path, trace_file)
        direct = str(tmp_path / "direct.seg.jsonl.gz")
        assert main(["record", "mysql", "--threads", "3",
                     "--input-size", "simsmall", "--scale", "0.4",
                     "--seed", "1", "-o", direct,
                     "--segment-events", "37"]) == 0
        assert open(direct, "rb").read() == open(seg_file, "rb").read()

    @pytest.mark.parametrize("argv", [
        ["stats"],
        ["stats", "--format", "json"],
        ["analyze"],
        ["analyze", "--format", "json"],
        ["timeline", "--format", "chrome"],
        ["timeline", "--format", "json"],
    ])
    def test_streamed_output_identical(self, tmp_path, capsys, argv):
        trace_file = self._record(tmp_path)
        seg_file = self._convert(tmp_path, trace_file)
        capsys.readouterr()
        assert main([*argv, seg_file]) == 0  # auto-streams
        streamed = capsys.readouterr().out
        assert main([*argv, seg_file, "--no-stream"]) == 0
        full_seg = capsys.readouterr().out
        assert main([*argv, trace_file]) == 0
        full_mono = capsys.readouterr().out
        assert streamed == full_seg == full_mono

    def test_stream_flag_rejects_monolithic(self, tmp_path, capsys):
        trace_file = self._record(tmp_path)
        capsys.readouterr()
        assert main(["analyze", trace_file, "--stream"]) == 1
        assert "requires a segmented trace" in capsys.readouterr().err

    def test_stream_and_salvage_incompatible(self, tmp_path, capsys):
        trace_file = self._record(tmp_path)
        seg_file = self._convert(tmp_path, trace_file)
        capsys.readouterr()
        assert main(["analyze", seg_file, "--stream", "--salvage"]) == 1
        assert "incompatible" in capsys.readouterr().err

    def test_salvage_on_truncated_segmented_file(self, tmp_path, capsys):
        trace_file = self._record(tmp_path)
        seg_file = self._convert(tmp_path, trace_file)
        data = open(seg_file, "rb").read()
        open(seg_file, "wb").write(data[: len(data) // 2])
        capsys.readouterr()
        assert main(["stats", seg_file, "--salvage"]) == 0
        assert "events=" in capsys.readouterr().out

    def test_timeline_ascii_on_segmented_file(self, tmp_path, capsys):
        trace_file = self._record(tmp_path)
        seg_file = self._convert(tmp_path, trace_file)
        capsys.readouterr()
        assert main(["timeline", seg_file, "--width", "40"]) == 0
        ascii_seg = capsys.readouterr().out
        assert main(["timeline", trace_file, "--width", "40"]) == 0
        assert ascii_seg == capsys.readouterr().out


class TestResumeAndExitCodes:
    def test_run_id_then_resume_is_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "experiment", "table1", "--cache-dir", cache_dir,
            "--run-id", "r1",
        ]) == 0
        first = capsys.readouterr().out
        assert main(["resume", "r1", "--cache-dir", cache_dir]) == 0
        resumed = capsys.readouterr().out
        # the resume banner aside, the rendered table must be identical
        assert resumed.splitlines()[0].startswith("resuming run r1")
        assert resumed.split("\n", 1)[1] == first

    def test_resume_skips_journaled_tasks(self, tmp_path, capsys):
        from repro.runner.pool import RUN_STATS

        cache_dir = str(tmp_path / "cache")
        assert main([
            "experiment", "table1", "--cache-dir", cache_dir,
            "--run-id", "r2", "--jobs", "2",
        ]) == 0
        assert main(["resume", "r2", "--cache-dir", cache_dir]) == 0
        assert RUN_STATS.skipped > 0

    def test_resume_unknown_run_is_usage_error(self, tmp_path, capsys):
        assert main([
            "resume", "nope", "--cache-dir", str(tmp_path / "cache"),
        ]) == 2
        assert "no journal for run" in capsys.readouterr().err

    def test_run_id_without_cache_is_usage_error(self, capsys):
        assert main([
            "experiment", "table1", "--no-cache", "--run-id", "r3",
        ]) == 2
        assert "--run-id needs" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli.COMMANDS, "list", boom)
        assert main(["list"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_budget_deadline_partial_exits_3(self, capsys):
        # an already-expired deadline quarantines every cell under
        # --partial: the run completes degraded and reports it via rc 3
        assert main([
            "experiment", "table1", "--no-cache", "--partial",
            "--deadline", "0.000001",
        ]) == 3
        assert "n/a" in capsys.readouterr().out

    def test_analyze_resume_needs_streaming(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        capsys.readouterr()
        assert main([
            "analyze", trace_file, "--no-stream", "--resume", "r4",
        ]) == 2
        assert "--resume needs a segmented" in capsys.readouterr().err

    def test_analyze_resume_on_segmented_file(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        seg_file = str(tmp_path / "t.seg.jsonl")
        main(["record", "transmissionBT", "-o", trace_file])
        main(["convert", trace_file, seg_file, "--segment-events", "64"])
        capsys.readouterr()
        assert main(["analyze", seg_file, "--format", "json"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "analyze", seg_file, "--resume", "r5", "--checkpoint-every", "2",
            "--format", "json",
        ]) == 0
        assert capsys.readouterr().out == plain


class TestChaosCommand:
    def test_chaos_smoke(self, tmp_path, capsys):
        report_file = tmp_path / "chaos.json"
        assert main([
            "chaos", "--cycles", "3", "--seed", "7",
            "--report", str(report_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos soak: 3 cycles" in out
        assert "invariant violations: none" in out
        import json

        data = json.loads(report_file.read_text())
        assert data["violations"] == []
        assert len(data["results"]) == 3

    def test_chaos_unknown_op_is_error(self, capsys):
        assert main(["chaos", "--cycles", "1", "--ops", "nope"]) == 2
        assert "unknown chaos ops" in capsys.readouterr().err
