"""Suite-wide safety net: a per-test wall-clock budget.

The fault-injection tests intentionally exercise hangs, crashed workers
and truncated files; a bug in the recovery paths shows up as a test that
never returns.  ``pytest-timeout`` is not a dependency of this repo, so
the budget is enforced with a plain SIGALRM wrapper (POSIX only; on
platforms without SIGALRM the fixture is a no-op).  The alarm lives in
the pytest process only — forked worker processes do not inherit it, so
it cannot fire inside a supervised task.

``REPRO_TEST_TIMEOUT`` (seconds) overrides the default budget.
"""

import os
import signal

import pytest

DEFAULT_TIMEOUT = 300.0


def _budget() -> float:
    try:
        return float(os.environ.get("REPRO_TEST_TIMEOUT", DEFAULT_TIMEOUT))
    except ValueError:
        return DEFAULT_TIMEOUT


@pytest.fixture(autouse=True)
def _test_timeout(request):
    seconds = _budget()
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        pytest.fail(
            f"test exceeded the {seconds:.0f}s suite budget "
            f"(REPRO_TEST_TIMEOUT) — likely a hang in a recovery path",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
