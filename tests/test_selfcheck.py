"""Self-check invariants across every workload model.

These are the strongest integration tests in the suite: for each of the
paper's 16 applications (plus the bug cases and synthetics), recording
must be deterministic, serialization lossless, ELSC replay exact,
transformation uid-preserving and acyclic, and the two replays must
agree on memory.
"""

import pytest

from repro.selfcheck import run_selfcheck
from repro.workloads import TABLE1_ORDER, get_workload


@pytest.mark.parametrize("app", TABLE1_ORDER)
def test_selfcheck_all_table1_apps(app):
    workload = get_workload(app, threads=2, scale=0.5)
    report = run_selfcheck(workload)
    assert report.ok, "\n" + report.render()


@pytest.mark.parametrize(
    "app",
    [
        "bug1-openldap-spinwait",
        "bug2-pbzip2-join",
        "case1-condwait-nulllock",
        "case9-querycache-timeout",
        "mixed-bag",
        "tunable-contention",
    ],
)
def test_selfcheck_special_workloads(app):
    workload = get_workload(app, threads=3)
    report = run_selfcheck(workload)
    assert report.ok, "\n" + report.render()


def test_selfcheck_four_threads():
    report = run_selfcheck(get_workload("fluidanimate", threads=4, scale=0.4))
    assert report.ok, "\n" + report.render()


def test_selfcheck_requires_input():
    with pytest.raises(ValueError):
        run_selfcheck()


def test_selfcheck_trace_only_path():
    trace = get_workload("vips", scale=0.3).record().trace
    report = run_selfcheck(trace=trace)
    assert report.ok
    # no workload -> no determinism check
    names = [c.name for c in report.checks]
    assert "deterministic recording" not in names


def test_render_mentions_every_check():
    report = run_selfcheck(get_workload("canneal"))
    text = report.render()
    assert "ELSC replay" in text
    assert "all checks passed" in text
