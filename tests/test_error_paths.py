"""Error-injection tests: corrupted inputs must fail loudly and clearly."""

import pytest

from repro.errors import ReplayError, SimulationError, TraceError
from repro.record import record
from repro.replay import Replayer, original_programs
from repro.sim import Acquire, Compute, Machine, Read, Release, Store, Write
from repro.trace import Trace, TraceEvent, dumps, loads, problems, validate


def small_trace():
    def prog(k):
        yield Compute(50 + k)
        yield Acquire(lock="L")
        yield Write("x", op=Store(k), site=None)
        yield Release(lock="L")

    return record([(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0).trace


class TestCorruptTraces:
    def test_missing_release_detected(self):
        trace = small_trace()
        for events in trace.threads.values():
            trace.threads[events[0].tid] = [
                e for e in events if e.kind != "release"
            ]
        issues = problems(trace)
        assert any("never released" in i for i in issues)
        with pytest.raises(TraceError):
            validate(trace)

    def test_dangling_wait_token_detected(self):
        trace = small_trace()
        tid = trace.thread_ids[0]
        trace.threads[tid].insert(
            1,
            TraceEvent(uid="zz1", tid=tid, kind="wait", t=0,
                       token="nonexistent", reason="posted"),
        )
        assert any("missing post" in i for i in problems(trace))

    def test_schedule_with_unknown_uid_detected(self):
        trace = small_trace()
        trace.lock_schedule["L"].append("phantom")
        assert any("unknown acquire uid" in i for i in problems(trace))

    def test_truncated_serialization_raises(self):
        text = dumps(small_trace())
        with pytest.raises(TraceError):
            loads("\n".join(text.splitlines()[:2]))

    def test_unreplayable_kind_raises(self):
        trace = small_trace()
        tid = trace.thread_ids[0]
        trace.threads[tid].insert(
            1, TraceEvent(uid="zz2", tid=tid, kind="martian", t=0)
        )
        programs = original_programs(trace)
        with pytest.raises(ReplayError):
            for program, _name in programs:
                list(program)


class TestBadSchedules:
    def test_infeasible_elsc_schedule_deadlocks(self):
        """A scrambled schedule that contradicts program order must be
        detected as a deadlock, not silently reordered."""
        from repro.errors import DeadlockError

        def prog(k):
            yield Compute(10 + k)
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")

        trace = record([(prog(0), "a")], lock_cost=0, mem_cost=0).trace
        # demand the second acquire first: thread can never comply
        trace.lock_schedule["L"] = list(reversed(trace.lock_schedule["L"]))
        with pytest.raises(DeadlockError):
            Replayer(jitter=0.0).replay(trace)


class TestMachineMisuse:
    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            Machine(num_cores=0)

    def test_jitter_without_rng_rejected(self):
        with pytest.raises(SimulationError):
            Machine(jitter=0.05)

    def test_unknown_request_rejected(self):
        m = Machine(lock_cost=0, mem_cost=0)

        def prog():
            yield object()

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_cross_thread_release_rejected(self):
        m = Machine(lock_cost=0, mem_cost=0, num_cores=2)

        def holder():
            yield Acquire(lock="L")
            yield Compute(1000)
            yield Release(lock="L")

        def thief():
            yield Compute(100)
            yield Release(lock="L")

        m.add_thread(holder())
        m.add_thread(thief())
        with pytest.raises(SimulationError):
            m.run()


class TestFaultInjectedErrorPaths:
    """Deadlock/error reporting must stay correct under injected faults."""

    @staticmethod
    def _contended_machine():
        machine = Machine(lock_cost=0, mem_cost=0, num_cores=3)

        def holder():
            yield Acquire(lock="L")
            yield Compute(1000)
            yield Release(lock="L")

        def waiter():
            yield Compute(10)
            yield Acquire(lock="L")
            yield Release(lock="L")

        machine.add_thread(holder())   # t0
        machine.add_thread(waiter())   # t1
        machine.add_thread(waiter())   # t2
        return machine

    def test_killed_lock_holder_reports_exact_blocked_set(self):
        from repro import faults
        from repro.errors import DeadlockError

        machine = self._contended_machine()
        # nth=2: after t0's acquire has been granted, before its release
        plan = faults.FaultPlan.parse(["sim.thread_kill@t0:nth=2"], seed=0)
        with faults.use_plan(plan):
            with pytest.raises(DeadlockError) as excinfo:
                machine.run()
        blocked = {str(t).split("(")[0] for t in excinfo.value.blocked_threads}
        # the starved waiters, and only them: the dead holder is done,
        # not blocked, and must not pollute the report
        assert blocked == {"t1", "t2"}
        assert "lock:L" in str(excinfo.value)

    def test_thread_exception_fault_surfaces_with_site_and_key(self):
        from repro import faults
        from repro.errors import FaultInjected, ReproError

        machine = self._contended_machine()
        plan = faults.FaultPlan.parse(["sim.thread_exception@t1"], seed=0)
        with faults.use_plan(plan):
            with pytest.raises(FaultInjected) as excinfo:
                machine.run()
        assert issubclass(FaultInjected, ReproError)
        assert "sim.thread_exception" in str(excinfo.value)
        assert "t1" in str(excinfo.value)

    def test_kill_before_acquire_changes_nothing_for_others(self):
        from repro import faults

        machine = self._contended_machine()
        plan = faults.FaultPlan.parse(["sim.thread_kill@t0:nth=1"], seed=0)
        with faults.use_plan(plan):
            result = machine.run()
        # t0 never took the lock, so the waiters complete normally
        assert result.end_time > 0


class TestCacheCorruptionSelfHeals:
    """An injected corrupt cache entry must read as a miss, not an error."""

    def test_corrupt_trace_entry_recomputed(self, tmp_path):
        from repro import faults
        from repro.runner import cache as cache_mod
        from repro.runner import record_cached

        with cache_mod.use_cache(tmp_path):
            first = record_cached("pbzip2", threads=2, scale=0.3, seed=0)
            plan = faults.FaultPlan.parse(
                ["cache.trace_corrupt:times=99"], seed=0
            )
            with faults.use_plan(plan):
                healed = record_cached("pbzip2", threads=2, scale=0.3, seed=0)
        assert dumps(healed.trace) == dumps(first.trace)

    def test_corrupt_blob_entry_recomputed(self, tmp_path):
        from repro import faults
        from repro.runner import cache as cache_mod
        from repro.runner import memoized

        calls = []

        # big enough that the injected bitflip lands inside the
        # compressed payload, not in the gzip header
        payload = {"value": bytes(range(256)) * 64}

        def compute():
            calls.append(1)
            return payload

        with cache_mod.use_cache(tmp_path):
            assert memoized("selfheal", {"k": 1}, compute) == payload
            plan = faults.FaultPlan.parse(
                ["cache.blob_corrupt:times=99"], seed=0
            )
            with faults.use_plan(plan):
                assert memoized("selfheal", {"k": 1}, compute) == payload
        assert len(calls) == 2  # hit turned into a miss, then recomputed

    def test_clean_cache_still_hits(self, tmp_path):
        from repro.runner import cache as cache_mod
        from repro.runner import memoized

        calls = []

        def compute():
            calls.append(1)
            return 7

        with cache_mod.use_cache(tmp_path):
            assert memoized("selfheal", {"k": 2}, compute) == 7
            assert memoized("selfheal", {"k": 2}, compute) == 7
        assert len(calls) == 1
