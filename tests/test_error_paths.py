"""Error-injection tests: corrupted inputs must fail loudly and clearly."""

import pytest

from repro.errors import ReplayError, SimulationError, TraceError
from repro.record import record
from repro.replay import Replayer, original_programs
from repro.sim import Acquire, Compute, Machine, Read, Release, Store, Write
from repro.trace import Trace, TraceEvent, dumps, loads, problems, validate


def small_trace():
    def prog(k):
        yield Compute(50 + k)
        yield Acquire(lock="L")
        yield Write("x", op=Store(k), site=None)
        yield Release(lock="L")

    return record([(prog(0), "a"), (prog(1), "b")], lock_cost=0, mem_cost=0).trace


class TestCorruptTraces:
    def test_missing_release_detected(self):
        trace = small_trace()
        for events in trace.threads.values():
            trace.threads[events[0].tid] = [
                e for e in events if e.kind != "release"
            ]
        issues = problems(trace)
        assert any("never released" in i for i in issues)
        with pytest.raises(TraceError):
            validate(trace)

    def test_dangling_wait_token_detected(self):
        trace = small_trace()
        tid = trace.thread_ids[0]
        trace.threads[tid].insert(
            1,
            TraceEvent(uid="zz1", tid=tid, kind="wait", t=0,
                       token="nonexistent", reason="posted"),
        )
        assert any("missing post" in i for i in problems(trace))

    def test_schedule_with_unknown_uid_detected(self):
        trace = small_trace()
        trace.lock_schedule["L"].append("phantom")
        assert any("unknown acquire uid" in i for i in problems(trace))

    def test_truncated_serialization_raises(self):
        text = dumps(small_trace())
        with pytest.raises(TraceError):
            loads("\n".join(text.splitlines()[:2]))

    def test_unreplayable_kind_raises(self):
        trace = small_trace()
        tid = trace.thread_ids[0]
        trace.threads[tid].insert(
            1, TraceEvent(uid="zz2", tid=tid, kind="martian", t=0)
        )
        programs = original_programs(trace)
        with pytest.raises(ReplayError):
            for program, _name in programs:
                list(program)


class TestBadSchedules:
    def test_infeasible_elsc_schedule_deadlocks(self):
        """A scrambled schedule that contradicts program order must be
        detected as a deadlock, not silently reordered."""
        from repro.errors import DeadlockError

        def prog(k):
            yield Compute(10 + k)
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")
            yield Acquire(lock="L")
            yield Compute(100)
            yield Release(lock="L")

        trace = record([(prog(0), "a")], lock_cost=0, mem_cost=0).trace
        # demand the second acquire first: thread can never comply
        trace.lock_schedule["L"] = list(reversed(trace.lock_schedule["L"]))
        with pytest.raises(DeadlockError):
            Replayer(jitter=0.0).replay(trace)


class TestMachineMisuse:
    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            Machine(num_cores=0)

    def test_jitter_without_rng_rejected(self):
        with pytest.raises(SimulationError):
            Machine(jitter=0.05)

    def test_unknown_request_rejected(self):
        m = Machine(lock_cost=0, mem_cost=0)

        def prog():
            yield object()

        m.add_thread(prog())
        with pytest.raises(SimulationError):
            m.run()

    def test_cross_thread_release_rejected(self):
        m = Machine(lock_cost=0, mem_cost=0, num_cores=2)

        def holder():
            yield Acquire(lock="L")
            yield Compute(1000)
            yield Release(lock="L")

        def thief():
            yield Compute(100)
            yield Release(lock="L")

        m.add_thread(holder())
        m.add_thread(thief())
        with pytest.raises(SimulationError):
            m.run()
