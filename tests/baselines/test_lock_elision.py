"""Tests for the lock-elision baseline model."""

from repro.analysis import transform
from repro.baselines import replay_lock_elision
from repro.record import record
from repro.replay import ELSC_S, Replayer
from repro.sim import Acquire, Compute, Read, Release, Store, Write
from repro.trace import CodeSite


def site(line):
    return CodeSite("le.c", line)


def readonly_pair(rounds=5):
    def prog(k):
        for _ in range(rounds):
            yield Compute(80 + 9 * k, site=site(1))
            yield Acquire(lock="L", site=site(2))
            yield Read("cfg", site=site(3))
            yield Compute(300, site=site(4))
            yield Release(lock="L", site=site(5))

    def init():
        yield Write("cfg", op=Store(1), site=site(9))

    return [(prog(0), "a"), (prog(1), "b"), (init(), "init")]


def conflicting_pair(rounds=4):
    def prog(k):
        for i in range(rounds):
            yield Compute(100, site=site(11))
            yield Acquire(lock="L", site=site(12))
            yield Read("ctr", site=site(13))
            yield Write("ctr", op=Store(10 * k + i), site=site(14))
            yield Compute(200, site=site(15))
            yield Release(lock="L", site=site(16))

    return [(prog(0), "a"), (prog(1), "b")]


class TestLockElision:
    def test_elides_pure_ulcp_sections(self):
        rec = record(readonly_pair(), name="le")
        result = transform(rec.trace)
        elision = replay_lock_elision(result)
        original = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        assert elision.end_time < original.end_time

    def test_pays_abort_penalty_on_conflicts(self):
        rec = record(conflicting_pair(), name="le")
        result = transform(rec.trace)
        elision = replay_lock_elision(result)
        original = Replayer(jitter=0.0).replay(rec.trace, scheme=ELSC_S)
        # every section conflicts: LE re-executes each with the lock after
        # a failed speculation, so it is *slower* than plain locking
        assert elision.end_time > original.end_time

    def test_perfplay_transformation_beats_elision_on_ulcps(self):
        rec = record(readonly_pair(), name="le")
        result = transform(rec.trace)
        elision = replay_lock_elision(result)
        free = Replayer(jitter=0.0).replay_transformed(result)
        assert free.end_time <= elision.end_time
