"""Tests for atomic-write staging hygiene (repro.util.tmp) and crash points."""

import os

import pytest

from repro.util import tmp as tmpfiles


class TestTmpNames:
    def test_tmp_name_is_a_sibling_with_owner_pid(self, tmp_path):
        tmp = tmpfiles.tmp_name(tmp_path / "out.pkl.gz")
        assert tmp.parent == tmp_path
        assert tmpfiles.is_tmp_name(tmp.name)
        assert tmpfiles.tmp_owner_pid(tmp.name) == os.getpid()

    def test_foreign_names_are_not_tmp(self):
        assert not tmpfiles.is_tmp_name("out.pkl.gz")
        assert not tmpfiles.is_tmp_name("tmp-123-x")
        assert tmpfiles.tmp_owner_pid(".tmp-notanint-x") is None

    def test_own_pid_is_alive(self):
        assert tmpfiles.pid_alive(os.getpid())


class TestReaping:
    def test_dead_owner_reaped_live_owner_spared(self, tmp_path):
        live = tmp_path / f".tmp-{os.getpid()}-live.bin"
        live.write_bytes(b"x")
        # a pid far above pid_max never names a live process
        dead = tmp_path / "sub" / ".tmp-999999999-dead.bin"
        dead.parent.mkdir()
        dead.write_bytes(b"x")
        assert [p.name for p in tmpfiles.find_stale(tmp_path)] == [
            ".tmp-999999999-dead.bin"
        ]
        assert tmpfiles.reap_stale(tmp_path) == 1
        assert live.exists()
        assert not dead.exists()

    def test_unparsable_owner_is_reaped(self, tmp_path):
        weird = tmp_path / ".tmp-garbage-x.bin"
        weird.write_bytes(b"x")
        assert tmpfiles.reap_stale(tmp_path) == 1
        assert not weird.exists()

    def test_cache_ignores_and_reaps_tmp_litter(self, tmp_path):
        from repro.runner.cache import TraceCache

        store = TraceCache(tmp_path)
        store.put_blob("aabbccdd", {"v": 1})
        litter = tmp_path / "blobs" / "aa" / ".tmp-999999999-x.pkl.gz"
        litter.write_bytes(b"torn")
        info = store.info()
        assert info.blobs == 1  # the staging file is not an entry
        assert store.reap_tmp() == 1
        assert not litter.exists()
        assert store.get_blob("aabbccdd") == {"v": 1}

    def test_use_cache_reaps_on_entry(self, tmp_path):
        from repro.runner import cache as cache_mod

        (tmp_path / "blobs").mkdir(parents=True)
        litter = tmp_path / "blobs" / ".tmp-999999999-x.pkl.gz"
        litter.write_bytes(b"torn")
        with cache_mod.use_cache(tmp_path):
            pass
        assert not litter.exists()


class TestCrashPoints:
    def test_parse_spec(self):
        from repro.chaos import points

        assert points.parse_spec("cache.commit") == ("cache.commit", 1)
        assert points.parse_spec("journal.append@7") == ("journal.append", 7)
        with pytest.raises(ValueError):
            points.parse_spec("no.such.point")
        with pytest.raises(ValueError):
            points.parse_spec("cache.commit@0")

    def test_crash_point_is_noop_when_disarmed(self):
        from repro.chaos import points

        assert points.armed() is None
        points.crash_point("cache.commit")  # must not raise or exit

    def test_armed_point_fires_on_nth_hit(self, monkeypatch):
        from repro.chaos import points

        fired = []
        monkeypatch.setattr(points, "kill_now", lambda: fired.append(True))
        points.arm("cache.commit@3")
        try:
            points.crash_point("trace.dump")  # different point: no hit
            points.crash_point("cache.commit")
            points.crash_point("cache.commit")
            assert not fired
            points.crash_point("cache.commit")
            assert fired == [True]
        finally:
            points.disarm()
        assert points.armed() is None
