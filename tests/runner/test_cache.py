"""Content-addressed cache: keys, storage, and the cached pipeline steps."""

import pickle

from repro.runner import cache as cache_mod
from repro.runner import (
    TraceCache,
    cache_key,
    code_version,
    record_cached,
    trace_digest,
    transform_cached,
    use_cache,
)
from repro.runner.cache import memoized


class TestKeys:
    def test_cache_key_stable(self):
        a = cache_key("record", name="pbzip2", threads=2, seed=0)
        b = cache_key("record", name="pbzip2", threads=2, seed=0)
        assert a == b
        assert len(a) == 64 and all(c in "0123456789abcdef" for c in a)

    def test_cache_key_order_insensitive(self):
        assert cache_key("k", x=1, y=2) == cache_key("k", y=2, x=1)

    def test_cache_key_differs_by_params(self):
        assert cache_key("record", seed=0) != cache_key("record", seed=1)
        assert cache_key("record", seed=0) != cache_key("replay", seed=0)

    def test_code_version_short_and_cached(self):
        v = code_version()
        assert len(v) == 12
        assert code_version() is v or code_version() == v

    def test_trace_digest_stable_and_content_sensitive(self):
        from repro.workloads import get_workload

        t1 = get_workload("pbzip2", threads=2, seed=0).record().trace
        t2 = get_workload("pbzip2", threads=2, seed=0).record().trace
        t3 = get_workload("pbzip2", threads=2, seed=1).record().trace
        assert trace_digest(t1) == trace_digest(t2)
        assert trace_digest(t1) != trace_digest(t3)


class TestTraceCache:
    def test_trace_put_get_round_trip(self, tmp_path):
        from repro.workloads import get_workload

        store = TraceCache(tmp_path)
        trace = get_workload("pbzip2", threads=2, seed=0).record().trace
        key = cache_key("t", seed=0)
        assert store.get_trace(key) is None
        path = store.put_trace(key, trace)
        assert path.name.endswith(".jsonl.gz")
        clone = store.get_trace(key)
        assert trace_digest(clone) == trace_digest(trace)

    def test_blob_put_get_round_trip(self, tmp_path):
        store = TraceCache(tmp_path)
        key = cache_key("b", x=1)
        assert store.get_blob(key) is None
        store.put_blob(key, {"rows": [1, 2, 3]})
        assert store.get_blob(key) == {"rows": [1, 2, 3]}

    def test_info_and_clear(self, tmp_path):
        from repro.workloads import get_workload

        store = TraceCache(tmp_path)
        trace = get_workload("pbzip2", threads=2, seed=0).record().trace
        store.put_trace(cache_key("t", i=0), trace)
        store.put_blob(cache_key("b", i=0), [1])
        store.put_blob(cache_key("b", i=1), [2])
        info = store.info()
        assert info.traces == 1 and info.blobs == 2
        assert info.total_bytes > 0
        assert "traces" in info.render()
        assert store.clear() == 3
        assert store.info().total_bytes == 0

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = TraceCache(tmp_path)
        store.put_blob(cache_key("b", i=0), "payload")
        leftovers = [p for p in tmp_path.rglob(".tmp-*")]
        assert leftovers == []


class TestActiveCache:
    def test_disabled_by_default(self):
        assert cache_mod.active() is None or isinstance(
            cache_mod.active(), TraceCache
        )

    def test_use_cache_scopes_activation(self, tmp_path):
        before = cache_mod.active()
        with use_cache(tmp_path) as store:
            assert cache_mod.active() is store
            assert store.root == tmp_path
        assert cache_mod.active() is before

    def test_memoized_without_cache_just_computes(self):
        with use_cache(None):
            calls = []
            assert memoized("k", {"x": 1}, lambda: calls.append(1) or 42) == 42
            assert memoized("k", {"x": 1}, lambda: calls.append(1) or 42) == 42
            assert len(calls) == 2

    def test_memoized_hits_cache(self, tmp_path):
        with use_cache(tmp_path):
            calls = []
            assert memoized("k", {"x": 1}, lambda: calls.append(1) or 42) == 42
            assert memoized("k", {"x": 1}, lambda: calls.append(1) or 42) == 42
            assert len(calls) == 1


class TestCachedPipeline:
    def test_record_cached_hit_is_equivalent(self, tmp_path):
        with use_cache(tmp_path):
            cold = record_cached("pbzip2", threads=2, seed=0)
            warm = record_cached("pbzip2", threads=2, seed=0)
        assert trace_digest(warm.trace) == trace_digest(cold.trace)
        assert warm.recorded_time == cold.recorded_time
        assert pickle.dumps(warm.machine_result) == pickle.dumps(
            cold.machine_result
        )

    def test_record_cached_distinguishes_workload_kwargs(self, tmp_path):
        with use_cache(tmp_path):
            original = record_cached("bug1-openldap-spinwait", threads=2, seed=0)
            fixed = record_cached(
                "bug1-openldap-spinwait", threads=2, seed=0,
                workload_kwargs={"fixed": True},
            )
        assert trace_digest(original.trace) != trace_digest(fixed.trace)

    def test_transform_cached_hit_is_equivalent(self, tmp_path):
        with use_cache(tmp_path):
            recorded = record_cached("pbzip2", threads=2, seed=0)
            cold = transform_cached(recorded.trace)
            warm = transform_cached(recorded.trace)
        assert trace_digest(warm.trace) == trace_digest(cold.trace)
        assert warm.removed_sections == cold.removed_sections

    def test_stale_code_version_misses(self, tmp_path, monkeypatch):
        with use_cache(tmp_path):
            calls = []
            memoized("k", {"x": 1}, lambda: calls.append(1) or "v1")
            monkeypatch.setattr(
                "repro.runner.keys.code_version", lambda: "000000000000"
            )
            assert memoized("k", {"x": 1}, lambda: calls.append(1) or "v2") == "v2"
            assert len(calls) == 2


class TestSegmentedDigest:
    def _segmented(self, tmp_path, seed=0, segment_events=20):
        from repro.trace.segments import write_segmented
        from repro.workloads import get_workload

        trace = get_workload("pbzip2", threads=2, seed=seed).record().trace
        path = tmp_path / f"t{seed}-{segment_events}.seg.jsonl.gz"
        write_segmented(trace, path, segment_events=segment_events)
        return path

    def test_stable_and_content_sensitive(self, tmp_path):
        from repro.runner import segmented_digest

        other = tmp_path.joinpath("b")
        other.mkdir()
        a = self._segmented(tmp_path, seed=0)
        b = self._segmented(other, seed=0)
        c = self._segmented(tmp_path, seed=1)
        assert segmented_digest(a) == segmented_digest(b)
        assert segmented_digest(a) != segmented_digest(c)
        assert len(segmented_digest(a)) == 32

    def test_index_and_stream_paths_agree(self, tmp_path):
        from repro.runner import segmented_digest
        from repro.trace.segments import index_path

        path = self._segmented(tmp_path)
        fast = segmented_digest(path)
        index_path(path).unlink()
        assert segmented_digest(path) == fast

    def test_segmentation_changes_the_digest(self, tmp_path):
        from repro.runner import segmented_digest

        a = self._segmented(tmp_path, segment_events=20)
        b = self._segmented(tmp_path, segment_events=7)
        assert segmented_digest(a) != segmented_digest(b)

    def test_analyze_segments_cached_hit_is_equivalent(self, tmp_path):
        from repro.runner import analyze_segments_cached

        path = self._segmented(tmp_path)
        with use_cache(tmp_path / "cache"):
            cold = analyze_segments_cached(path)
            warm = analyze_segments_cached(path)
        assert [(p.c1.uid, p.c2.uid, p.kind) for p in warm.pairs] == [
            (p.c1.uid, p.c2.uid, p.kind) for p in cold.pairs
        ]
        assert warm.events == cold.events
        assert warm.breakdown.tlcp == cold.breakdown.tlcp
