"""Worker pool: ordering, job resolution, and parallel == serial output."""

from repro.runner import effective_jobs, parallel_map
from repro.runner import cache as cache_mod


def _square(task):
    return task * task


def _tag(task):
    import os

    return (task, os.getpid())


def _cache_root(_task):
    store = cache_mod.active()
    return str(store.root) if store is not None else None


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_preserves_order_parallel(self):
        tasks = list(range(20))
        assert parallel_map(_square, tasks, jobs=4) == [t * t for t in tasks]

    def test_parallel_matches_serial(self):
        tasks = list(range(12))
        assert parallel_map(_square, tasks, jobs=3) == parallel_map(
            _square, tasks, jobs=1
        )

    def test_empty_and_single(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]

    def test_workers_inherit_active_cache(self, tmp_path):
        with cache_mod.use_cache(tmp_path):
            roots = parallel_map(_cache_root, [0, 1], jobs=2)
        assert roots == [str(tmp_path), str(tmp_path)]

    def test_no_cache_propagated_when_disabled(self):
        with cache_mod.use_cache(None):
            assert parallel_map(_cache_root, [0, 1], jobs=2) == [None, None]


class TestEffectiveJobs:
    def test_explicit_value_kept(self):
        assert effective_jobs(3) == 3

    def test_zero_and_none_mean_cpu_count(self):
        import os

        expected = os.cpu_count() or 1
        assert effective_jobs(0) == expected
        assert effective_jobs(None) == expected


class TestExperimentDeterminism:
    def test_figure2_parallel_matches_serial(self):
        from repro.experiments import figure2

        serial = figure2.run(thread_counts=(2, 4), jobs=1).render()
        parallel = figure2.run(thread_counts=(2, 4), jobs=4).render()
        assert parallel == serial

    def test_table1_parallel_matches_serial_with_cache(self, tmp_path):
        from repro.experiments import table1

        serial = table1.run(scale=0.5, jobs=1).render()
        with cache_mod.use_cache(tmp_path):
            cold = table1.run(scale=0.5, jobs=4).render()
            warm = table1.run(scale=0.5, jobs=1).render()
        assert cold == serial
        assert warm == serial

    def test_replay_many_parallel_matches_serial(self):
        from repro.replay import ELSC_S, Replayer
        from repro.runner import record_cached

        trace = record_cached("pbzip2", threads=2, seed=0).trace
        replayer = Replayer(jitter=0.02)
        serial = replayer.replay_many(trace, scheme=ELSC_S, runs=4, jobs=1)
        parallel = replayer.replay_many(trace, scheme=ELSC_S, runs=4, jobs=2)
        assert [r.end_time for r in parallel.runs] == [
            r.end_time for r in serial.runs
        ]
        assert [r.seed for r in parallel.runs] == [r.seed for r in serial.runs]
