"""Operator interrupts flush state and surface as RunInterrupted."""

import pytest

from repro.errors import ReproError, RunInterrupted
from repro.runner import parallel_map
from repro.runner import cache as cache_mod
from repro.runner.journal import RunJournal, use_journal


_COUNT = {"n": 0}


def _interrupt_on_third(x):
    _COUNT["n"] += 1
    if _COUNT["n"] == 3:
        raise KeyboardInterrupt
    return x * 2


class TestSerialInterrupt:
    def test_interrupt_becomes_run_interrupted(self):
        _COUNT["n"] = 0
        with pytest.raises(RunInterrupted):
            parallel_map(_interrupt_on_third, [1, 2, 3, 4])

    def test_run_interrupted_is_a_repro_error(self):
        assert issubclass(RunInterrupted, ReproError)
        message = str(RunInterrupted(run_id="r9"))
        assert "repro resume r9" in message

    def test_interrupt_is_journaled_and_resumable(self, tmp_path):
        _COUNT["n"] = 0
        tasks = [1, 2, 3, 4]
        with cache_mod.use_cache(tmp_path / "cache"):
            store = cache_mod.active()
            journal = RunJournal.create(store.root, "r1", {})
            with pytest.raises(RunInterrupted) as excinfo:
                with journal, use_journal(journal):
                    parallel_map(_interrupt_on_third, tasks)
            assert "repro resume r1" in str(excinfo.value)
            loaded = RunJournal.load(store.root, "r1")
            # the interrupt landed in the ledger, after the completed work
            assert not loaded.is_complete()
            assert any(
                e.get("event") == "interrupted" for e in loaded.events
            )
            done = loaded.done_tasks()
            assert set(done) == {0, 1}
            # resuming skips the flushed prefix: the poisoned third call
            # never fires again because only tasks 2 and 3 re-run
            _COUNT["n"] = 100
            journal = RunJournal.attach(store.root, "r1")
            with journal, use_journal(journal):
                results = parallel_map(_interrupt_on_third, tasks)
        assert results == [2, 4, 6, 8]
