"""Property: resuming after any journal prefix equals the clean run.

The crash model: a run may be SIGKILLed after any whole number of
journal appends, possibly mid-append (leaving a torn final line).  For
every such prefix, attaching to the survived journal and re-running the
same fan-out must produce results identical to an uninterrupted run —
the journal may only change *how much work* the rerun does, never what
it returns.
"""

import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import ExecPolicy, parallel_map
from repro.runner import cache as cache_mod
from repro.runner.journal import RunJournal, journal_path, use_journal


def _cell(task):
    a, b = task
    return {"cell": a * 31 + b, "parts": [a, b]}


TASKS = [(i, (i * 5) % 7) for i in range(8)]
CLEAN = [_cell(t) for t in TASKS]


def _run_journaled(root: Path, run_id: str):
    with cache_mod.use_cache(root):
        store = cache_mod.active()
        if journal_path(store.root, run_id).exists():
            journal = RunJournal.attach(store.root, run_id)
        else:
            journal = RunJournal.create(store.root, run_id, {"p": 1})
        with journal, use_journal(journal):
            return parallel_map(_cell, TASKS, policy=ExecPolicy(retries=1))


class TestResumeEqualsClean:
    @settings(max_examples=25, deadline=None)
    @given(
        prefix_lines=st.integers(min_value=1, max_value=2 * len(TASKS) + 2),
        torn_bytes=st.integers(min_value=0, max_value=20),
    )
    def test_any_journal_prefix_resumes_identically(
        self, prefix_lines, torn_bytes
    ):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "cache"
            assert _run_journaled(root, "r") == CLEAN

            # simulate the kill: keep only a prefix of the ledger, and
            # optionally a torn fragment of the next line
            path = journal_path(root, "r")
            lines = path.read_bytes().splitlines(keepends=True)
            kept = b"".join(lines[:prefix_lines])
            if torn_bytes and prefix_lines < len(lines):
                kept += lines[prefix_lines][:torn_bytes]
            path.write_bytes(kept)

            assert _run_journaled(root, "r") == CLEAN

    @settings(max_examples=10, deadline=None)
    @given(missing=st.integers(min_value=0, max_value=len(TASKS)))
    def test_missing_blobs_only_cost_recompute(self, missing):
        """Journal says done, but the blob is gone: recompute, same result."""
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "cache"
            assert _run_journaled(root, "r") == CLEAN
            blobs = sorted((root / "blobs").rglob("*.pkl.gz"))
            for path in blobs[:missing]:
                path.unlink()
            assert _run_journaled(root, "r") == CLEAN


class TestCheckpointKillRegression:
    def test_kill_during_checkpoint_save_still_resumes(self, tmp_path):
        """Regression: a checkpoint torn by a kill mid-save must act like
        no checkpoint at all — silent cold start, identical answer."""
        from repro import api

        trace = api.record("transmissionBT", input_size="simsmall")
        from repro.trace.segments import write_segmented

        seg = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, seg, segment_events=32)
        clean = api.analyze(seg)

        # build a real checkpoint, then tear it the way SIGKILL would
        # (the atomic writer makes this impossible on the real path; the
        # torn file stands in for any damaged/stale checkpoint)
        from repro.api import _checkpointer_for

        ckpt = _checkpointer_for(seg, "kill-test", 2)
        ckpt.save({"garbage": True}, 2)
        data = ckpt.path.read_bytes()
        ckpt.path.write_bytes(data[: len(data) // 2])

        resumed = api.analyze(seg, resume="kill-test", checkpoint_every=2)
        assert resumed.breakdown == clean.breakdown
        assert len(resumed.pairs) == len(clean.pairs)

    def test_checkpoint_of_other_file_is_ignored(self, tmp_path):
        """A checkpoint tagged for a different trace must not be loaded."""
        from repro import api
        from repro.api import _checkpointer_for
        from repro.trace.segments import write_segmented

        trace_a = api.record("transmissionBT", input_size="simsmall")
        trace_b = api.record("transmissionBT", input_size="simsmall", seed=1)
        seg_a = tmp_path / "a.seg.jsonl.gz"
        seg_b = tmp_path / "b.seg.jsonl.gz"
        write_segmented(trace_a, seg_a, segment_events=32)
        write_segmented(trace_b, seg_b, segment_events=32)
        clean = api.analyze(seg_a)

        # plant b's checkpoint under the path a's run id resolves to
        ckpt_a = _checkpointer_for(seg_a, "xfile", 2)
        ckpt_b = _checkpointer_for(seg_b, "xfile", 2)
        ckpt_b.save({"from": "b"}, 2)
        ckpt_a.path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy2(ckpt_b.path, ckpt_a.path)

        resumed = api.analyze(seg_a, resume="xfile", checkpoint_every=2)
        assert resumed.breakdown == clean.breakdown
