"""Tests for the append-only run journal (repro.runner.journal)."""

import pytest

from repro.errors import ReproError
from repro.runner import journal as journal_mod
from repro.runner.journal import (
    RunJournal,
    journal_path,
    read_journal,
    result_digest,
    sanitize_run_id,
    task_key,
    use_journal,
)


def _square(x):
    return x * x


class TestBasics:
    def test_create_writes_header_with_spec(self, tmp_path):
        with RunJournal.create(tmp_path, "r1", {"name": "t"}) as journal:
            assert journal.run_id == "r1"
        header, events, skipped = read_journal(journal_path(tmp_path, "r1"))
        assert header["journal"] == 1
        assert header["spec"] == {"name": "t"}
        assert events == []
        assert skipped == 0

    def test_header_is_on_disk_before_create_returns(self, tmp_path):
        # found by the chaos soak: a SIGKILL right after create() must
        # leave an identifiable journal, so the header cannot ride the
        # torn-line append path — it is staged and os.replace'd whole
        journal = RunJournal.create(tmp_path, "r1", {"name": "t"})
        try:
            header, events, skipped = read_journal(journal_path(tmp_path, "r1"))
            assert header["run_id"] == "r1"
            assert events == [] and skipped == 0
        finally:
            journal.close()
        leftovers = [
            p.name for p in (tmp_path / "journal").iterdir()
            if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_first_append_crash_tears_an_event_not_the_header(
        self, tmp_path, monkeypatch
    ):
        from repro.chaos import points

        class Killed(BaseException):
            pass

        def _die():
            raise Killed

        monkeypatch.setattr(points, "kill_now", _die)
        points.arm("journal.append@1")
        try:
            journal = RunJournal.create(tmp_path, "r1", {"name": "t"})
            with pytest.raises(Killed):
                journal.task_start(0, "k0", 1)
            journal.close()
        finally:
            points.disarm()
        # the header survived whole; only the event line is torn, and
        # attach seals it so the run resumes
        resumed = RunJournal.attach(tmp_path, "r1")
        try:
            assert resumed.run_id == "r1"
            assert resumed.skipped_lines == 1
            assert resumed.done_tasks() == {}
        finally:
            resumed.close()

    def test_task_lifecycle_roundtrip(self, tmp_path):
        with RunJournal.create(tmp_path, "r1") as journal:
            journal.task_start(0, "k0", 1)
            journal.task_done(0, "k0", 1, "d0")
            journal.complete(1)
        loaded = RunJournal.load(tmp_path, "r1")
        assert loaded.done_tasks() == {0: ("k0", "d0")}
        assert loaded.is_complete()

    def test_attach_continues_an_interrupted_run(self, tmp_path):
        with RunJournal.create(tmp_path, "r1") as journal:
            journal.task_done(0, "k0", 1, "d0")
        with RunJournal.attach(tmp_path, "r1") as journal:
            assert journal.done_tasks() == {0: ("k0", "d0")}
            journal.task_done(1, "k1", 1, "d1")
        loaded = RunJournal.load(tmp_path, "r1")
        assert set(loaded.done_tasks()) == {0, 1}

    def test_attach_seals_a_torn_tail_line(self, tmp_path):
        with RunJournal.create(tmp_path, "r1") as journal:
            journal.task_done(0, "k0", 1, "d0")
        path = journal_path(tmp_path, "r1")
        with open(path, "ab") as handle:
            handle.write(b'{"event": "task_done", "index": 1, "ke')
        with RunJournal.attach(tmp_path, "r1") as journal:
            # the torn line is ignored, not fatal, and appending works
            assert journal.done_tasks() == {0: ("k0", "d0")}
            journal.task_done(2, "k2", 1, "d2")
        _header, _events, skipped = read_journal(path)
        assert skipped == 1
        assert 2 in RunJournal.load(tmp_path, "r1").done_tasks()

    def test_later_entries_win_per_index(self, tmp_path):
        with RunJournal.create(tmp_path, "r1") as journal:
            journal.task_done(0, "old", 1, "d-old")
            journal.task_done(0, "new", 2, "d-new")
        assert RunJournal.load(tmp_path, "r1").done_tasks() == {
            0: ("new", "d-new")
        }

    def test_run_id_sanitization(self):
        assert sanitize_run_id("ok-run.1_x") == "ok-run.1_x"
        for bad in ("", "a/b", "a b", "../x"):
            with pytest.raises(ReproError):
                sanitize_run_id(bad)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(ReproError):
            RunJournal.attach(tmp_path, "nope")

    def test_list_runs(self, tmp_path):
        assert journal_mod.list_runs(tmp_path) == []
        RunJournal.create(tmp_path, "b").close()
        RunJournal.create(tmp_path, "a").close()
        assert journal_mod.list_runs(tmp_path) == ["a", "b"]


class TestKeysAndDigests:
    def test_task_key_depends_on_fn_index_and_task(self):
        k = task_key(_square, 0, 3)
        assert k == task_key(_square, 0, 3)
        assert k != task_key(_square, 1, 3)
        assert k != task_key(_square, 0, 4)
        assert k != task_key(len, 0, 3)

    def test_result_digest_is_stable_and_discriminating(self):
        wrapped = ("repro.journal.result", [1, 2, 3])
        assert result_digest(wrapped) == result_digest(
            ("repro.journal.result", [1, 2, 3])
        )
        assert result_digest(wrapped) != result_digest(
            ("repro.journal.result", [1, 2, 4])
        )
        # None results are distinct from "no entry"
        assert result_digest(("repro.journal.result", None))


class TestAmbient:
    def test_use_journal_scopes_the_active_journal(self, tmp_path):
        assert journal_mod.active() is None
        with RunJournal.create(tmp_path, "r1") as journal:
            with use_journal(journal) as active:
                assert active is journal
                assert journal_mod.active() is journal
            assert journal_mod.active() is None


class TestPoolIntegration:
    def test_parallel_map_skips_journaled_tasks(self, tmp_path):
        from repro.runner import cache as cache_mod
        from repro.runner import parallel_map
        from repro.runner.pool import RUN_STATS

        tasks = list(range(6))
        with cache_mod.use_cache(tmp_path / "cache"):
            store = cache_mod.active()
            with RunJournal.create(store.root, "r1") as journal, \
                    use_journal(journal):
                first = parallel_map(_square, tasks)
            RUN_STATS.reset()
            with RunJournal.attach(store.root, "r1") as journal, \
                    use_journal(journal):
                second = parallel_map(_square, tasks)
        assert first == second == [x * x for x in tasks]
        assert RUN_STATS.skipped == len(tasks)

    def test_stale_blob_forces_recompute(self, tmp_path):
        from repro.runner import cache as cache_mod
        from repro.runner import parallel_map

        tasks = [2, 3]
        with cache_mod.use_cache(tmp_path / "cache"):
            store = cache_mod.active()
            with RunJournal.create(store.root, "r1") as journal, \
                    use_journal(journal):
                parallel_map(_square, tasks)
            # corrupt one journaled blob: its digest no longer matches,
            # so resume must recompute that task, not trust the ledger
            key = task_key(_square, 0, 2)
            store.put_blob(key, ("repro.journal.result", 999))
            with RunJournal.attach(store.root, "r1") as journal, \
                    use_journal(journal):
                results = parallel_map(_square, tasks)
        assert results == [4, 9]

    def test_no_cache_means_no_journaling(self, tmp_path):
        from repro.runner import parallel_map

        with RunJournal.create(tmp_path, "r1") as journal, \
                use_journal(journal):
            results = parallel_map(_square, [1, 2])
        assert results == [1, 4]
        # nothing was recorded: no cache to hold the result blobs
        assert RunJournal.load(tmp_path, "r1").done_tasks() == {}
