"""Tests for run budgets and graceful degradation (repro.runner.budget)."""

import pytest

from repro.errors import BudgetExceededError
from repro.runner import budget as budget_mod
from repro.runner.budget import RunBudget, peak_rss_mb, use_budget


def _slow_square(x):
    return x * x


class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunBudget(deadline=0)
        with pytest.raises(ValueError):
            RunBudget(max_rss_mb=-1)

    def test_unlimited_budget_never_exhausts(self):
        budget = RunBudget().start()
        assert budget.remaining() is None
        assert not budget.expired()
        assert budget.exhausted() is None
        budget.check()  # no raise

    def test_deadline_expiry(self):
        budget = RunBudget(deadline=1e-9).start()
        assert budget.expired()
        reason = budget.exhausted()
        assert reason is not None and "deadline" in reason
        with pytest.raises(BudgetExceededError):
            budget.check()

    def test_clamp_timeout(self):
        budget = RunBudget(deadline=100).start()
        assert budget.clamp_timeout(5) == 5
        clamped = budget.clamp_timeout(10_000)
        assert clamped is not None and clamped <= 100
        assert budget.clamp_timeout(None) is not None

    def test_peak_rss_is_measured(self):
        rss = peak_rss_mb()
        assert rss is not None and rss > 0
        # a watermark far above the process's real peak is not pressure
        assert not RunBudget(max_rss_mb=10**9).start().over_memory()
        # one far below it is
        assert RunBudget(max_rss_mb=0.001).start().over_memory()

    def test_use_budget_starts_and_scopes(self):
        assert budget_mod.active() is None
        budget = RunBudget(deadline=3600)
        with use_budget(budget) as active:
            assert active is budget
            assert budget_mod.active() is budget
            assert budget.elapsed() >= 0
        assert budget_mod.active() is None


class TestPoolDegradation:
    def test_expired_deadline_raises_without_partial(self):
        from repro.runner import parallel_map

        with use_budget(RunBudget(deadline=1e-9)):
            with pytest.raises(BudgetExceededError):
                parallel_map(_slow_square, [1, 2, 3])

    def test_expired_deadline_quarantines_under_partial(self):
        from repro.runner import ExecPolicy, TaskFailure, parallel_map
        from repro.runner.pool import RUN_STATS

        RUN_STATS.reset()
        with use_budget(RunBudget(deadline=1e-9)):
            results = parallel_map(
                _slow_square, [1, 2, 3], policy=ExecPolicy(partial=True)
            )
        assert len(results) == 3
        assert all(isinstance(r, TaskFailure) for r in results)
        assert all(r.kind == "budget" for r in results)
        assert RUN_STATS.budget_stopped == 3
        assert RUN_STATS.degraded()

    def test_expired_deadline_supervised_quarantines(self):
        from repro.runner import ExecPolicy, TaskFailure, parallel_map

        with use_budget(RunBudget(deadline=1e-9)):
            results = parallel_map(
                _slow_square, [1, 2, 3], jobs=2,
                policy=ExecPolicy(partial=True),
            )
        assert all(isinstance(r, TaskFailure) for r in results)
        assert all(r.kind == "budget" for r in results)

    def test_generous_budget_changes_nothing(self):
        from repro.runner import parallel_map

        plain = parallel_map(_slow_square, [1, 2, 3], jobs=2)
        with use_budget(RunBudget(deadline=3600, max_rss_mb=10**9)):
            budgeted = parallel_map(_slow_square, [1, 2, 3], jobs=2)
        assert plain == budgeted == [1, 4, 9]


class TestApiDegradation:
    def test_memory_pressure_degrades_full_load_to_streaming(self, tmp_path):
        from repro import api, telemetry
        from repro.telemetry import to_dict
        from repro.trace.segments import write_segmented

        trace = api.record("transmissionBT", input_size="simsmall")
        seg = tmp_path / "t.seg.jsonl.gz"
        write_segmented(trace, seg, segment_events=64)

        full = api.analyze(seg, stream=False)
        sink = telemetry.Telemetry()
        degraded = api.analyze(
            seg, stream=False,
            budget=RunBudget(max_rss_mb=0.001).start(),
            telemetry=sink,
        )
        counters = to_dict(sink, timings=False)["counters"]
        assert counters.get("analyze.degraded_to_stream") == 1
        assert degraded.breakdown == full.breakdown
        assert len(degraded.pairs) == len(full.pairs)

    def test_expired_budget_fails_fast_in_analyze(self):
        from repro import api

        trace = api.record("transmissionBT", input_size="simsmall")
        with pytest.raises(BudgetExceededError):
            api.analyze(trace, budget=RunBudget(deadline=1e-9).start())
