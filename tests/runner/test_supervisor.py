"""The supervised executor: retries, timeouts, crash replacement,
quarantine, and the determinism invariant those must not break."""

import pytest

from repro import faults
from repro.errors import TaskCrashError, TaskError, TaskTimeoutError
from repro.faults import FaultPlan, parse_rule
from repro.runner import ExecPolicy, TaskFailure, parallel_map


def _double(task):
    return task * 2


def _explode(task):
    if task == 2:
        raise ValueError(f"bad task {task}")
    return task * 2


def _plan(*specs, seed=0):
    return FaultPlan(seed=seed, rules=[parse_rule(s) for s in specs])


PARTIAL = ExecPolicy(retries=0, partial=True)


class TestErrorReporting:
    """Satellite (a): worker exceptions carry the task index and repr."""

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_worker_exception_wrapped_with_context(self, jobs):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(_explode, [0, 1, 2, 3], jobs=jobs)
        message = str(excinfo.value)
        assert "task 2" in message
        assert "bad task 2" in message
        failure = excinfo.value.failure
        assert failure.index == 2
        assert failure.task_repr == "2"

    def test_fail_fast_raises_promptly(self):
        # fail-fast must not wait for the remaining tasks to run
        with pytest.raises(TaskError):
            parallel_map(_explode, [2] + list(range(100)), jobs=2)

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_plain_error_is_not_retried(self, jobs):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(
                _explode, [0, 1, 2], jobs=jobs,
                policy=ExecPolicy(retries=3),
            )
        assert excinfo.value.failure.attempts == 1


class TestCrashRecovery:
    def test_injected_crash_retried_matches_clean_run(self):
        clean = parallel_map(_double, [0, 1, 2], jobs=2)
        with faults.use_plan(_plan("pool.worker_crash@1:attempt=0")):
            healed = parallel_map(
                _double, [0, 1, 2], jobs=2, policy=ExecPolicy(retries=2)
            )
        assert healed == clean

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_persistent_crash_quarantined_in_partial_mode(self, jobs):
        with faults.use_plan(_plan("pool.worker_crash@1:times=99")):
            out = parallel_map(
                _double, [0, 1, 2], jobs=jobs,
                policy=ExecPolicy(retries=1, partial=True),
            )
        assert out[0] == 0 and out[2] == 4
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1
        assert failure.kind == "crash"
        assert failure.attempts == 2  # initial + 1 retry

    def test_crash_raises_typed_error_in_fail_fast_mode(self):
        with faults.use_plan(_plan("pool.worker_crash@1")):
            with pytest.raises(TaskCrashError) as excinfo:
                parallel_map(_double, [0, 1, 2], jobs=2)
        assert excinfo.value.failure.index == 1

    def test_surviving_tasks_unaffected_by_neighbor_crash(self):
        with faults.use_plan(_plan("pool.worker_crash@0:times=99")):
            out = parallel_map(_double, list(range(8)), jobs=3, policy=PARTIAL)
        assert out[1:] == [t * 2 for t in range(1, 8)]


class TestTimeouts:
    def test_injected_hang_times_out(self):
        with faults.use_plan(_plan("pool.worker_hang@1")):
            out = parallel_map(
                _double, [0, 1, 2], jobs=2,
                policy=ExecPolicy(timeout=0.5, retries=0, partial=True),
            )
        assert out[0] == 0 and out[2] == 4
        assert isinstance(out[1], TaskFailure)
        assert out[1].kind == "timeout"

    def test_timeout_raises_typed_error_in_fail_fast_mode(self):
        with faults.use_plan(_plan("pool.worker_hang@0")):
            with pytest.raises(TaskTimeoutError):
                parallel_map(
                    _double, [0, 1], jobs=2,
                    policy=ExecPolicy(timeout=0.5),
                )

    def test_hung_task_retries_then_succeeds(self):
        with faults.use_plan(_plan("pool.worker_hang@1:attempt=0")):
            out = parallel_map(
                _double, [0, 1, 2], jobs=2,
                policy=ExecPolicy(timeout=0.5, retries=1),
            )
        assert out == [0, 2, 4]


class TestBackoff:
    def test_backoff_schedule_is_deterministic(self):
        policy = ExecPolicy(backoff_base=0.1, backoff_cap=0.5)
        delays = [policy.backoff_delay(a) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_failure_records_schedule_not_wall_clock(self):
        with faults.use_plan(_plan("pool.worker_crash@0:times=99")):
            out = parallel_map(
                _double, [0], jobs=1,
                policy=ExecPolicy(
                    retries=2, partial=True,
                    backoff_base=0.25, backoff_cap=10.0,
                ),
            )
        failure = out[0]
        assert failure.backoff == (0.25, 0.5)  # retry waits, not timings

    def test_serial_failure_record_matches_parallel_shape(self):
        def grab(jobs):
            plan = _plan("pool.worker_crash@0:times=99")
            with faults.use_plan(plan):
                return parallel_map(
                    _double, [0, 1], jobs=jobs,
                    policy=ExecPolicy(retries=1, partial=True),
                )[0]

        serial, parallel = grab(1), grab(2)
        assert (serial.index, serial.kind, serial.attempts, serial.backoff) == (
            parallel.index, parallel.kind, parallel.attempts, parallel.backoff
        )


class TestDeterminismRegression:
    """Satellite (f): retries/timeouts enabled, no faults -> identical."""

    def test_jobs_n_bit_identical_to_jobs_1_with_policy(self):
        from repro.experiments import table1

        policy = ExecPolicy(timeout=120.0, retries=2, partial=True)
        serial = table1.run(scale=0.4, jobs=1, policy=policy)
        parallel = table1.run(scale=0.4, jobs=4, policy=policy)
        baseline = table1.run(scale=0.4, jobs=1)
        assert serial.render() == baseline.render()
        assert parallel.render() == baseline.render()
        assert not serial.failures and not parallel.failures

    def test_partial_table_degrades_identically_serial_and_parallel(self):
        from repro.experiments import table1

        policy = ExecPolicy(retries=0, partial=True)

        def run(jobs):
            # fresh plan per run: hit counters are stateful
            with faults.use_plan(_plan("pool.worker_crash@2:times=99")):
                return table1.run(scale=0.4, jobs=jobs, policy=policy)

        serial, parallel = run(1), run(4)
        assert serial.render() == parallel.render()
        assert "n/a" in serial.render()
        assert list(serial.failures) == list(parallel.failures)
