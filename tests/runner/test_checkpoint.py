"""Tests for segment-granular checkpoints (repro.runner.checkpoint)."""

import gzip

import pytest

from repro.runner.checkpoint import Checkpointer


class TestCheckpointer:
    def test_roundtrip(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "c.ckpt.pkl.gz", tag="t1", every=4)
        ckpt.save({"x": [1, 2, 3]}, segments_done=8)
        loaded = Checkpointer(tmp_path / "c.ckpt.pkl.gz", tag="t1").load()
        assert loaded == ({"x": [1, 2, 3]}, 8)

    def test_missing_file_loads_none(self, tmp_path):
        assert Checkpointer(tmp_path / "nope", tag="t1").load() is None

    def test_due_cadence(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "c", tag="t1", every=3)
        assert [n for n in range(10) if ckpt.due(n)] == [3, 6, 9]
        ckpt.save({}, 3)
        # the cadence never re-saves the point it just saved
        assert not ckpt.due(3)
        assert ckpt.due(6)

    def test_bad_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path / "c", tag="t1", every=0)

    def test_tag_mismatch_loads_none(self, tmp_path):
        path = tmp_path / "c.ckpt.pkl.gz"
        Checkpointer(path, tag="digest-a:100").save({"x": 1}, 4)
        assert Checkpointer(path, tag="digest-b:200").load() is None

    def test_truncated_file_loads_none(self, tmp_path):
        path = tmp_path / "c.ckpt.pkl.gz"
        Checkpointer(path, tag="t1").save({"x": list(range(1000))}, 4)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert Checkpointer(path, tag="t1").load() is None

    def test_garbage_file_loads_none(self, tmp_path):
        path = tmp_path / "c.ckpt.pkl.gz"
        path.write_bytes(b"not a checkpoint at all")
        assert Checkpointer(path, tag="t1").load() is None

    def test_wrong_pickle_shape_loads_none(self, tmp_path):
        import pickle

        path = tmp_path / "c.ckpt.pkl.gz"
        with gzip.open(path, "wb") as handle:
            pickle.dump(["not", "a", "dict"], handle)
        assert Checkpointer(path, tag="t1").load() is None

    def test_clear_removes_the_file(self, tmp_path):
        path = tmp_path / "c.ckpt.pkl.gz"
        ckpt = Checkpointer(path, tag="t1")
        ckpt.save({}, 4)
        assert path.exists()
        ckpt.clear()
        assert not path.exists()
        ckpt.clear()  # idempotent

    def test_save_is_atomic_under_crash(self, tmp_path, monkeypatch):
        """A kill during save leaves the previous checkpoint intact."""
        from repro.chaos import points

        path = tmp_path / "c.ckpt.pkl.gz"
        ckpt = Checkpointer(path, tag="t1", every=1)
        ckpt.save({"gen": 1}, 1)

        class Killed(BaseException):
            pass

        def fake_kill():
            raise Killed

        monkeypatch.setattr(points, "kill_now", fake_kill)
        points.arm("checkpoint.save@1")
        try:
            with pytest.raises(Killed):
                ckpt.save({"gen": 2}, 2)
        finally:
            points.disarm()
        # the interrupted rewrite must not have torn the previous save
        assert Checkpointer(path, tag="t1").load() == ({"gen": 1}, 1)
