"""The load-test harness: in-process smoke run and report shape."""

import json

from repro.serve.loadtest import LoadTestReport, run_loadtest


class TestLoadTest:
    def test_in_process_run(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        report = run_loadtest(
            clients=8, requests_per_client=3, seed=1, out=out
        )
        assert isinstance(report, LoadTestReport)
        assert report.requests == 8 * 3
        assert report.transport_errors == 0
        assert report.error_envelopes == 0
        assert report.status_counts.keys() <= {"200", "202"}
        assert report.throughput_rps > 0
        assert "all" in report.latency_ms
        assert report.latency_ms["all"]["p99_ms"] >= \
            report.latency_ms["all"]["p50_ms"]
        # the dedup did its job: far fewer computations than requests
        assert 0 < report.server_jobs["computed"] < report.requests
        document = json.loads(out.read_text())
        assert document["seed"] == 1
        assert document["corpus"][0]["bytes"] > 0

    def test_in_process_run_streams_report(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        report = run_loadtest(
            clients=6, requests_per_client=6, seed=3, read_mix=0.2, out=out
        )
        # the watch op is part of the compute mix: some streams must
        # have run, and every one must end with the terminal frame
        assert report.streams["started"] > 0
        assert report.streams["dropped"] == 0
        assert report.streams["completed"] == report.streams["started"]
        document = json.loads(out.read_text())
        assert document["streams"] == report.streams

    def test_seeded_mix_is_reproducible(self):
        # same seed -> same op sequence -> same request count per class
        first = run_loadtest(clients=4, requests_per_client=3, seed=9)
        second = run_loadtest(clients=4, requests_per_client=3, seed=9)
        ops_first = {op: s["count"] for op, s in first.latency_ms.items()}
        ops_second = {op: s["count"] for op, s in second.latency_ms.items()}
        assert ops_first == ops_second
