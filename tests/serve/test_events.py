"""SSE job event streams: framing, terminal identity, watcher gauge."""

import http.client
import io
import json
import threading
import time

import pytest

from repro import api
from repro.observe.fold import fold_snapshots, snapshot_dumps
from repro.serve.jobs import Job, JobResult
from repro.serve.server import ReproServer
from repro.trace.segments import write_segmented


@pytest.fixture(scope="module")
def server():
    server = ReproServer(("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.close()
    thread.join(timeout=5)


@pytest.fixture()
def client(server):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=120)

    def request(method, path, body=None, content_type=None):
        headers = {"Content-Type": content_type} if content_type else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()

    yield request
    conn.close()


@pytest.fixture(scope="module")
def seg_upload(tmp_path_factory):
    """Segmented trace bytes: uploads take the streaming fold path, so
    the SSE stream carries one snapshot per segment plus the terminal."""
    trace = api.record("mixed-bag", threads=2, scale=1.0, seed=3)
    path = tmp_path_factory.mktemp("events") / "t.seg.jsonl.gz"
    write_segmented(trace, path, segment_events=64)
    return path, path.read_bytes()


def _sse_request(server, path):
    """One dedicated connection (the SSE response is Connection: close)."""
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def _frames(payload: bytes):
    """Parse ``(event, data)`` pairs; multi-line data joined with \\n."""
    frames = []
    for block in payload.decode("utf-8").split("\n\n"):
        if not block:
            continue
        lines = block.split("\n")
        assert lines[0].startswith("event: ")
        data = [line[len("data: "):] for line in lines[1:]]
        frames.append((lines[0][len("event: "):], "\n".join(data)))
    return frames


class TestEventStream:
    def test_stream_matches_fold_and_polled_result(self, server, client,
                                                   seg_upload):
        path, body = seg_upload
        status, headers, _ = client(
            "POST", "/v1/analyze?mode=async", body,
            "application/octet-stream",
        )
        assert status == 202
        job_id = headers["X-Repro-Job"]

        status, headers, payload = _sse_request(
            server, f"/v1/jobs/{job_id}/events"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/event-stream")
        assert headers["X-Repro-Job"] == job_id
        assert "Content-Length" not in headers

        frames = _frames(payload)
        assert frames[-1][0] == "result"
        snapshots = [f for f in frames[:-1] if f[0] == "snapshot"]
        assert len(snapshots) == len(frames) - 1

        # snapshot frames are exactly the canonical fold sequence
        expected = [snapshot_dumps(s).rstrip("\n")
                    for s in fold_snapshots(path)]
        assert [data for _, data in snapshots] == expected

        # terminal frame is byte-identical to the polled job result
        _, _, polled = client("GET", f"/v1/jobs/{job_id}")
        assert frames[-1][1].encode("utf-8") == polled

    def test_late_subscriber_replays_everything(self, server, client,
                                                seg_upload):
        path, body = seg_upload
        _, headers, _ = client(
            "POST", "/v1/analyze?mode=async", body,
            "application/octet-stream",
        )
        job_id = headers["X-Repro-Job"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, _, polled = client("GET", f"/v1/jobs/{job_id}")
            document = json.loads(polled)
            result = document.get("result")
            if not (isinstance(result, dict)
                    and result.get("state") == "running"):
                break
            time.sleep(0.02)
        first = _sse_request(server, f"/v1/jobs/{job_id}/events")[2]
        second = _sse_request(server, f"/v1/jobs/{job_id}/events")[2]
        assert first == second
        assert _frames(first)[-1][0] == "result"

    def test_unknown_job_is_404(self, server):
        status, _, _ = _sse_request(server, "/v1/jobs/nope-0000/events")
        assert status == 404

    def test_watcher_gauge_returns_to_zero(self, server, client, seg_upload):
        _, body = seg_upload
        _, headers, _ = client(
            "POST", "/v1/analyze?mode=async", body,
            "application/octet-stream",
        )
        _sse_request(server, f"/v1/jobs/{headers['X-Repro-Job']}/events")
        assert server.watchers == 0
        _, _, metrics = client("GET", "/metrics")
        text = metrics.decode("utf-8")
        assert "serve_watchers 0" in text
        assert "serve_requests_events" in text
        assert "analyze_segments_folded" in text


class TestJobProgressChannel:
    def test_publish_then_subscribe_replays(self):
        job = Job("analyze-x", "key", "analyze", "", 0)
        job.publish({"seq": 1})
        job.publish({"seq": 2})
        job.finish(JobResult(envelope={"ok": True}))
        assert list(job.events()) == [{"seq": 1}, {"seq": 2}]

    def test_live_follower_sees_later_publishes(self):
        job = Job("analyze-y", "key", "analyze", "", 0)
        seen = []

        def follow():
            for snap in job.events():
                seen.append(snap["seq"])

        follower = threading.Thread(target=follow)
        follower.start()
        for seq in (1, 2, 3):
            job.publish({"seq": seq})
            time.sleep(0.01)
        job.finish(JobResult(envelope={"ok": True}))
        follower.join(timeout=10)
        assert not follower.is_alive()
        assert seen == [1, 2, 3]

    def test_quiet_timeout_ends_the_stream(self):
        job = Job("analyze-z", "key", "analyze", "", 0)
        job.publish({"seq": 1})
        started = time.monotonic()
        assert list(job.events(timeout=0.05)) == [{"seq": 1}]
        assert time.monotonic() - started < 5
