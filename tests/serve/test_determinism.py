"""Server output must be byte-identical to local CLI output."""

import http.client
import threading

import pytest

from repro.cli import main
from repro.serve.server import ReproServer


@pytest.fixture()
def server():
    server = ReproServer(("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.close()
    thread.join(timeout=5)


def _post(server, path, body, content_type="application/octet-stream"):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        conn.request("POST", path, body=body,
                     headers={"Content-Type": content_type})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


@pytest.fixture()
def trace_file(tmp_path, capsys):
    path = str(tmp_path / "t.jsonl")
    assert main(["record", "mixed-bag", "-o", path, "--seed", "5"]) == 0
    capsys.readouterr()
    return path


class TestByteIdentity:
    def test_analyze(self, server, trace_file, capsys):
        assert main(["analyze", trace_file, "--format", "json"]) == 0
        local = capsys.readouterr().out
        status, body = _post(
            server, "/v1/analyze", open(trace_file, "rb").read()
        )
        assert status == 200
        assert body.decode("utf-8") == local

    def test_analyze_segmented_upload(self, server, trace_file, tmp_path,
                                      capsys):
        seg_file = str(tmp_path / "t.seg.jsonl")
        assert main(["convert", trace_file, seg_file,
                     "--segment-events", "64"]) == 0
        capsys.readouterr()
        assert main(["analyze", trace_file, "--format", "json"]) == 0
        local = capsys.readouterr().out
        # uploading the segmented container streams server-side, yet the
        # envelope bytes must match the monolithic local analysis
        status, body = _post(
            server, "/v1/analyze", open(seg_file, "rb").read()
        )
        assert status == 200
        assert body.decode("utf-8") == local

    def test_timeline(self, server, trace_file, capsys):
        assert main(["timeline", trace_file, "--format", "json"]) == 0
        local = capsys.readouterr().out
        status, body = _post(
            server, "/v1/timeline?format=json", open(trace_file, "rb").read()
        )
        assert status == 200
        assert body.decode("utf-8") == local
