"""The v1 wire contract: envelope shape, codes, golden bytes."""

import json
from pathlib import Path

from repro import api, errors
from repro.runner.pool import TaskFailure
from repro.serve import protocol

GOLDEN = Path(__file__).parent / "golden"


class TestEnvelope:
    def test_ok_shape(self):
        env = protocol.ok_envelope({"x": 1})
        assert env == {"v": 1, "ok": True, "result": {"x": 1}}

    def test_error_shape(self):
        env = protocol.error_envelope("trace.invalid", "boom")
        assert env == {
            "v": 1, "ok": False,
            "error": {"code": "trace.invalid", "message": "boom"},
        }

    def test_wire_dumps_canonical(self):
        text = protocol.wire_dumps({"b": 1, "a": 2})
        assert text == '{\n  "a": 2,\n  "b": 1\n}\n'

    def test_http_status(self):
        assert protocol.http_status(protocol.ok_envelope({})) == 200
        assert protocol.http_status(
            protocol.error_envelope("request.not_found", "x")) == 404
        assert protocol.http_status(
            protocol.error_envelope("trace.invalid", "x")) == 400
        assert protocol.http_status(
            protocol.error_envelope("task.timeout", "x")) == 504
        assert protocol.http_status(
            protocol.error_envelope("no.such.code", "x")) == 500


class TestErrorCodes:
    def test_every_repro_error_has_a_code(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, errors.ReproError):
                assert isinstance(obj.code, str) and "." in obj.code, name

    def test_codes_are_distinct_per_leaf(self):
        # subclasses may share a base's code only by inheriting it
        codes = {}
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, errors.ReproError) \
                    and "code" in vars(obj):
                assert obj.code not in codes, (name, codes[obj.code])
                codes[obj.code] = name

    def test_exception_mapping(self):
        env = protocol.envelope_from_exception(errors.TraceError("bad"))
        assert env["error"]["code"] == "trace.invalid"
        env = protocol.envelope_from_exception(RuntimeError("boom"))
        assert env["error"]["code"] == "serve.internal"

    def test_failure_mapping_recovers_repro_codes(self):
        failure = TaskFailure(
            index=0, task_repr="t", kind="error",
            message="TraceError: malformed trace line", attempts=1,
        )
        env = protocol.envelope_from_failure(failure)
        assert env["error"]["code"] == "trace.invalid"
        assert env["error"]["message"] == "malformed trace line"
        assert env["error"]["detail"]["attempts"] == 1

    def test_failure_mapping_by_kind(self):
        for kind, code in (
            ("crash", "task.crash"),
            ("timeout", "task.timeout"),
            ("fault", "fault.injected"),
            ("budget", "budget.exceeded"),
        ):
            failure = TaskFailure(index=0, task_repr="t", kind=kind,
                                  message="x", attempts=1)
            assert protocol.envelope_from_failure(failure)["error"]["code"] \
                == code


class TestGolden:
    """The exact bytes are the contract; regenerating goldens is a
    deliberate, reviewed act."""

    def test_analyze_envelope_bytes(self):
        trace = api.record("mixed-bag", threads=2, scale=1.0, seed=3)
        envelope = protocol.ok_envelope(
            protocol.analyze_result(api.analyze(trace))
        )
        assert protocol.wire_dumps(envelope) == \
            (GOLDEN / "analyze_envelope.json").read_text()

    def test_error_envelope_bytes(self):
        envelope = protocol.error_envelope(
            "trace.invalid", "malformed trace line: boom",
            detail={"kind": "error", "attempts": 1, "task": 0},
        )
        assert protocol.wire_dumps(envelope) == \
            (GOLDEN / "error_envelope.json").read_text()


class TestParseRequest:
    def test_defaults(self):
        parsed = protocol.parse_request("analyze", {})
        assert parsed == {"workload": None, "options": None,
                          "mode": "sync", "format": None}

    def test_unknown_field(self):
        try:
            protocol.parse_request("analyze", {"nope": 1})
        except errors.RequestError as exc:
            assert exc.code == "request.invalid"
        else:
            raise AssertionError("expected RequestError")

    def test_wrong_version(self):
        try:
            protocol.parse_request("analyze", {"v": 2})
        except errors.RequestError as exc:
            assert "wire version" in str(exc)
        else:
            raise AssertionError("expected RequestError")

    def test_timeline_format_default(self):
        parsed = protocol.parse_request("timeline", {})
        assert parsed["format"] == "json"
        parsed = protocol.parse_request("timeline", {"format": "chrome"})
        assert parsed["format"] == "chrome"

    def test_format_rejected_elsewhere(self):
        try:
            protocol.parse_request("analyze", {"format": "chrome"})
        except errors.RequestError:
            pass
        else:
            raise AssertionError("expected RequestError")

    def test_workload_spec_validation(self):
        try:
            protocol.parse_request(
                "analyze", {"workload": {"name": "x", "threads": "two"}}
            )
        except errors.RequestError as exc:
            assert "threads" in str(exc)
        else:
            raise AssertionError("expected RequestError")

    def test_envelope_is_json_serializable(self):
        env = protocol.error_envelope("a.b", "m", detail={"k": 1})
        assert json.loads(protocol.wire_dumps(env)) == env
