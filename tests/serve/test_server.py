"""The HTTP service end to end: routing, dedup, quarantine, metrics."""

import http.client
import io
import json
import threading
import time

import pytest

from repro import api
from repro.serve.jobs import JobManager, JobResult
from repro.serve.server import ReproServer
from repro.trace import serialize


def _trace_bytes(name="mixed-bag", threads=2, scale=1.0, seed=3) -> bytes:
    trace = api.record(name, threads=threads, scale=scale, seed=seed)
    out = io.StringIO()
    serialize.write_trace(trace, out)
    return out.getvalue().encode("utf-8")


@pytest.fixture(scope="module")
def server():
    server = ReproServer(("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.close()
    thread.join(timeout=5)


@pytest.fixture()
def client(server):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=120)

    def request(method, path, body=None, content_type=None, headers=None):
        merged = dict(headers or {})
        if content_type:
            merged["Content-Type"] = content_type
        conn.request(method, path, body=body, headers=merged)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()

    yield request
    conn.close()


TRACE = None


@pytest.fixture(scope="module")
def trace_bytes():
    global TRACE
    if TRACE is None:
        TRACE = _trace_bytes()
    return TRACE


class TestSync:
    def test_analyze_envelope(self, client, trace_bytes):
        status, headers, body = client(
            "POST", "/v1/analyze", trace_bytes, "application/octet-stream"
        )
        assert status == 200
        envelope = json.loads(body)
        assert envelope["v"] == 1 and envelope["ok"] is True
        assert envelope["result"]["pairs"] > 0
        assert headers["X-Repro-Job"].startswith("analyze-")

    def test_identical_upload_served_from_retained_job(self, client,
                                                       trace_bytes):
        _, first_headers, first = client(
            "POST", "/v1/analyze", trace_bytes, "application/octet-stream"
        )
        _, headers, body = client(
            "POST", "/v1/analyze", trace_bytes, "application/octet-stream"
        )
        assert headers["X-Repro-Dedup"] == "done"
        assert body == first
        assert headers["X-Repro-Job"] == first_headers["X-Repro-Job"]

    def test_workload_spec_matches_upload(self, client, trace_bytes):
        _, _, uploaded = client(
            "POST", "/v1/analyze", trace_bytes, "application/octet-stream"
        )
        spec = json.dumps({
            "workload": {"name": "mixed-bag", "threads": 2, "scale": 1.0,
                         "seed": 3},
        }).encode()
        status, _, body = client(
            "POST", "/v1/analyze", spec, "application/json"
        )
        assert status == 200
        assert json.loads(body) == json.loads(uploaded)

    def test_transform_returns_loadable_trace(self, client, trace_bytes,
                                              tmp_path):
        status, headers, body = client(
            "POST", "/v1/transform", trace_bytes, "application/octet-stream"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/x-repro-trace")
        path = tmp_path / "transformed.jsonl"
        path.write_bytes(body)
        transformed = serialize.load(path)
        assert len(transformed) > 0

    def test_timeline_formats(self, client, trace_bytes):
        status, _, body = client(
            "POST", "/v1/timeline?format=json", trace_bytes,
            "application/octet-stream",
        )
        assert status == 200
        assert json.loads(body)["version"] == 1
        status, _, body = client(
            "POST", "/v1/timeline?format=chrome", trace_bytes,
            "application/octet-stream",
        )
        assert status == 200
        assert "traceEvents" in json.loads(body)

    def test_options_change_the_key_and_result(self, client, trace_bytes):
        options = json.dumps({"benign_detection": False}, separators=(",", ":"))
        status, headers, body = client(
            "POST", f"/v1/analyze?options={options}", trace_bytes,
            "application/octet-stream",
        )
        assert status == 200
        envelope = json.loads(body)
        assert envelope["result"]["breakdown"]["benign"] == 0
        assert headers["X-Repro-Dedup"] in ("miss", "done")


class TestAsync:
    def test_poll_until_done_matches_sync(self, client, trace_bytes):
        _, _, sync_body = client(
            "POST", "/v1/analyze", trace_bytes, "application/octet-stream"
        )
        status, headers, body = client(
            "POST", "/v1/analyze?mode=async", trace_bytes,
            "application/octet-stream",
        )
        assert status == 202
        envelope = json.loads(body)
        assert envelope["ok"] is True
        job_id = envelope["result"]["job"]
        assert envelope["result"]["poll"] == f"/v1/jobs/{job_id}"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, _, body = client("GET", f"/v1/jobs/{job_id}")
            document = json.loads(body)
            result = document.get("result")
            if not (isinstance(result, dict)
                    and result.get("state") == "running"):
                break
            time.sleep(0.01)
        # a finished JSON-result job answers with the result envelope
        # itself, byte-identical to the synchronous response
        assert body == sync_body

    def test_unknown_job_is_404(self, client):
        status, _, body = client("GET", "/v1/jobs/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "request.not_found"

    def test_artifact_endpoint(self, client, trace_bytes):
        _, _, sync_blob = client(
            "POST", "/v1/transform", trace_bytes, "application/octet-stream"
        )
        status, headers, _ = client(
            "POST", "/v1/transform?mode=async", trace_bytes,
            "application/octet-stream",
        )
        assert status == 202
        job_id = headers["X-Repro-Job"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, _, body = client("GET", f"/v1/jobs/{job_id}")
            result = json.loads(body)["result"]
            if result.get("state") == "done":
                assert result["artifact"] == f"/v1/jobs/{job_id}/artifact"
                break
            time.sleep(0.01)
        status, _, blob = client("GET", f"/v1/jobs/{job_id}/artifact")
        assert status == 200
        assert blob == sync_blob


class TestConcurrentDedup:
    def test_identical_requests_compute_once(self):
        server = ReproServer(("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            body = _trace_bytes(seed=11)
            host, port = server.server_address[:2]
            results = []

            def submit():
                conn = http.client.HTTPConnection(host, port, timeout=120)
                try:
                    conn.request(
                        "POST", "/v1/analyze", body=body,
                        headers={"Content-Type": "application/octet-stream"},
                    )
                    response = conn.getresponse()
                    results.append(
                        (response.status,
                         dict(response.getheaders())["X-Repro-Dedup"],
                         response.read())
                    )
                finally:
                    conn.close()

            threads = [threading.Thread(target=submit) for _ in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 12
            assert all(status == 200 for status, _, _ in results)
            bodies = {payload for _, _, payload in results}
            assert len(bodies) == 1
            # the dedup counters prove a single computation happened
            assert server.manager.computed == 1
            assert sum(1 for _, dedup, _ in results if dedup == "miss") == 1
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5)


class TestQuarantine:
    def test_malformed_trace_is_structured_400(self, client):
        status, _, body = client(
            "POST", "/v1/analyze", b"definitely not a trace",
            "application/octet-stream",
        )
        assert status == 400
        envelope = json.loads(body)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "trace.invalid"
        assert envelope["error"]["detail"]["kind"] == "error"

    def test_unknown_workload_is_structured_400(self, client):
        spec = json.dumps({"workload": {"name": "no-such-thing"}}).encode()
        status, _, body = client(
            "POST", "/v1/analyze", spec, "application/json"
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "workload.invalid"

    def test_bad_options_rejected_before_compute(self, client, trace_bytes):
        status, _, body = client(
            "POST", '/v1/analyze?options={"bogus":1}', trace_bytes,
            "application/octet-stream",
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "options.invalid"

    def test_unknown_route(self, client):
        status, _, body = client("POST", "/v1/nope", b"{}", "application/json")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "request.not_found"

    def test_payload_too_large(self):
        server = ReproServer(("127.0.0.1", 0), max_body_mb=0.0001)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request(
                "POST", "/v1/analyze", body=b"x" * 4096,
                headers={"Content-Type": "application/octet-stream"},
            )
            response = conn.getresponse()
            assert response.status == 413
            assert json.loads(response.read())["error"]["code"] \
                == "request.too_large"
            conn.close()
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5)


class TestIntrospection:
    def test_health(self, client):
        status, _, body = client("GET", "/v1/health")
        assert status == 200
        result = json.loads(body)["result"]
        assert result["status"] == "ok"
        assert set(result["jobs"]) == {"running", "finished", "computed"}

    def test_metrics_scrape(self, client, trace_bytes):
        client("POST", "/v1/analyze", trace_bytes, "application/octet-stream")
        status, headers, body = client("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "serve_requests_analyze" in text.replace(".", "_")
        assert "serve_latency_ms_analyze" in text.replace(".", "_")

    def test_tenant_accounting(self, client, trace_bytes):
        client("POST", "/v1/analyze", trace_bytes,
               "application/octet-stream", {"X-Repro-Tenant": "team-a"})
        status, _, body = client("GET", "/v1/health")
        assert "team-a" in json.loads(body)["result"]["tenants"]


class TestJobManager:
    def test_inflight_dedup_shares_one_job(self):
        manager = JobManager(max_workers=2)
        release = threading.Event()

        def compute():
            release.wait(10)
            return JobResult(envelope={"v": 1, "ok": True, "result": {}})

        try:
            first, dedup_first = manager.submit("analyze", "k1", compute)
            assert dedup_first == "miss"
            second, dedup_second = manager.submit("analyze", "k1", compute)
            assert dedup_second == "inflight"
            assert second is first
            release.set()
            assert first.wait(10)
            third, dedup_third = manager.submit("analyze", "k1", compute)
            assert dedup_third == "done"
            assert third.result.ok
            assert manager.computed == 1
        finally:
            release.set()
            manager.shutdown()

    def test_finished_jobs_evicted_fifo(self):
        manager = JobManager(max_workers=2, keep=2)

        def compute():
            return JobResult(envelope={"v": 1, "ok": True, "result": {}})

        try:
            jobs = []
            for i in range(4):
                job, _ = manager.submit("analyze", f"key-{i}", compute)
                assert job.wait(10)
                jobs.append(job)
            assert manager.get(jobs[0].id) is None
            assert manager.get(jobs[3].id) is jobs[3]
            assert manager.stats()["finished"] == 2
        finally:
            manager.shutdown()

    def test_compute_crash_becomes_envelope(self):
        manager = JobManager(max_workers=1)

        def compute():
            raise ValueError("kaboom")

        try:
            job, _ = manager.submit("analyze", "crash-key", compute)
            assert job.wait(30)
            assert job.result.ok is False
            assert "kaboom" in job.result.envelope["error"]["message"]
        finally:
            manager.shutdown()
