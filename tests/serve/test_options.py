"""The typed options dataclasses and their wire/kwargs constructors."""

import warnings

import pytest

from repro import api
from repro.errors import OptionsError, ReproError
from repro.options import AnalyzeOptions, ReplayOptions, ReportOptions


class TestConstruction:
    def test_defaults(self):
        opts = AnalyzeOptions()
        assert opts.benign_detection is True
        assert opts.stream == "auto"
        assert opts.jobs == 1

    def test_from_kwargs_unknown_field_is_type_error(self):
        with pytest.raises(TypeError, match="bogus"):
            AnalyzeOptions.from_kwargs({"bogus": 1})

    def test_from_wire_unknown_field_is_options_error(self):
        with pytest.raises(OptionsError, match="bogus"):
            AnalyzeOptions.from_wire({"bogus": 1})

    def test_from_wire_bad_type(self):
        with pytest.raises(OptionsError, match="benign_detection"):
            AnalyzeOptions.from_wire({"benign_detection": "yes"})

    def test_from_wire_not_an_object(self):
        with pytest.raises(OptionsError):
            AnalyzeOptions.from_wire([1, 2])

    def test_replace(self):
        opts = ReplayOptions().replace(runs=3)
        assert opts.runs == 3
        assert opts.scheme == ReplayOptions().scheme

    def test_frozen(self):
        with pytest.raises(Exception):
            AnalyzeOptions().jobs = 4


class TestValidation:
    def test_bad_scheme_is_value_error_and_repro_error(self):
        # OptionsError subclasses both, preserving the facade's historic
        # ValueError contract while carrying a stable wire code
        with pytest.raises(ValueError):
            ReplayOptions.from_kwargs({"scheme": "TURBO-S"})
        with pytest.raises(ReproError) as excinfo:
            ReplayOptions.from_kwargs({"scheme": "TURBO-S"})
        assert excinfo.value.code == "options.invalid"

    def test_jobs_xor_resume(self):
        with pytest.raises(OptionsError):
            AnalyzeOptions(jobs=2, resume="r1").validate()

    def test_checkpoint_every_positive(self):
        with pytest.raises(OptionsError):
            AnalyzeOptions(checkpoint_every=0).validate()

    def test_bad_input_size(self):
        with pytest.raises(OptionsError):
            ReportOptions(input_size="huge").validate()


class TestWireRoundTrip:
    def test_to_wire_only_non_defaults(self):
        assert AnalyzeOptions().to_wire() == {}
        assert AnalyzeOptions(jobs=3).to_wire() == {"jobs": 3}

    def test_round_trip(self):
        opts = ReplayOptions(scheme="SYNC-S", runs=4, jitter=0.1)
        assert ReplayOptions.from_wire(opts.to_wire()) == opts


class TestFacadeShim:
    @pytest.fixture(scope="class")
    def trace(self):
        return api.record("tunable-contention", threads=2, scale=0.3, seed=0)

    def test_bare_kwargs_warn_and_match(self, trace):
        modern = api.analyze(trace, AnalyzeOptions(benign_detection=False))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = api.analyze(trace, benign_detection=False)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert legacy.breakdown == modern.breakdown

    def test_options_and_kwargs_conflict(self, trace):
        with pytest.raises(TypeError, match="both"):
            api.analyze(trace, AnalyzeOptions(), benign_detection=False)

    def test_report_legacy_workload_kwargs_fold(self):
        # unknown bare kwargs historically passed through to the workload
        # constructor; the shim folds them into workload_kwargs
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            html_text = api.report(
                "tunable-contention", threads=2, scale=0.3, utilization=0.6
            )
        assert "<html" in html_text
