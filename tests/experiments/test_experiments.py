"""Smoke tests for every experiment module (reduced scales).

The full-shape assertions live in ``benchmarks/``; these tests check the
modules run, produce well-formed results, and render.
"""

from repro.experiments import (
    ALL_EXPERIMENTS,
    ablations,
    figure2,
    figure13,
    figure14,
    figure15,
    figure16,
    figure19,
    table1,
    table2,
    table3,
)


class TestTable1:
    def test_runs_and_renders(self):
        result = table1.run(scale=0.5)
        assert len(result.rows_by_app) == 16
        text = result.render()
        assert "fluidanimate" in text
        assert "NL" in text

    def test_blackscholes_has_no_locks(self):
        result = table1.run(scale=0.5)
        assert result.rows_by_app["blackscholes"].locks == 0


class TestFigure2:
    def test_counts_grow(self):
        result = figure2.run(thread_counts=(2, 4), scale=0.5)
        for app, series in result.series.items():
            assert series[1] > series[0], app

    def test_render_contains_thread_headers(self):
        result = figure2.run(thread_counts=(2, 4), scale=0.5)
        assert "2t" in result.render()


class TestFigure13:
    def test_scheme_ordering(self):
        result = figure13.run(apps=("vips",), replays=3, scale=0.5)
        series = result.series["vips"]
        assert series["MEM-S"].mean > series["ELSC-S"].mean
        assert result.stability("vips", "ELSC-S") < 0.05

    def test_render(self):
        result = figure13.run(apps=("vips",), replays=2, scale=0.4)
        assert "ELSC-S" in result.render()


class TestFigure14:
    def test_zero_apps_zero(self):
        result = figure14.run(scale=0.5)
        assert result.rows_by_app["blackscholes"].degradation < 0.01
        assert 0.0 < result.average_degradation() < 0.2


class TestTable2:
    def test_grouped_counts(self):
        result = table2.run(scale=0.5)
        assert result.rows_by_app["blackscholes"].grouped_ulcps == 0
        assert result.rows_by_app["mysql"].grouped_ulcps > 0

    def test_p_in_unit_interval(self):
        result = table2.run(scale=0.5)
        for row in result.rows_by_app.values():
            assert 0.0 <= row.top_p <= 1.0


class TestTable3:
    def test_dls_not_worse(self):
        result = table3.run(apps=("fluidanimate", "dedup"), scale=0.5)
        for row in result.rows_by_app.values():
            assert row.with_dls <= row.without_dls + 0.005


class TestFigure15:
    def test_canneal_flat_zero(self):
        result = figure15.run(apps=("canneal",), thread_counts=(2, 4), scale=0.5)
        assert all(v < 0.01 for v in result.loss["canneal"])


class TestFigure16:
    def test_runs_over_sizes(self):
        result = figure16.run(apps=("bodytrack",), scale=0.5)
        assert len(result.loss["bodytrack"]) == 3


class TestFigure19:
    def test_bug_measurements(self):
        result = figure19.run(thread_counts=(2, 4), sizes=("simsmall", "simlarge"))
        bug2 = result.by_threads["bug2-pbzip2-join"]
        assert bug2[1].normalized_loss >= bug2[0].normalized_loss
        for series in result.by_size.values():
            assert series[0].normalized_loss >= series[-1].normalized_loss


class TestAblations:
    def test_runs(self):
        result = ablations.run(apps=("openldap",), replays=3)
        row = result.rows_by_app["openldap"]
        assert row.free_time_no_benign >= row.free_time_rule2


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "figure2", "figure13", "figure14", "table2",
            "table3", "figure15", "figure16", "figure19", "ablations",
            "contention_sweep", "stability",
        }
        for module in ALL_EXPERIMENTS.values():
            assert hasattr(module, "run")
            assert hasattr(module, "main")
