"""Tests for the experiment runner's formatting helpers."""

from repro.experiments.runner import bar_chart, format_table, percent


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[-1].endswith("22")

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.123" in text


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart([("a", 0.5), ("b", 1.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        text = bar_chart([("a", 0.0)], width=10)
        assert "#" not in text

    def test_empty(self):
        assert bar_chart([], title="nothing") == "nothing"

    def test_custom_formatter(self):
        text = bar_chart([("a", 3.0)], formatter=lambda v: f"{v:.0f}ns")
        assert "3ns" in text


class TestPercent:
    def test_rounding(self):
        assert percent(0.123) == "12.3%"
        assert percent(0) == "0.0%"
