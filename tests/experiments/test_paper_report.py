"""Tests for the one-shot report generator."""

import pytest

from repro.experiments import paper_report


class TestPaperReport:
    def test_generates_selected_sections(self):
        text = paper_report.generate(experiments=["table1", "figure2"])
        assert "## table1" in text
        assert "## figure2" in text
        assert "fluidanimate" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            paper_report.generate(experiments=["table99"])

    def test_write_creates_file(self, tmp_path):
        target = paper_report.write(
            tmp_path / "out" / "report.md", experiments=["table1"]
        )
        assert target.exists()
        assert "Table 1" in target.read_text()
