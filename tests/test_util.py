"""Tests for util: ids, rng derivation, statistics."""

import pytest

from repro.util import IdGenerator, Summary, derive_rng, derive_seed, summarize


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        ids = IdGenerator()
        assert [ids.next("e") for _ in range(3)] == ["e0", "e1", "e2"]
        assert ids.next("t") == "t0"
        assert ids.peek("e") == 3
        assert ids.peek("t") == 1

    def test_reset_one_prefix(self):
        ids = IdGenerator()
        ids.next("e")
        ids.next("t")
        ids.reset("e")
        assert ids.next("e") == "e0"
        assert ids.next("t") == "t1"

    def test_reset_all(self):
        ids = IdGenerator()
        ids.next("e")
        ids.next("t")
        ids.reset()
        assert ids.next("e") == "e0"
        assert ids.next("t") == "t0"


class TestRng:
    def test_derivation_is_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_labels_change_stream(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_base_seed_changes_stream(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_rng_reproducible(self):
        r1 = derive_rng(5, "x")
        r2 = derive_rng(5, "x")
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]


class TestSummary:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.mean == 2.5
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.spread == 3

    def test_single_value_zero_stdev(self):
        summary = summarize([7])
        assert summary.stdev == 0.0
        assert summary.cv == 0.0

    def test_cv_zero_mean(self):
        assert summarize([-1, 1]).cv == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
