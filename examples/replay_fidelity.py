#!/usr/bin/env python
"""Why ELSC? Replay the same trace under all four schemes.

Replays one contended trace ten times per scheme and prints the mean and
spread — demonstrating the paper's §5.2 argument: memory-order and
input-driven enforcement are stable but slow; no enforcement is fast but
unstable; ELSC's schedule-driven enforcement is both faithful and stable.

Run:  python examples/replay_fidelity.py
"""

from repro import Replayer
from repro.replay import ALL_SCHEMES
from repro.workloads import get_workload


def main():
    recorded = get_workload("vips", threads=8).record()
    print(f"recorded vips execution: {recorded.recorded_time} ns "
          f"({len(recorded.trace)} events)\n")
    replayer = Replayer(jitter=0.02)

    print("scheme  | mean replay | stdev | spread | vs recorded")
    print("--------+-------------+-------+--------+------------")
    for scheme in ALL_SCHEMES:
        series = replayer.replay_many(recorded.trace, scheme=scheme, runs=10)
        summary = series.summary()
        ratio = summary.mean / recorded.recorded_time
        print(
            f"{scheme:7} | {summary.mean:11.0f} | {summary.stdev:5.0f} | "
            f"{summary.spread:6.0f} | {ratio:10.3f}x"
        )

    print("\nELSC-S tracks the recorded time with the smallest spread:")
    print("that is the performance fidelity PERFPLAY's measurements rely on.")


if __name__ == "__main__":
    main()
