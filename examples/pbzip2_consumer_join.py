#!/usr/bin/env python
"""Case study: pbzip2's consumer shutdown checks (#BUG 2, Figure 18).

Every consumer repeatedly takes ``mu`` to read ``fifo.empty`` and nests
``muDone`` to read ``producerDone`` — pure read-read ULCPs with extra
nested-lock overhead that serialize the joins.  The paper's fix: the
producer *signals* completion and consumers just wait.

Run:  python examples/pbzip2_consumer_join.py
"""

from repro import PerfPlay
from repro.workloads import get_workload


def main():
    print("threads | original | signal/wait fix | speedup")
    print("--------+----------+-----------------+--------")
    for threads in (2, 4, 8):
        original = get_workload(
            "bug2-pbzip2-join", threads=threads
        ).record(num_cores=threads + 2)
        fixed = get_workload(
            "bug2-pbzip2-join", threads=threads, fixed=True
        ).record(num_cores=threads + 2)
        speedup = original.recorded_time / max(1, fixed.recorded_time)
        print(
            f"{threads:7} | {original.recorded_time:8} | "
            f"{fixed.recorded_time:15} | {speedup:6.3f}x"
        )

    print("\nPERFPLAY finds the nested read-read checks (8 threads):")
    trace = get_workload("bug2-pbzip2-join", threads=8).record(num_cores=10).trace
    report = PerfPlay().analyze(trace)
    print(report.render())


if __name__ == "__main__":
    main()
