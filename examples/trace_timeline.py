#!/usr/bin/env python
"""Visualize what the transformation buys: before/after timelines.

Records the openldap model, renders its per-thread activity lanes, then
renders the replayed ULCP-free execution of the same trace — the
spin-wait serialization visibly compresses.

Run:  python examples/trace_timeline.py
"""

from repro.analysis import transform
from repro.record import Recorder
from repro.replay import Replayer
from repro.trace import TraceBuilder
from repro.trace.render import render_timeline
from repro.workloads import get_workload


def main():
    workload = get_workload("openldap", threads=3)
    recorded = workload.record()
    print("original recording:")
    print(render_timeline(recorded.trace, width=76))

    result = transform(recorded.trace)
    free = Replayer(jitter=0.0).replay_transformed(result)
    original = Replayer(jitter=0.0).replay(recorded.trace)
    print(
        f"\noriginal replay: {original.end_time} ns; "
        f"ULCP-free replay: {free.end_time} ns "
        f"({(original.end_time - free.end_time) / original.end_time:.1%} faster)"
    )
    breakdown = result.analysis.breakdown
    print(
        f"removed {result.removed_sections} of {len(result.sections)} critical "
        f"sections (pairs: {breakdown.read_read} read-read, "
        f"{breakdown.disjoint_write} disjoint-write, {breakdown.null_lock} "
        f"null-lock, {breakdown.benign} benign)"
    )


if __name__ == "__main__":
    main()
