#!/usr/bin/env python
"""Writing your own workload model.

Subclass :class:`repro.workloads.Workload` (or the declarative
:class:`PatternMixWorkload`), emit request generators, and the whole
pipeline — recording, classification, transformation, replay,
recommendations, sensitivity sweeps — works on it unchanged.

The model here is a tiny web server: worker threads parse requests
(lock-free), consult a routing table read-only under a global lock (the
ULCP), and append to a shared access log (a true conflict).

Run:  python examples/custom_workload.py
"""

from repro import PerfPlay
from repro.perfdebug.sensitivity import sweep
from repro.sim import Acquire, Add, Compute, Opaque, Read, Release, Store, Write
from repro.trace import CodeSite
from repro.workloads import Workload, register


@register
class TinyWebServer(Workload):
    """A hand-written workload: route lookups under one hot lock."""

    name = "tiny-web-server"
    category = "synthetic"

    requests_per_worker = 6

    def _worker(self, k):
        rng = self.rng(f"worker{k}")
        parse = CodeSite("server.c", 40, "parse_request")
        route_lock = CodeSite("server.c", 55, "route")
        route_read = CodeSite("server.c", 56, "route")
        log_lock = CodeSite("server.c", 80, "log_access")
        for _ in range(self.rounds(self.requests_per_worker)):
            yield Compute(rng.randint(200, 500), site=parse)
            # read-only routing-table lookup under the global lock: ULCP
            yield Acquire(lock="routes", site=route_lock)
            yield Read("routing.table", site=route_read)
            yield Compute(250, site=CodeSite("server.c", 57, "route"))
            yield Release(lock="routes", site=CodeSite("server.c", 58, "route"))
            # the response itself: a bypassed library call (selective rec.)
            yield Opaque(duration=rng.randint(150, 300),
                         changes={}, site=CodeSite("server.c", 60, "respond"))
            # shared access log: a genuine conflict, the lock is earning
            # its keep here
            yield Acquire(lock="log", site=log_lock)
            yield Write("log.lines", op=Add(1), site=CodeSite("server.c", 81, "log_access"))
            yield Read("log.lines", site=CodeSite("server.c", 82, "log_access"))
            yield Release(lock="log", site=CodeSite("server.c", 83, "log_access"))

    def _config_loader(self):
        yield Write("routing.table", op=Store(1),
                    site=CodeSite("server.c", 10, "load_config"))

    def programs(self):
        programs = [(self._worker(k), f"www-{k}") for k in range(self.threads)]
        programs.append((self._config_loader(), "config"))
        return programs


def main():
    workload = TinyWebServer(threads=4)
    report = PerfPlay().analyze(workload.record().trace)
    print(report.render())

    print("\ncross-input robustness of the recommendations:")
    result = sweep("tiny-web-server", thread_counts=(2, 4),
                   input_sizes=("simsmall", "simlarge"))
    print(result.render())


if __name__ == "__main__":
    main()
