#!/usr/bin/env python
"""Quickstart: debug unnecessary lock contention in 30 lines.

Two worker threads repeatedly take the same lock just to *read* a shared
config — a classic read-read ULCP.  A third thread updates a counter
under its own lock for contrast.  PERFPLAY records the run, transforms
the trace, replays both versions, and tells you which code region to fix
first.

Run:  python examples/quickstart.py
"""

from repro import PerfPlay
from repro.sim import Acquire, Add, Compute, Read, Release, Store, Write
from repro.trace import CodeSite


def site(line, fn):
    return CodeSite("myapp.c", line, fn)


def config_reader(rounds=8):
    """Takes `cfg_lock` for read-only lookups: every pair is unnecessary."""
    for _ in range(rounds):
        yield Compute(400, site=site(10, "handle_request"))
        yield Acquire(lock="cfg_lock", site=site(12, "get_config"))
        yield Read("config.limits", site=site(13, "get_config"))
        yield Compute(350, site=site(14, "get_config"))
        yield Release(lock="cfg_lock", site=site(15, "get_config"))


def stats_updater(rounds=6):
    """Really conflicting counter updates: the lock is doing its job."""
    for i in range(rounds):
        yield Compute(500, site=site(30, "worker"))
        yield Acquire(lock="stats_lock", site=site(32, "bump_stats"))
        count = yield Read("stats.requests", site=site(33, "bump_stats"))
        yield Write("stats.requests", op=Store(count + 1), site=site(34, "bump_stats"))
        yield Release(lock="stats_lock", site=site(35, "bump_stats"))


def initializer():
    yield Write("config.limits", op=Store(100), site=site(1, "main"))


def main():
    perfplay = PerfPlay()
    report = perfplay.debug(
        [
            (initializer(), "init"),
            (config_reader(), "reader-0"),
            (config_reader(), "reader-1"),
            (stats_updater(), "stats-0"),
            (stats_updater(), "stats-1"),
        ],
        name="quickstart",
    )
    print(report.render())
    print()
    best = report.most_beneficial
    print(f"-> fix first: {best.where}  (would recover {best.p:.0%} of the "
          f"total ULCP opportunity)")
    print(f"-> whole-program speedup if all ULCPs removed: "
          f"{report.normalized_degradation:.1%}")


if __name__ == "__main__":
    main()
