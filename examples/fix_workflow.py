#!/usr/bin/env python
"""The full debugging workflow: diagnose → advise → apply → verify.

1. PERFPLAY finds and ranks the ULCPs in a recorded run,
2. the advisor names a source-level fix per category with measured gains,
3. the rewriter *applies* the winning fix to the trace (the same edit a
   programmer would make — here: a readers-writer lock), and
4. the fixed trace replays with real rwlock semantics to verify the win.

Run:  python examples/fix_workflow.py
"""

from repro import PerfPlay
from repro.perfdebug.advisor import advise
from repro.perfdebug.lockstats import profile_locks, render_lock_profiles
from repro.perfdebug.rewrite import try_fix
from repro.workloads import get_workload


def main():
    workload = get_workload("pbzip2", threads=4)
    recorded = workload.record()
    trace = recorded.trace

    print("step 1: diagnose")
    report = PerfPlay().analyze(trace)
    print(report.render())

    print("\nstep 2: where does the lock time go?")
    print(render_lock_profiles(profile_locks(trace), limit=5))

    print("\nstep 3: which fix pays off?")
    advice = advise(trace)
    print(advice.render())

    print("\nstep 4: apply the readers-writer rewrite to the hot lock "
          "and verify")
    hottest = profile_locks(trace)[0].lock
    outcome = try_fix(trace, hottest, "rwlock")
    print(outcome)
    if outcome.gain_ns > 0:
        print("the fix holds up under replay — worth sending the patch.")
    else:
        print("no win on this lock; try the next recommendation.")


if __name__ == "__main__":
    main()
