#!/usr/bin/env python
"""Case study: MySQL bug #68573 — the query-cache timeout that grows.

``Query_cache::try_lock`` holds ``structure_guard_mutex`` and loops on a
timed cond-wait.  The designed behaviour is "wait at most 50ms for the
cache lock, then run without the cache" — but when several SELECTs hit
the code at once, the post-timeout re-acquisitions serialize and every
null-lock wake stretches the effective timeout (§6.6, Figure 17).

This script records the pattern at increasing client counts and shows
how the tail past the nominal timeout grows, then lets PERFPLAY point
at the offending region.

Run:  python examples/mysql_query_cache.py
"""

from repro import PerfPlay
from repro.analysis import analyze_pairs
from repro.workloads import get_workload

TIMEOUT = 800  # the model's "50ms", in simulated ns


def main():
    print("clients | run time | tail past timeout | null-locks")
    print("--------+----------+-------------------+-----------")
    for clients in (2, 4, 8, 16):
        workload = get_workload("case9-querycache-timeout", threads=clients)
        recorded = workload.record()
        tail = recorded.recorded_time - TIMEOUT
        nl = analyze_pairs(recorded.trace).breakdown.null_lock
        print(f"{clients:7} | {recorded.recorded_time:8} | {tail:17} | {nl:9}")

    print()
    print("PERFPLAY's diagnosis at 8 clients:")
    workload = get_workload("case9-querycache-timeout", threads=8)
    report = PerfPlay().analyze(workload.record().trace)
    print(report.render())


if __name__ == "__main__":
    main()
