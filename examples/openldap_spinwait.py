#!/usr/bin/env python
"""Case study: openldap's spin-wait reference count (#BUG 1, Figure 4).

Worker threads repeatedly lock ``dbmp->mutex`` just to read
``dbmfp->ref``, burning CPU until the last holder releases the
reference.  The paper's fix replaces the poll loop with a barrier.

The script quantifies the bug with PERFPLAY (read-read ULCP pairs, CPU
waste) and then re-runs the *fixed* implementation to verify the gain —
mirroring §6.6's "re-implement and re-quantify" methodology.

Run:  python examples/openldap_spinwait.py
"""

from repro import PerfPlay
from repro.workloads import get_workload


def measure(fixed: bool, threads: int = 6):
    workload = get_workload(
        "bug1-openldap-spinwait", threads=threads, fixed=fixed
    )
    return workload.record(num_cores=threads + 2)


def main():
    original = measure(fixed=False)
    fixed = measure(fixed=True)

    print("variant  | run time | total CPU | spin waste")
    print("---------+----------+-----------+-----------")
    for label, rec in (("original", original), ("barrier", fixed)):
        mr = rec.machine_result
        print(
            f"{label:8} | {rec.recorded_time:8} | {mr.total_cpu_ns:9} | "
            f"{mr.total_spin_ns:10}"
        )

    saved_cpu = original.machine_result.total_cpu_ns - fixed.machine_result.total_cpu_ns
    print(f"\nbarrier fix saves {saved_cpu} ns of CPU "
          f"({saved_cpu / original.machine_result.total_cpu_ns:.1%} of the total)")

    print("\nPERFPLAY's view of the original:")
    report = PerfPlay().analyze(original.trace)
    print(report.render())


if __name__ == "__main__":
    main()
