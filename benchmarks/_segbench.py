"""Standalone streaming-scale benchmark: generate + analyze N events.

Run as a subprocess (its own address space) so ``ru_maxrss`` is an
honest high-water mark for the streaming pipeline alone::

    PYTHONPATH=src python benchmarks/_segbench.py [EVENTS] [DIR]

Builds a synthetic segmented trace of EVENTS events *without ever
holding the trace in memory* (the schedule is computed analytically, the
events are generated straight into :class:`SegmentedTraceWriter`), then
runs the full streaming ULCP analysis over the file.  Prints one JSON
object with throughput and the process's peak RSS; the companion
``test_segments.py`` asserts the memory bound and records the numbers in
``BENCH_segments.json``.

The workload shape: two threads of mostly COMPUTE events, one short
critical section per ~100 events per thread, alternating between a
disjoint-write lock (each thread touches its own field — the classic
ULCP) and a read-only lock.  Every pair settles via Algorithm 1 alone,
so the benchmark measures the scan, not the replay machinery.
"""

import json
import resource
import sys
import time
from pathlib import Path

from repro.trace.segments import SegmentedTraceWriter
from repro.trace.trace import TraceMeta

THREADS = ("t0", "t1")
SECTION_PERIOD = 100  # one critical section per this many events per thread
SEGMENT_EVENTS = 65536


def _complete(s: int, total_events: int) -> bool:
    """Does section ``s`` (events s*PERIOD .. s*PERIOD+2) fit entirely?"""
    return s * SECTION_PERIOD + 2 < total_events


def generate(path: Path, total_events: int) -> dict:
    """Stream ``total_events`` synthetic events into a segmented file."""
    # the acquisition order is fully determined by the generation loop,
    # so the lock schedule is computed analytically up front: section s
    # uses lock s%2, runs on thread (s//2)%2 (consecutive sections of a
    # lock come from different threads), and acquires at event s*PERIOD
    schedule = {"L_write": [], "L_read": []}
    s = 0
    while _complete(s, total_events):
        lock = "L_write" if s % 2 == 0 else "L_read"
        schedule[lock].append(f"e{s * SECTION_PERIOD}")
        s += 1

    writer = SegmentedTraceWriter(
        path,
        meta=TraceMeta(name="segbench", lock_cost=0, mem_cost=0),
        threads=list(THREADS),
        lock_schedule=schedule,
        segment_events=SEGMENT_EVENTS,
    )
    # one bulk block per run of same-shaped events (`add_block` is
    # byte-identical to per-event `add`): a complete section is a
    # 3-event lock block plus a block of computes, the incomplete tail
    # is computes only — event n keeps uid f"e{n}" and t = 10*n
    n0 = 0
    while n0 < total_events:
        s = n0 // SECTION_PERIOD
        count = min(SECTION_PERIOD, total_events - n0)
        thread_idx = (s // 2) % 2
        tid = THREADS[thread_idx]
        uids = [f"e{k}" for k in range(n0, n0 + count)]
        ts = list(range(n0 * 10, (n0 + count) * 10, 10))
        body = 0
        if _complete(s, total_events):
            lock = "L_write" if s % 2 == 0 else "L_read"
            if s % 2 == 0:
                # disjoint-write ULCP: each thread its own field
                mem = ("write", f"obj.f{thread_idx}", s)
            else:
                mem = ("read", "obj.shared", 0)
            writer.add_block(
                tid,
                uids=uids[:3],
                kinds=["acquire", mem[0], "release"],
                t=ts[:3],
                t_request=[ts[0], 0, 0],
                lock=[lock, "", lock],
                addr=["", mem[1], ""],
                value=[0, mem[2], 0],
            )
            body = 3
        if count > body:
            writer.add_block(tid, uids=uids[body:], kinds="compute",
                             t=ts[body:], duration=10)
        n0 += count
    index = writer.close()
    return {"segments": len(index.segments), "events": index.events}


def main() -> int:
    total_events = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000_000
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path(".")
    path = out_dir / "segbench.seg.jsonl.gz"

    t0 = time.perf_counter()
    written = generate(path, total_events)
    t1 = time.perf_counter()

    from repro.analysis.streaming import analyze_segments

    analysis = analyze_segments(path)
    t2 = time.perf_counter()

    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    analyze_seconds = t2 - t1
    print(json.dumps({
        "events": written["events"],
        "segments": written["segments"],
        "segment_events": SEGMENT_EVENTS,
        "file_bytes": path.stat().st_size,
        "sections": len(analysis.sections),
        "pairs": len(analysis.pairs),
        "ulcps": len(analysis.ulcps),
        "generate_seconds": round(t1 - t0, 3),
        "analyze_seconds": round(analyze_seconds, 3),
        "analyze_events_per_sec": round(written["events"] / analyze_seconds),
        "peak_rss_mb": round(rss_kb / 1024, 1),
    }, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
