"""Bench: regenerate Table 2 (grouped ULCP code regions + top P)."""

from repro.experiments import table2


def test_table2(once):
    result = once(table2.run)
    print()
    print(result.render())
    rows = result.rows_by_app

    # zero-ULCP apps have nothing to group
    assert rows["blackscholes"].grouped_ulcps == 0
    assert rows["swaptions"].grouped_ulcps == 0
    # mysql spreads ULCPs over the most regions, diluting the best one
    assert rows["mysql"].grouped_ulcps == max(
        r.grouped_ulcps for r in rows.values()
    )
    assert rows["mysql"].top_p < rows["pbzip2"].top_p
    # every non-empty app concentrates a meaningful share at the top
    for app, row in rows.items():
        if row.grouped_ulcps:
            assert 0.05 < row.top_p <= 1.0, app
            # P is a distribution: top share at least the uniform share
            assert row.top_p >= 1.0 / row.grouped_ulcps, app
