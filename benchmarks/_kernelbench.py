"""Per-backend kernel benchmark worker: one backend per process.

The kernel backend is chosen once at ``repro.kernels`` import, and the
scan/columnar memos would let a second backend in the same process reuse
the first one's work — so each measurement runs in a fresh subprocess::

    PYTHONPATH=src python benchmarks/_kernelbench.py generate VARIANT EVENTS PATH
    PYTHONPATH=src python benchmarks/_kernelbench.py run BACKEND PATH

``run`` loads the segmented file straight into its columnar form
(:func:`load_segmented_columnar` — untimed: both backends pay it
identically and it is the production load path for giant traces), then
times the full analyze+transform pipeline plus the timeline build, and
prints one JSON object with wall times, per-kernel timings and a SHA-256
digest of the serialized transformed trace and the columnar timeline
JSON.  The companion ``test_kernels.py`` asserts the digests match
across backends (byte-identical results) and gates the speedup ratio.

Workload variants (both two-thread, one short critical section per 100
events, built with the bulk ``add_block`` writer):

* ``ulcp`` — the ``_segbench`` shape: disjoint writes + shared reads,
  every pair settles via Algorithm 1 alone (pure scan/classify/rewrite).
* ``conflict`` — even sections write the *same* field, so every
  same-lock write pair classifies FALSE and goes through the
  reversed-replay benign test (exercises the evidence-collection and
  write-timeline kernels).
"""

import hashlib
import json
import os
import sys
import time
from pathlib import Path

THREADS = ("t0", "t1")
SECTION_PERIOD = 100
SEGMENT_EVENTS = 65536


def _complete(s: int, total_events: int) -> bool:
    return s * SECTION_PERIOD + 2 < total_events


def generate(path: Path, total_events: int, variant: str) -> dict:
    """Stream a synthetic workload into a segmented file (see module doc)."""
    from repro.trace.segments import SegmentedTraceWriter
    from repro.trace.trace import TraceMeta

    if variant not in ("ulcp", "conflict"):
        raise ValueError(f"unknown workload variant: {variant!r}")
    schedule = {"L_write": [], "L_read": []}
    s = 0
    while _complete(s, total_events):
        lock = "L_write" if s % 2 == 0 else "L_read"
        schedule[lock].append(f"e{s * SECTION_PERIOD}")
        s += 1

    writer = SegmentedTraceWriter(
        path,
        meta=TraceMeta(name=f"kernelbench-{variant}", lock_cost=0, mem_cost=0),
        threads=list(THREADS),
        lock_schedule=schedule,
        segment_events=SEGMENT_EVENTS,
    )
    n0 = 0
    while n0 < total_events:
        s = n0 // SECTION_PERIOD
        count = min(SECTION_PERIOD, total_events - n0)
        thread_idx = (s // 2) % 2
        tid = THREADS[thread_idx]
        uids = [f"e{k}" for k in range(n0, n0 + count)]
        ts = list(range(n0 * 10, (n0 + count) * 10, 10))
        body = 0
        if _complete(s, total_events):
            lock = "L_write" if s % 2 == 0 else "L_read"
            if s % 2 == 0:
                # "ulcp": each thread its own field (disjoint-write);
                # "conflict": both threads hammer one field, forcing the
                # pair through the reversed-replay benign test
                field = "obj.hot" if variant == "conflict" else \
                    f"obj.f{thread_idx}"
                mem = ("write", field, s)
            else:
                mem = ("read", "obj.shared", 0)
            writer.add_block(
                tid,
                uids=uids[:3],
                kinds=["acquire", mem[0], "release"],
                t=ts[:3],
                t_request=[ts[0], 0, 0],
                lock=[lock, "", lock],
                addr=["", mem[1], ""],
                value=[0, mem[2], 0],
                # the reversed-replay benign test re-executes write ops,
                # so writes carry their encoded Store (block index 1)
                op={1: ("store", mem[2])} if mem[0] == "write" else None,
            )
            body = 3
        if count > body:
            writer.add_block(tid, uids=uids[body:], kinds="compute",
                             t=ts[body:], duration=10)
        n0 += count
    index = writer.close()
    return {"segments": len(index.segments), "events": index.events}


def run(backend: str, path: str) -> dict:
    """Time analyze+transform+timeline under one backend; digest the output."""
    if backend == "python":
        os.environ["REPRO_NO_NUMPY"] = "1"
    elif backend == "numpy":
        import numpy as np

        # first-call import costs (numpy.ma inside np.unique) would
        # otherwise land inside the timed region
        np.unique(np.arange(4))
    else:
        raise ValueError(f"unknown backend: {backend!r}")

    from repro import kernels
    from repro.analysis.pairs import analyze_pairs
    from repro.analysis.transform import transform
    from repro.timeline.build import build_timeline
    from repro.timeline.export import to_columnar_json
    from repro.trace import serialize
    from repro.trace.segments import load_segmented_columnar

    core = load_segmented_columnar(path)

    t0 = time.perf_counter()
    analysis = analyze_pairs(core, benign_detection=True)
    t1 = time.perf_counter()
    result = transform(core, analysis=analysis)
    t2 = time.perf_counter()
    timeline = build_timeline(core, analysis=analysis)
    t3 = time.perf_counter()

    timeline_json = to_columnar_json(timeline)
    digest = hashlib.sha256()
    digest.update(serialize.dumps(result.trace).encode("utf-8"))
    digest.update(timeline_json.encode("utf-8"))
    return {
        "backend": kernels.backend(),
        "events": len(core),
        "sections": len(analysis.sections),
        "pairs": len(analysis.pairs),
        "ulcps": len(analysis.ulcps),
        "analyze_seconds": round(t1 - t0, 3),
        "transform_seconds": round(t2 - t1, 3),
        "timeline_seconds": round(t3 - t2, 3),
        "analyze_transform_seconds": round(t2 - t0, 3),
        "kernels": {
            name: round(entry["seconds"], 3)
            for name, entry in sorted(kernels.timings().items())
        },
        "digest": digest.hexdigest(),
    }


def main(argv) -> int:
    mode = argv[1]
    if mode == "generate":
        variant, events, path = argv[2], int(argv[3]), Path(argv[4])
        print(json.dumps(generate(path, events, variant), sort_keys=True))
    elif mode == "run":
        backend, path = argv[2], argv[3]
        print(json.dumps(run(backend, path), sort_keys=True))
    else:
        print(f"unknown mode: {mode!r}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
