"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures, prints
the reproduced rows (visible with ``pytest benchmarks/ --benchmark-only -s``)
and asserts the paper's *shape* claims: who wins, what is zero, which
trends hold.  Absolute numbers are simulator time and differ from the
paper's wall-clock — see EXPERIMENTS.md for the side-by-side reading.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
