"""Bench: design-choice ablations (ELSC, RULE 2, benign detection, LE)."""

from repro.experiments import ablations


def test_ablations(once):
    result = once(ablations.run)
    print()
    print(result.render())

    for app, row in result.rows_by_app.items():
        # dropping the reversed-replay benign pass keeps edges the
        # transformation would have removed: never faster, usually slower
        assert row.free_time_no_benign >= row.free_time_rule2, app
        # RULE 2 adds ordering constraints: with it the ULCP-free replay
        # cannot be faster than without it
        assert row.free_time_rule2 >= row.free_time_no_rule2, app
        # the ULCP-free trace beats (or at worst matches, within the DLS
        # bookkeeping overhead Table 3 quantifies) the original execution
        assert row.free_time_rule2 <= row.elsc_time * 1.05, app
        # lock elision also beats the original but pays abort penalties
        # that PERFPLAY's static fix does not
        assert row.elision_time >= row.free_time_rule2, app
