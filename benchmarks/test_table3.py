"""Bench: regenerate Table 3 (lockset overhead with/without DLS)."""

from repro.experiments import table3


def test_table3(once):
    result = once(table3.run)
    print()
    print(result.render())

    for app, row in result.rows_by_app.items():
        # the dynamic locking strategy never makes things materially worse
        # (apps with one-entry locksets sit inside measurement noise)
        assert row.with_dls <= row.without_dls + 0.003, app
    # overall the overhead stays below the paper's 4.3% DLS ceiling
    assert result.max_with_dls() < 0.043 + 0.02
    # at least one lock-intensive app shows measurable w/o-DLS overhead
    assert any(r.without_dls > 0.005 for r in result.rows_by_app.values())
