"""Bench: throughput of the tool itself (record / analyze / replay).

The paper argues replay-based *performance* analysis is practical
(selective recording, <4.3% lockset overhead).  These benchmarks measure
our pipeline's throughput on the largest workload model (fluidanimate)
so regressions in the analysis algorithms show up as timing regressions.
Unlike the table/figure benches these use real multi-round benchmarking.
"""

import pytest

from repro.analysis import analyze_pairs, transform
from repro.replay import ELSC_S, Replayer
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fluid_trace():
    return get_workload("fluidanimate", threads=2).record().trace


@pytest.fixture(scope="module")
def fluid_transform(fluid_trace):
    return transform(fluid_trace)


def test_recording_throughput(benchmark):
    workload = get_workload("fluidanimate", threads=2)

    def record_once():
        return workload.record()

    result = benchmark.pedantic(record_once, rounds=3, iterations=1)
    events = len(result.trace)
    assert events > 1000
    print(f"\nrecorded {events} events")


def test_pair_analysis_throughput(benchmark, fluid_trace):
    result = benchmark.pedantic(
        analyze_pairs, args=(fluid_trace,), rounds=3, iterations=1
    )
    assert result.breakdown.total_ulcps > 0


def test_transformation_throughput(benchmark, fluid_trace):
    result = benchmark.pedantic(
        transform, args=(fluid_trace,), rounds=3, iterations=1
    )
    assert len(result.sections) > 100


def test_elsc_replay_throughput(benchmark, fluid_trace):
    replayer = Replayer(jitter=0.0)

    def replay_once():
        return replayer.replay(fluid_trace, scheme=ELSC_S)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.end_time > 0


def test_transformed_replay_throughput(benchmark, fluid_transform):
    replayer = Replayer(jitter=0.0)

    def replay_once():
        return replayer.replay_transformed(fluid_transform)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.end_time > 0


def test_telemetry_overhead(fluid_trace):
    """Acceptance: telemetry-off overhead <2%; enabled-vs-off <5% (CI).

    With no sink configured every instrumentation point is one module
    attribute load plus an ``is None`` test (``span()`` additionally
    returns a shared no-op object).  The disabled-path overhead is
    estimated directly: count the instrumentation calls one pipeline run
    makes, microbench the per-call null-backend cost, and hold the
    product under 2% of the pipeline's wall time.  The enabled-vs-off
    ratio (the bench-smoke CI gate) must stay under 5% — min-of-rounds
    on both sides to shave scheduler noise.
    """
    import time

    from repro import telemetry

    replayer = Replayer(jitter=0.0)

    def pipeline_once():
        fluid_trace._scan = None  # defeat the analysis memo between rounds
        analysis = analyze_pairs(fluid_trace)
        result = transform(fluid_trace, analysis=analysis)
        return replayer.replay_transformed(result)

    def time_once():
        started = time.perf_counter()
        pipeline_once()
        return time.perf_counter() - started

    class CountingSink(telemetry.Telemetry):
        """Counts every instrumentation call the pipeline makes."""

        ops = 0

        def count(self, name, n=1):
            CountingSink.ops += 1
            super().count(name, n)

        def gauge(self, name, value):
            CountingSink.ops += 1
            super().gauge(name, value)

        def observe(self, name, value):
            CountingSink.ops += 1
            super().observe(name, value)

        def span(self, name, **labels):
            CountingSink.ops += 2  # enter + exit
            return super().span(name, **labels)

    pipeline_once()  # warm up
    pipeline_once()
    assert not telemetry.enabled()
    off_times, on_times = [], []
    for _ in range(10):  # interleaved so drift hits both sides equally
        off_times.append(time_once())
        with telemetry.use_telemetry(telemetry.Telemetry()):
            on_times.append(time_once())
    disabled, enabled = min(off_times), min(on_times)
    with telemetry.use_telemetry(CountingSink()):
        pipeline_once()
    calls = CountingSink.ops

    # per-call cost of the null backend
    reps = 100_000
    started = time.perf_counter()
    for _ in range(reps):
        telemetry.count("bench.noop")
    per_call = (time.perf_counter() - started) / reps
    assert not telemetry.enabled()  # the loop above really was the null path

    off_overhead = calls * per_call / disabled
    on_overhead = enabled / disabled - 1.0
    print(f"\ntelemetry off: {disabled * 1000:.2f} ms  "
          f"on: {enabled * 1000:.2f} ms  "
          f"~{calls} instrumented calls @ {per_call * 1e9:.0f} ns disabled  "
          f"off-overhead: {off_overhead * 100:.3f}%  "
          f"on-overhead: {on_overhead * 100:.1f}%")
    assert off_overhead < 0.02, (
        f"null-backend overhead {off_overhead * 100:.2f}% exceeds 2%"
    )
    assert on_overhead < 0.05, (
        f"telemetry-enabled overhead {on_overhead * 100:.1f}% exceeds 5%"
    )


def test_timeline_build_overhead():
    """Acceptance: a timeline build costs <10% of the pipeline it renders.

    The timeline layer promises to stay O(events) over the interned
    columnar core; this pins that promise as a timing ratio against the
    pipeline `repro report` runs before rendering — record, analyze,
    transform, and both replays — on the largest workload model.
    Min-of-rounds on both sides to shave scheduler noise.
    """
    import time

    from repro.timeline import build_timeline

    workload = get_workload("fluidanimate", threads=2)
    replayer = Replayer(jitter=0.0)

    def pipeline_once():
        trace = workload.record().trace
        analysis = analyze_pairs(trace)
        result = transform(trace, analysis=analysis)
        replayer.replay(trace, scheme=ELSC_S)
        replayer.replay_transformed(result)
        return trace, analysis

    trace, analysis = pipeline_once()  # warm up both code paths
    build_timeline(trace, analysis=analysis)
    pipeline_times, build_times = [], []
    for _ in range(5):
        started = time.perf_counter()
        trace, analysis = pipeline_once()
        pipeline_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        timeline = build_timeline(trace, analysis=analysis)
        build_times.append(time.perf_counter() - started)
    pipeline_s, build_s = min(pipeline_times), min(build_times)
    assert len(timeline) > 0
    ratio = build_s / pipeline_s
    print(f"\npipeline: {pipeline_s * 1000:.1f} ms  "
          f"timeline build: {build_s * 1000:.2f} ms  "
          f"ratio: {ratio * 100:.1f}%")
    assert ratio < 0.10, (
        f"timeline build took {ratio * 100:.1f}% of pipeline wall time "
        f"(gate: 10%)"
    )


def test_parallel_cached_suite_speedup(tmp_path):
    """Acceptance: jobs=4 + warm cache beats serial uncached by >=2x.

    Runs a multi-cell experiment suite (table1 + figure14) three ways:
    serial with no cache, jobs=4 against an empty cache (populating it),
    and again with the cache warm.  The warm run must render bit-for-bit
    identical output at >=2x the serial wall-clock.  Plain perf_counter
    timing — the contrast is way above scheduler noise.
    """
    import time

    from repro.experiments import figure14, table1
    from repro.runner import use_cache

    def suite(jobs):
        return table1.run(jobs=jobs).render() + "\n" + figure14.run(jobs=jobs).render()

    with use_cache(None):
        started = time.perf_counter()
        serial = suite(jobs=1)
        serial_s = time.perf_counter() - started

    with use_cache(tmp_path / "cache"):
        started = time.perf_counter()
        cold = suite(jobs=4)
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = suite(jobs=4)
        warm_s = time.perf_counter() - started

    print(
        f"\nserial uncached: {serial_s:.2f}s  "
        f"jobs=4 cold: {cold_s:.2f}s  jobs=4 warm: {warm_s:.2f}s  "
        f"speedup: {serial_s / warm_s:.1f}x"
    )
    assert cold == serial, "parallel run must render identically to serial"
    assert warm == serial, "cached run must render identically to serial"
    assert serial_s >= 2 * warm_s, (
        f"expected >=2x speedup, got {serial_s / warm_s:.2f}x "
        f"({serial_s:.2f}s serial vs {warm_s:.2f}s warm)"
    )
