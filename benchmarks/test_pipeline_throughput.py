"""Bench: throughput of the tool itself (record / analyze / replay).

The paper argues replay-based *performance* analysis is practical
(selective recording, <4.3% lockset overhead).  These benchmarks measure
our pipeline's throughput on the largest workload model (fluidanimate)
so regressions in the analysis algorithms show up as timing regressions.
Unlike the table/figure benches these use real multi-round benchmarking.
"""

import pytest

from repro.analysis import analyze_pairs, transform
from repro.replay import ELSC_S, Replayer
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fluid_trace():
    return get_workload("fluidanimate", threads=2).record().trace


@pytest.fixture(scope="module")
def fluid_transform(fluid_trace):
    return transform(fluid_trace)


def test_recording_throughput(benchmark):
    workload = get_workload("fluidanimate", threads=2)

    def record_once():
        return workload.record()

    result = benchmark.pedantic(record_once, rounds=3, iterations=1)
    events = len(result.trace)
    assert events > 1000
    print(f"\nrecorded {events} events")


def test_pair_analysis_throughput(benchmark, fluid_trace):
    result = benchmark.pedantic(
        analyze_pairs, args=(fluid_trace,), rounds=3, iterations=1
    )
    assert result.breakdown.total_ulcps > 0


def test_transformation_throughput(benchmark, fluid_trace):
    result = benchmark.pedantic(
        transform, args=(fluid_trace,), rounds=3, iterations=1
    )
    assert len(result.sections) > 100


def test_elsc_replay_throughput(benchmark, fluid_trace):
    replayer = Replayer(jitter=0.0)

    def replay_once():
        return replayer.replay(fluid_trace, scheme=ELSC_S)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.end_time > 0


def test_transformed_replay_throughput(benchmark, fluid_transform):
    replayer = Replayer(jitter=0.0)

    def replay_once():
        return replayer.replay_transformed(fluid_transform)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.end_time > 0


def test_parallel_cached_suite_speedup(tmp_path):
    """Acceptance: jobs=4 + warm cache beats serial uncached by >=2x.

    Runs a multi-cell experiment suite (table1 + figure14) three ways:
    serial with no cache, jobs=4 against an empty cache (populating it),
    and again with the cache warm.  The warm run must render bit-for-bit
    identical output at >=2x the serial wall-clock.  Plain perf_counter
    timing — the contrast is way above scheduler noise.
    """
    import time

    from repro.experiments import figure14, table1
    from repro.runner import use_cache

    def suite(jobs):
        return table1.run(jobs=jobs).render() + "\n" + figure14.run(jobs=jobs).render()

    with use_cache(None):
        started = time.perf_counter()
        serial = suite(jobs=1)
        serial_s = time.perf_counter() - started

    with use_cache(tmp_path / "cache"):
        started = time.perf_counter()
        cold = suite(jobs=4)
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = suite(jobs=4)
        warm_s = time.perf_counter() - started

    print(
        f"\nserial uncached: {serial_s:.2f}s  "
        f"jobs=4 cold: {cold_s:.2f}s  jobs=4 warm: {warm_s:.2f}s  "
        f"speedup: {serial_s / warm_s:.1f}x"
    )
    assert cold == serial, "parallel run must render identically to serial"
    assert warm == serial, "cached run must render identically to serial"
    assert serial_s >= 2 * warm_s, (
        f"expected >=2x speedup, got {serial_s / warm_s:.2f}x "
        f"({serial_s:.2f}s serial vs {warm_s:.2f}s warm)"
    )
