"""Bench: throughput of the tool itself (record / analyze / replay).

The paper argues replay-based *performance* analysis is practical
(selective recording, <4.3% lockset overhead).  These benchmarks measure
our pipeline's throughput on the largest workload model (fluidanimate)
so regressions in the analysis algorithms show up as timing regressions.
Unlike the table/figure benches these use real multi-round benchmarking.
"""

import pytest

from repro.analysis import analyze_pairs, transform
from repro.replay import ELSC_S, Replayer
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fluid_trace():
    return get_workload("fluidanimate", threads=2).record().trace


@pytest.fixture(scope="module")
def fluid_transform(fluid_trace):
    return transform(fluid_trace)


def test_recording_throughput(benchmark):
    workload = get_workload("fluidanimate", threads=2)

    def record_once():
        return workload.record()

    result = benchmark.pedantic(record_once, rounds=3, iterations=1)
    events = len(result.trace)
    assert events > 1000
    print(f"\nrecorded {events} events")


def test_pair_analysis_throughput(benchmark, fluid_trace):
    result = benchmark.pedantic(
        analyze_pairs, args=(fluid_trace,), rounds=3, iterations=1
    )
    assert result.breakdown.total_ulcps > 0


def test_transformation_throughput(benchmark, fluid_trace):
    result = benchmark.pedantic(
        transform, args=(fluid_trace,), rounds=3, iterations=1
    )
    assert len(result.sections) > 100


def test_elsc_replay_throughput(benchmark, fluid_trace):
    replayer = Replayer(jitter=0.0)

    def replay_once():
        return replayer.replay(fluid_trace, scheme=ELSC_S)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.end_time > 0


def test_transformed_replay_throughput(benchmark, fluid_transform):
    replayer = Replayer(jitter=0.0)

    def replay_once():
        return replayer.replay_transformed(fluid_transform)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.end_time > 0
