"""Bench: regenerate Figure 15 (ULCP impact vs thread count)."""

from repro.experiments import figure15


def test_figure15(once):
    result = once(figure15.run, thread_counts=(2, 4, 8))
    print()
    print(result.render())

    # canneal shows no opportunity at any thread count
    assert all(v < 0.01 for v in result.loss["canneal"])
    # the affected apps lose at least as much with more threads
    for app in ("bodytrack", "fluidanimate"):
        series = result.loss[app]
        assert series[-1] >= series[0] - 0.01, app
        assert series[-1] > 0.01, app
    # CPU waste per thread stays in the same band for bodytrack; the
    # fluidanimate grid model's middle stripes carry two boundaries, which
    # inflates the paper's sum-based T_rw at higher thread counts
    # (documented deviation in EXPERIMENTS.md)
    series = result.waste["bodytrack"]
    assert max(series) - min(series) < 0.06
    assert all(v >= 0 for v in result.waste["fluidanimate"])
