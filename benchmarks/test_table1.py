"""Bench: regenerate Table 1 (ULCP breakdown per application)."""

from repro.experiments import table1

ZERO_APPS = ("blackscholes", "canneal", "streamcluster", "swaptions")


def test_table1(once):
    result = once(table1.run)
    print()
    print(result.render())

    rows = result.rows_by_app
    # paper shape: the four quiet apps report no ULCPs at all
    for app in ZERO_APPS:
        assert rows[app].total_ulcps == 0, app
    # blackscholes takes no locks whatsoever
    assert rows["blackscholes"].locks == 0
    # ULCPs are pervasive everywhere else
    for app, row in rows.items():
        if app not in ZERO_APPS:
            assert row.total_ulcps > 0, app
    # category signatures: x264 null-lock heavy, ferret benign-dominant,
    # mysql/fluidanimate read-read dominant, fluidanimate the most ULCPs
    assert rows["x264"].null_lock == max(r.null_lock for r in rows.values())
    assert rows["ferret"].benign >= rows["ferret"].read_read
    assert rows["mysql"].read_read > rows["mysql"].disjoint_write
    assert rows["fluidanimate"].total_ulcps == max(
        r.total_ulcps for r in rows.values()
    )
