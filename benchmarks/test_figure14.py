"""Bench: regenerate Figure 14 (normalized time with/without ULCPs)."""

from repro.experiments import figure14

ZERO_APPS = ("blackscholes", "canneal", "streamcluster", "swaptions")


def test_figure14(once):
    result = once(figure14.run)
    print()
    print(result.render())
    rows = result.rows_by_app

    # the quiet apps gain (essentially) nothing
    for app in ZERO_APPS:
        assert rows[app].degradation < 0.01, app
    # the ULCP-heavy apps land in the paper's single-digit to ~11% band
    for app in ("openldap", "mysql", "pbzip2", "fluidanimate", "vips", "x264"):
        assert 0.01 < rows[app].degradation < 0.15, (app, rows[app].degradation)
    # average improvement in the paper's ballpark (5.1%)
    assert 0.02 < result.average_degradation() < 0.09
    # §6.3's observation: facesim beats fluidanimate despite fewer ULCPs
    assert rows["facesim"].total_ulcps < rows["fluidanimate"].total_ulcps
    assert rows["facesim"].degradation > rows["fluidanimate"].degradation
