"""Bench: regenerate Figure 19 (BUG 1 / BUG 2 sensitivity)."""

from repro.experiments import figure19


def test_figure19(once):
    result = once(figure19.run, thread_counts=(2, 4, 8))
    print()
    print(result.render())

    bug1 = result.by_threads["bug1-openldap-spinwait"]
    bug2 = result.by_threads["bug2-pbzip2-join"]

    # BUG 1: stable resource wasting per thread as threads grow
    wastes = [m.normalized_waste_per_thread for m in bug1]
    assert max(wastes) - min(wastes) < 0.05
    assert min(wastes) > 0.01
    # BUG 2: increasing performance loss with the thread count
    losses = [m.normalized_loss for m in bug2]
    assert losses[-1] > losses[0]

    # both bugs' impact declines as the input grows (fixed bug frequency)
    for bug, series in result.by_size.items():
        losses = [m.normalized_loss for m in series]
        assert losses[0] >= losses[-1], bug
        assert losses[0] > 0.01, bug
