"""Bench: regenerate Figure 2 (#ULCPs vs thread count)."""

from repro.experiments import figure2


def test_figure2(once):
    result = once(figure2.run, thread_counts=(2, 4, 8, 16))
    print()
    print(result.render())

    for app, series in result.series.items():
        # monotone growth with the thread count
        assert all(b > a for a, b in zip(series, series[1:])), app
        # close to proportional order: 8x threads -> at least 4x ULCPs
        assert result.growth_ratio(app) >= 4.0, app
