"""Bench: regenerate Figure 13 (replay fidelity of the four schemes)."""

from repro.experiments import figure13
from repro.replay import ELSC_S, MEM_S, ORIG_S, SYNC_S


def test_figure13(once):
    result = once(
        figure13.run,
        apps=("bodytrack", "dedup", "fluidanimate", "vips", "x264"),
        threads=4,
        replays=8,
    )
    print()
    print(result.render())

    for app, by_scheme in result.series.items():
        mem = by_scheme[MEM_S]
        sync = by_scheme[SYNC_S]
        elsc = by_scheme[ELSC_S]
        orig = by_scheme[ORIG_S]
        # enforcement cost ordering: MEM-S slowest, SYNC-S above ELSC-S
        assert mem.mean > sync.mean > elsc.mean, app
        # precision: ELSC matches the unenforced mean within 2%
        assert abs(elsc.mean - orig.mean) / orig.mean < 0.02, app
        # stability: the unenforced replay fluctuates at least as much as
        # ELSC (apps whose ordering is dominated by recorded wait/post
        # pairing, like x264's frame-dependency cond waits, can tie)
        assert orig.spread + 300 >= elsc.spread, app
        # deterministic schemes stay tight despite timing jitter
        assert elsc.cv < 0.01, app
        assert sync.cv < 0.01, app
        assert mem.cv < 0.01, app
