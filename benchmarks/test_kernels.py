"""Bench gate: vectorized kernels vs the pure-Python reference path.

Drives ``_kernelbench.py`` in subprocesses — one process per backend per
workload, because the backend is fixed at ``repro.kernels`` import and
in-process memos (the scan cache, the columnar view cache) would let the
second backend coast on the first one's work.  Asserts:

* **byte-identity** — both backends produce the same SHA-256 over the
  serialized transformed trace + the columnar timeline JSON, on every
  workload (including the conflict variant that runs the benign test),
* **the speedup gate** — analyze+transform under numpy is at least
  ``MIN_SPEEDUP``x faster than pure Python on the largest workload,

and records the numbers in ``BENCH_kernels.json`` next to the other
benchmark artifacts.  ``REPRO_KERNELBENCH_EVENTS`` overrides the large
workload's size (default 2M events).

Skipped wholesale when numpy is not installed — there is nothing to
compare, and the kernel layer already falls back silently.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

BENCH_SCRIPT = Path(__file__).with_name("_kernelbench.py")
SRC_DIR = Path(__file__).resolve().parents[1] / "src"
RESULT_FILE = Path("BENCH_kernels.json")

DEFAULT_LARGE_EVENTS = 2_000_000
#: the ISSUE gate: analyze+transform at least this much faster vectorized
MIN_SPEEDUP = 5.0

#: (name, variant, events, gated?) — the small workloads are parity
#: checks; only the large one is big enough for a stable timing ratio
def _workloads():
    try:
        large = int(os.environ.get(
            "REPRO_KERNELBENCH_EVENTS", DEFAULT_LARGE_EVENTS))
    except ValueError:
        large = DEFAULT_LARGE_EVENTS
    return [
        ("ulcp-small", "ulcp", 100_000, False),
        ("conflict-small", "conflict", 100_000, False),
        ("ulcp-large", "ulcp", large, True),
    ]


def _bench(args, timeout=1800):
    proc = subprocess.run(
        [sys.executable, str(BENCH_SCRIPT), *args],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(SRC_DIR)},
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_kernel_backends_identical_and_fast(tmp_path):
    report = {"min_speedup": MIN_SPEEDUP, "workloads": {}}
    for name, variant, events, gated in _workloads():
        path = tmp_path / f"{name}.seg.jsonl.gz"
        written = _bench(["generate", variant, str(events), str(path)])
        assert written["events"] == events

        by_backend = {}
        for backend in ("numpy", "python"):
            result = _bench(["run", backend, str(path)])
            assert result["backend"] == backend, (
                f"{name}: subprocess resolved backend "
                f"{result['backend']!r}, wanted {backend!r}"
            )
            by_backend[backend] = result

        fast, slow = by_backend["numpy"], by_backend["python"]
        assert fast["digest"] == slow["digest"], (
            f"{name}: backends disagree — the vectorized kernels are "
            f"not byte-identical to the reference path"
        )
        ratio = (
            slow["analyze_transform_seconds"]
            / max(fast["analyze_transform_seconds"], 1e-9)
        )
        report["workloads"][name] = {
            "variant": variant,
            "events": events,
            "gated": gated,
            "speedup": round(ratio, 2),
            "numpy": fast,
            "python": slow,
        }
        if gated:
            assert ratio >= MIN_SPEEDUP, (
                f"{name}: analyze+transform speedup {ratio:.2f}x under "
                f"numpy (python {slow['analyze_transform_seconds']}s vs "
                f"numpy {fast['analyze_transform_seconds']}s) — below "
                f"the {MIN_SPEEDUP}x gate"
            )

    RESULT_FILE.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps({n: w['speedup'] for n, w in report['workloads'].items()})}")
