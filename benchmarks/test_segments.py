"""Bench gate: streaming analysis of a huge trace in bounded memory.

Drives ``_segbench.py`` in a subprocess (its own address space, so
``ru_maxrss`` is an honest high-water mark), asserts the memory bound
the segmented format exists for — peak RSS stays O(segment)+O(answer)
while the trace is tens of millions of events — and records throughput
in ``BENCH_segments.json`` next to the other benchmark artifacts.

``REPRO_SEGBENCH_EVENTS`` overrides the trace size (default 10M; a full
load of 10M slotted event objects would need gigabytes).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

DEFAULT_EVENTS = 10_000_000
#: peak-RSS ceiling: one segment's chunks + the answer (sections/pairs),
#: with generous headroom for the interpreter itself
RSS_LIMIT_MB = 512
#: throughput floor, conservative for slow CI runners
MIN_EVENTS_PER_SEC = 100_000

BENCH_SCRIPT = Path(__file__).with_name("_segbench.py")
SRC_DIR = Path(__file__).resolve().parents[1] / "src"
RESULT_FILE = Path("BENCH_segments.json")


def _events() -> int:
    try:
        return int(os.environ.get("REPRO_SEGBENCH_EVENTS", DEFAULT_EVENTS))
    except ValueError:
        return DEFAULT_EVENTS


def test_streaming_analysis_bounded_memory(tmp_path):
    events = _events()
    proc = subprocess.run(
        [sys.executable, str(BENCH_SCRIPT), str(events), str(tmp_path)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(SRC_DIR)},
        timeout=1800,
    )
    assert proc.returncode == 0, proc.stderr
    result = json.loads(proc.stdout)

    assert result["events"] == events
    assert result["segments"] >= events // 65536
    # every candidate pair in the synthetic workload is a ULCP, and the
    # analysis must have seen all of them
    assert result["pairs"] == result["ulcps"] > 0
    assert result["peak_rss_mb"] < RSS_LIMIT_MB, (
        f"streaming analysis peaked at {result['peak_rss_mb']} MB for "
        f"{events} events — memory is scaling with the trace, not the segment"
    )
    assert result["analyze_events_per_sec"] > MIN_EVENTS_PER_SEC

    RESULT_FILE.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(result, sort_keys=True)}")
