"""Bench: regenerate Figure 16 (ULCP impact vs input size)."""

from repro.experiments import figure16


def test_figure16(once):
    result = once(figure16.run)
    print()
    print(result.render())

    assert all(v < 0.01 for v in result.loss["canneal"])
    for app in ("bodytrack", "fluidanimate"):
        loss = result.loss[app]
        waste = result.waste[app]
        # both performance loss and waste grow (or hold) with input size
        assert loss[-1] >= loss[0] - 0.005, app
        assert waste[-1] >= waste[0] - 0.005, app
        assert loss[-1] > 0.01, app
