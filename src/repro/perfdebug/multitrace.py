"""Multi-trace debugging: aggregate PERFPLAY reports across executions.

The paper analyzes one trace per program but notes (§6.7) that PERFPLAY
"can be extended to multiple traces".  This module does that: it merges
the per-code-region recommendations of several debugging sessions (for
example different seeds, inputs, or thread counts of the same program)
into one consensus list, reporting for each region

* the accumulated ΔT across all runs,
* how many runs it appeared in (persistence — a region that only shows
  up under one input is risky to "fix"; cf. the paper's input-sensitivity
  caveat in §8), and
* its consensus P share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.perfdebug.framework import DebugReport
from repro.trace.codesite import CodeRegion


@dataclass
class RegionConsensus:
    """One code-region pair aggregated over several runs."""

    cr1: CodeRegion
    cr2: CodeRegion
    total_delta_t: int = 0
    appearances: int = 0
    pair_count: int = 0

    def describe(self) -> str:
        if self.cr1 == self.cr2:
            return str(self.cr1)
        return f"{self.cr1} ~ {self.cr2}"

    def matches(self, cr1: CodeRegion, cr2: CodeRegion) -> Optional[Tuple]:
        """Overlap test in straight or crossed orientation."""
        if self.cr1.overlaps(cr1) and self.cr2.overlaps(cr2):
            return (cr1, cr2)
        if self.cr1.overlaps(cr2) and self.cr2.overlaps(cr1):
            return (cr2, cr1)
        return None

    def absorb(self, cr1: CodeRegion, cr2: CodeRegion, delta_t: int, pairs: int):
        self.cr1 = self.cr1.merge(cr1)
        self.cr2 = self.cr2.merge(cr2)
        self.total_delta_t += max(0, delta_t)
        self.appearances += 1
        self.pair_count += pairs


@dataclass
class MultiTraceReport:
    """Consensus recommendations over several debugging sessions."""

    runs: int
    regions: List[RegionConsensus] = field(default_factory=list)

    def ranked(self) -> List[RegionConsensus]:
        """Most beneficial first; persistence breaks ΔT ties."""
        return sorted(
            self.regions,
            key=lambda r: (-r.total_delta_t, -r.appearances, r.describe()),
        )

    def persistent(self, min_fraction: float = 0.5) -> List[RegionConsensus]:
        """Regions appearing in at least ``min_fraction`` of the runs."""
        threshold = self.runs * min_fraction
        return [r for r in self.ranked() if r.appearances >= threshold]

    def consensus_p(self, region: RegionConsensus) -> float:
        total = sum(r.total_delta_t for r in self.regions)
        return region.total_delta_t / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"Multi-trace consensus over {self.runs} run(s)",
            f"{'ΔT':>12}  {'P':>6}  {'runs':>4}  {'pairs':>5}  region",
            "-" * 64,
        ]
        for region in self.ranked()[:15]:
            lines.append(
                f"{region.total_delta_t:>12}  {self.consensus_p(region):>6.1%}  "
                f"{region.appearances:>4}  {region.pair_count:>5}  "
                f"{region.describe()}"
            )
        return "\n".join(lines)


def aggregate(reports: List[DebugReport]) -> MultiTraceReport:
    """Merge the fused groups of several reports by code region."""
    result = MultiTraceReport(runs=len(reports))
    for report in reports:
        for group in report.fused:
            for region in result.regions:
                oriented = region.matches(group.cr1, group.cr2)
                if oriented is not None:
                    region.absorb(*oriented, group.delta_t, group.count)
                    break
            else:
                consensus = RegionConsensus(cr1=group.cr1, cr2=group.cr2)
                consensus.absorb(group.cr1, group.cr2, group.delta_t, group.count)
                result.regions.append(consensus)
    return result
