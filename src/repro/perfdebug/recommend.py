"""Eq. 2: ranking fused ULCPs by relative optimization opportunity.

P = ΔT_ULCP / Σ ΔT_ULCP over the fused group set; the list is sorted by P
descending and the head is "the most performance critical ULCP" the tool
recommends fixing first.  Negative ΔTs (measurement noise) contribute 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.perfdebug.fusion import FusedUlcp


@dataclass
class Recommendation:
    """One ranked entry of the PERFPLAY output list."""

    rank: int
    group: FusedUlcp
    p: float

    @property
    def delta_t(self) -> int:
        return self.group.delta_t

    @property
    def where(self) -> str:
        return self.group.describe()


def recommend(groups: List[FusedUlcp]) -> List[Recommendation]:
    """Rank fused groups by P (Eq. 2), descending."""
    total = sum(max(0, g.delta_t) for g in groups)
    ranked = sorted(groups, key=lambda g: (-max(0, g.delta_t), g.describe()))
    out: List[Recommendation] = []
    for i, group in enumerate(ranked):
        p = (max(0, group.delta_t) / total) if total > 0 else 0.0
        out.append(Recommendation(rank=i + 1, group=group, p=p))
    return out
