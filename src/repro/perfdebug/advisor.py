"""The fix advisor: per-category fix strategies with measured gains.

The paper's position (§1, §2.2) is that programmers — not speculative
hardware — should fix ULCPs, and it names a fix per category: move the
lock into the guarded branch for null-locks (Figure 3), barrier/rwlock
rewrites for read-read spin patterns (Figure 4), per-object locks for
disjoint writes, atomics for benign conflicts.

``advise(trace)`` quantifies each strategy separately: it transforms the
trace *restricted to one ULCP category* (every other pair keeps its
original serialization), replays it, and reports the isolated gain —
so a programmer knows which rewrite is worth doing first, not just which
code region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.transform import transform
from repro.analysis.ulcp import BENIGN, DISJOINT_WRITE, NULL_LOCK, READ_READ
from repro.replay.replayer import Replayer
from repro.replay.schemes import ELSC_S
from repro.trace.trace import Trace

#: the source-level rewrite the paper recommends per category
CATEGORY_FIXES = {
    NULL_LOCK: (
        "move the lock/unlock into the branch that actually touches the "
        "shared state (Figure 3), or drop the empty section"
    ),
    READ_READ: (
        "use a readers-writer lock / RCU for the read-mostly data; for "
        "spin-wait polling, a barrier or cond-wait (Figure 4 / #BUG 1)"
    ),
    DISJOINT_WRITE: (
        "split the uniform-reference lock into per-object locks, or hash "
        "the lock by the aliased target"
    ),
    BENIGN: (
        "replace the mutex with lock-free atomics — the updates commute "
        "(redundant stores / disjoint bits / commutative adds)"
    ),
}


@dataclass
class FixEstimate:
    """Measured payoff of fixing one ULCP category."""

    category: str
    pairs: int
    gain_ns: int
    normalized_gain: float
    suggestion: str

    def __str__(self):
        return (
            f"[{self.category}] {self.pairs} pair(s), "
            f"gain {self.gain_ns} ns ({self.normalized_gain:.1%}): "
            f"{self.suggestion}"
        )


@dataclass
class FixAdvice:
    """All per-category estimates plus the all-categories bound."""

    baseline_ns: int
    total_gain_ns: int
    estimates: List[FixEstimate] = field(default_factory=list)

    @property
    def best(self) -> Optional[FixEstimate]:
        return self.estimates[0] if self.estimates else None

    @property
    def total_normalized_gain(self) -> float:
        return self.total_gain_ns / self.baseline_ns if self.baseline_ns else 0.0

    def render(self) -> str:
        lines = [
            "Fix advisor",
            f"original execution: {self.baseline_ns} ns; fixing everything "
            f"recovers {self.total_gain_ns} ns ({self.total_normalized_gain:.1%})",
            "-" * 72,
        ]
        if not self.estimates:
            lines.append("no ULCPs found: the locks are earning their keep")
        for estimate in self.estimates:
            lines.append(str(estimate))
        return "\n".join(lines)


def advise(
    trace: Trace,
    *,
    seed: int = 0,
    replayer: Replayer = None,
    min_pairs: int = 1,
) -> FixAdvice:
    """Estimate the payoff of each category's fix on a recorded trace."""
    replayer = replayer or Replayer(jitter=0.0)
    baseline = replayer.replay(trace, scheme=ELSC_S, seed=seed)

    full = transform(trace)
    breakdown = full.analysis.breakdown
    counts: Dict[str, int] = {
        NULL_LOCK: breakdown.null_lock,
        READ_READ: breakdown.read_read,
        DISJOINT_WRITE: breakdown.disjoint_write,
        BENIGN: breakdown.benign,
    }
    full_free = replayer.replay_transformed(full, seed=seed)
    total_gain = max(0, baseline.end_time - full_free.end_time)

    estimates: List[FixEstimate] = []
    for category, pairs in counts.items():
        if pairs < min_pairs:
            continue
        restricted = transform(trace, fix_categories={category})
        free = replayer.replay_transformed(restricted, seed=seed)
        gain = max(0, baseline.end_time - free.end_time)
        estimates.append(
            FixEstimate(
                category=category,
                pairs=pairs,
                gain_ns=gain,
                normalized_gain=gain / baseline.end_time if baseline.end_time else 0.0,
                suggestion=CATEGORY_FIXES[category],
            )
        )
    estimates.sort(key=lambda e: (-e.gain_ns, e.category))
    return FixAdvice(
        baseline_ns=baseline.end_time,
        total_gain_ns=total_gain,
        estimates=estimates,
    )
