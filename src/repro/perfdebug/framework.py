"""The PERFPLAY facade: record → transform → replay → recommend.

:class:`PerfPlay` strings the whole pipeline together (Figure 5):

1. selective recording of the program into a trace,
2. ULCP identification and trace transformation (Figure 6's four rules),
3. replay of both traces under ELSC for performance fidelity,
4. per-ULCP Eq. 1 deltas, Algorithm 2 fusion, Eq. 2 ranking.

If the original and ULCP-free replays disagree on final memory, the
report carries the interleaving-sensitive data races found by the
happens-before pass over the transformed trace (Theorem 1's fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.transform import TransformResult, transform
from repro.analysis.ulcp import UlcpBreakdown
from repro.perfdebug.fusion import FusedUlcp, fuse
from repro.perfdebug.metrics import (
    UlcpPerformance,
    evaluate_pairs,
    performance_degradation,
    resource_wasting,
    spin_delta,
)
from repro.perfdebug.recommend import Recommendation, recommend
from repro.record.recorder import Recorder
from repro.replay.replayer import Replayer
from repro.replay.results import ReplayResult
from repro.replay.schemes import ELSC_S
from repro.trace.trace import Trace


@dataclass
class DebugReport:
    """Everything one PERFPLAY debugging session produced."""

    trace: Trace
    transform_result: TransformResult
    original_replay: ReplayResult
    free_replay: ReplayResult
    pair_performances: List[UlcpPerformance]
    fused: List[FusedUlcp]
    recommendations: List[Recommendation]
    t_pd: int
    t_rw: int
    data_races: List = field(default_factory=list)

    def timelines(self, *, merge: bool = True):
        """The (original, ULCP-free) :class:`~repro.timeline.Timeline`
        pair of this session — from the replays' live interval lanes when
        the session ran with ``timeline=True``, else rebuilt from the
        traces."""
        from repro.timeline.build import timelines_of_report

        return timelines_of_report(self, merge=merge)

    @property
    def breakdown(self) -> UlcpBreakdown:
        return self.transform_result.analysis.breakdown

    @property
    def normalized_degradation(self) -> float:
        """T_pd / T_real: Figure 14's "performance degradation" bar."""
        if self.original_replay.end_time == 0:
            return 0.0
        return max(0.0, self.t_pd / self.original_replay.end_time)

    @property
    def cpu_waste_per_thread(self) -> float:
        """T_rw / N_threads (the paper's per-thread CPU wasting metric)."""
        n = len(self.trace.thread_ids)
        return self.t_rw / n if n else 0.0

    @property
    def normalized_cpu_waste_per_thread(self) -> float:
        if self.original_replay.end_time == 0:
            return 0.0
        return self.cpu_waste_per_thread / self.original_replay.end_time

    @property
    def spin_waste_removed(self) -> int:
        """Directly measured spin-time reduction (simulator ground truth)."""
        return spin_delta(self.original_replay, self.free_replay)

    @property
    def most_beneficial(self) -> Optional[Recommendation]:
        return self.recommendations[0] if self.recommendations else None

    def render(self) -> str:
        from repro.perfdebug.report import render_report

        return render_report(self)


class PerfPlay:
    """End-to-end performance debugging of ULCPs."""

    def __init__(
        self,
        *,
        num_cores: int = 8,
        lock_cost: int = None,
        mem_cost: int = None,
        jitter: float = 0.0,
        benign_detection: bool = True,
        order_edges: bool = True,
    ):
        from repro.sim.timebase import DEFAULT_LOCK_COST, DEFAULT_MEM_COST

        self.recorder = Recorder(
            num_cores=num_cores,
            lock_cost=DEFAULT_LOCK_COST if lock_cost is None else lock_cost,
            mem_cost=DEFAULT_MEM_COST if mem_cost is None else mem_cost,
        )
        self.replayer = Replayer(jitter=jitter)
        self.benign_detection = benign_detection
        self.order_edges = order_edges

    # ------------------------------------------------------------ pipeline

    def record(self, programs, *, name: str = "", seed: int = 0,
               params: Optional[dict] = None,
               semaphores: Optional[Dict[str, int]] = None):
        """Step 1: record the program execution into a trace."""
        return self.recorder.record(
            programs, name=name, seed=seed, params=params, semaphores=semaphores
        )

    def analyze(
        self, trace: Trace, *, seed: int = 0, timeline: bool = False
    ) -> DebugReport:
        """Steps 2-4: transform, replay both traces, score and rank.

        ``timeline=True`` makes both replays collect live interval lanes
        so :meth:`DebugReport.timelines` (and the HTML report) can show
        the exact replayed schedules, stalls included.
        """
        result = transform(
            trace,
            benign_detection=self.benign_detection,
            order_edges=self.order_edges,
        )
        original_replay = self.replayer.replay(
            trace, scheme=ELSC_S, seed=seed, timeline=timeline
        )
        free_replay = self.replayer.replay_transformed(
            result, seed=seed, timeline=timeline
        )

        performances = evaluate_pairs(result, original_replay, free_replay)
        fused = fuse(performances)
        recommendations = recommend(fused)
        t_pd = performance_degradation(original_replay, free_replay)
        t_rw = resource_wasting(performances, t_pd)

        data_races = []
        if original_replay.final_memory != free_replay.final_memory:
            from repro.races.happens_before import transformed_trace_races

            data_races = transformed_trace_races(result)

        return DebugReport(
            trace=trace,
            transform_result=result,
            original_replay=original_replay,
            free_replay=free_replay,
            pair_performances=performances,
            fused=fused,
            recommendations=recommendations,
            t_pd=t_pd,
            t_rw=t_rw,
            data_races=data_races,
        )

    def debug(self, programs, *, name: str = "", seed: int = 0,
              params: Optional[dict] = None,
              semaphores: Optional[Dict[str, int]] = None,
              timeline: bool = False) -> DebugReport:
        """Record a program and analyze it in one call."""
        recorded = self.record(
            programs, name=name, seed=seed, params=params, semaphores=semaphores
        )
        return self.analyze(recorded.trace, seed=seed, timeline=timeline)
