"""Per-lock contention profiling from a recorded trace.

A mutrace-style report: acquisitions, contended fraction, waiting and
holding time, and the hottest acquire sites per lock.  PERFPLAY's
recommendations say *which pairs to fix*; this profile says *where the
lock time goes* — the two views together cover §2.3's "figure out which
code-site incurs the highest performance impact".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.sections import extract_sections
from repro.trace.trace import Trace


@dataclass
class LockProfile:
    """Contention summary of one lock."""

    lock: str
    acquisitions: int = 0
    contended: int = 0
    total_wait_ns: int = 0
    total_hold_ns: int = 0
    max_wait_ns: int = 0
    threads: set = field(default_factory=set)
    sites: Counter = field(default_factory=Counter)

    @property
    def contention_rate(self) -> float:
        return self.contended / self.acquisitions if self.acquisitions else 0.0

    @property
    def mean_hold_ns(self) -> float:
        return self.total_hold_ns / self.acquisitions if self.acquisitions else 0.0

    def top_sites(self, n: int = 3) -> List[str]:
        return [str(site) for site, _count in self.sites.most_common(n)]


def profile_locks(trace: Trace) -> List[LockProfile]:
    """Build per-lock profiles, hottest (most total waiting) first."""
    profiles: Dict[str, LockProfile] = {}
    for cs in extract_sections(trace):
        profile = profiles.setdefault(cs.lock, LockProfile(lock=cs.lock))
        profile.acquisitions += 1
        wait = cs.acquire.wait_time
        if wait > 0:
            profile.contended += 1
            profile.total_wait_ns += wait
            profile.max_wait_ns = max(profile.max_wait_ns, wait)
        profile.total_hold_ns += cs.duration
        profile.threads.add(cs.tid)
        if cs.acquire.site is not None:
            profile.sites[cs.acquire.site] += 1
    return sorted(
        profiles.values(), key=lambda p: (-p.total_wait_ns, -p.acquisitions)
    )


def render_lock_profiles(profiles: List[LockProfile], *, limit: int = 10) -> str:
    """Plain-text contention table."""
    lines = [
        f"{'lock':24} {'acq':>6} {'cont':>6} {'rate':>6} "
        f"{'wait(ns)':>10} {'hold(ns)':>10}  hottest sites",
        "-" * 100,
    ]
    for profile in profiles[:limit]:
        lines.append(
            f"{profile.lock:24} {profile.acquisitions:>6} "
            f"{profile.contended:>6} {profile.contention_rate:>6.0%} "
            f"{profile.total_wait_ns:>10} {profile.total_hold_ns:>10}  "
            f"{', '.join(profile.top_sites())}"
        )
    if len(profiles) > limit:
        lines.append(f"... and {len(profiles) - limit} more locks")
    return "\n".join(lines)
