"""Input-sensitivity analysis — the paper's stated future work (§8).

"PERFPLAY currently helps the ULCP debugging of the input which produces
that trace, but may not help the execution of program on other inputs...
this may prohibit any code modification that could lead to performance
improvement in some cases but not all."

This module runs the full pipeline over a sweep of inputs / thread
counts and classifies each recommended code region as

* **robust**   — recommended (with positive ΔT) for every configuration,
* **partial**  — recommended for some configurations only, or
* **fragile**  — beneficial in exactly one configuration;

so a programmer knows which fixes are safe across inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.perfdebug.framework import PerfPlay
from repro.perfdebug.multitrace import MultiTraceReport, aggregate
from repro.workloads import get_workload

ROBUST = "robust"
PARTIAL = "partial"
FRAGILE = "fragile"


@dataclass
class SensitivityResult:
    """Cross-configuration classification of recommended regions."""

    configurations: List[dict]
    consensus: MultiTraceReport
    classification: Dict[str, str] = field(default_factory=dict)

    def regions_by_class(self, label: str) -> List[str]:
        return sorted(k for k, v in self.classification.items() if v == label)

    def render(self) -> str:
        lines = [
            f"Input sensitivity over {len(self.configurations)} configurations",
            "-" * 64,
        ]
        for region in self.consensus.ranked()[:15]:
            label = self.classification.get(region.describe(), FRAGILE)
            lines.append(
                f"[{label:7}] {region.describe()}  "
                f"(in {region.appearances}/{len(self.configurations)} configs, "
                f"ΔT={region.total_delta_t})"
            )
        return "\n".join(lines)


def sweep(
    workload_name: str,
    *,
    thread_counts: Sequence[int] = (2, 4),
    input_sizes: Sequence[str] = ("simsmall", "simlarge"),
    seeds: Sequence[int] = (0,),
    scale: float = 1.0,
    perfplay: PerfPlay = None,
) -> SensitivityResult:
    """Debug a workload across a configuration grid and classify regions."""
    perfplay = perfplay or PerfPlay()
    configurations = []
    reports = []
    for threads in thread_counts:
        for size in input_sizes:
            for seed in seeds:
                config = {"threads": threads, "input_size": size, "seed": seed}
                configurations.append(config)
                workload = get_workload(
                    workload_name, scale=scale, **config
                )
                recorded = workload.record()
                reports.append(perfplay.analyze(recorded.trace, seed=seed))

    consensus = aggregate(reports)
    total_configs = len(configurations)
    classification = {}
    for region in consensus.regions:
        if region.appearances >= total_configs and region.total_delta_t > 0:
            label = ROBUST
        elif region.appearances > 1:
            label = PARTIAL
        else:
            label = FRAGILE
        classification[region.describe()] = label
    return SensitivityResult(
        configurations=configurations,
        consensus=consensus,
        classification=classification,
    )
