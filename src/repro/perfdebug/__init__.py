"""Performance debugging: Eq. 1 metrics, fusion, ranking, the facade."""

from repro.perfdebug.compare import ReportComparison, compare_reports
from repro.perfdebug.framework import DebugReport, PerfPlay
from repro.perfdebug.fusion import FusedUlcp, fuse
from repro.perfdebug.metrics import (
    AnchorResolver,
    UlcpPerformance,
    evaluate_pair,
    evaluate_pairs,
    performance_degradation,
    resource_wasting,
    spin_delta,
)
from repro.perfdebug.advisor import CATEGORY_FIXES, FixAdvice, FixEstimate, advise
from repro.perfdebug.lockstats import LockProfile, profile_locks, render_lock_profiles
from repro.perfdebug.multitrace import MultiTraceReport, RegionConsensus, aggregate
from repro.perfdebug.recommend import Recommendation, recommend
from repro.perfdebug.report import render_report
from repro.perfdebug.rewrite import (
    FIXES,
    FixOutcome,
    apply_atomic_fix,
    apply_branch_fix,
    apply_lock_split_fix,
    apply_rwlock_fix,
    try_fix,
)
from repro.perfdebug.sensitivity import SensitivityResult, sweep

__all__ = [
    "PerfPlay",
    "DebugReport",
    "AnchorResolver",
    "UlcpPerformance",
    "evaluate_pair",
    "evaluate_pairs",
    "performance_degradation",
    "resource_wasting",
    "spin_delta",
    "FusedUlcp",
    "fuse",
    "Recommendation",
    "recommend",
    "render_report",
    "compare_reports",
    "ReportComparison",
    "aggregate",
    "MultiTraceReport",
    "RegionConsensus",
    "sweep",
    "SensitivityResult",
    "advise",
    "FixAdvice",
    "FixEstimate",
    "CATEGORY_FIXES",
    "profile_locks",
    "LockProfile",
    "render_lock_profiles",
    "try_fix",
    "FixOutcome",
    "FIXES",
    "apply_rwlock_fix",
    "apply_lock_split_fix",
    "apply_atomic_fix",
    "apply_branch_fix",
]
