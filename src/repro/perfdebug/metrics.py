"""ULCP performance metrics (paper §4.1, Eq. 1 and §6.3).

Each ULCP ⟨A, B⟩ is scored by replaying the original and the ULCP-free
trace and differencing three timestamps (Figure 10):

* ``Time1`` — end of A's precursor segment (the last event before A),
* ``Time2`` — start of A's successor segment (first event after A),
* ``Time3`` — start of B's successor segment (first event after B),

ΔT_ULCP = Δmax{Time2, Time3} − ΔTime1, where Δx = x_original − x_free.

Anchors are event uids on the *original* trace.  An anchor that did not
survive transformation (e.g. the release of a removed null-lock) is
resolved by walking to the nearest surviving event in the same thread;
thread edges fall back to the replayed thread start/end times.

Whole-program metrics: T_pd = T_ut − T_uft (performance degradation) and
T_rw = ΣΔT_ULCP − T_pd (resource wasting, the paper's indirect formula).
The direct spin-time delta is also exposed — on the simulator both are
observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.sections import CriticalSection
from repro.analysis.transform import TransformResult
from repro.analysis.ulcp import UlcpPair
from repro.replay.results import ReplayResult
from repro.trace.trace import Trace


class AnchorResolver:
    """Resolves anchor uids to replay timestamps with surviving-event walk."""

    def __init__(self, trace: Trace, replay: ReplayResult):
        self._trace = trace
        self._replay = replay
        self._index: Dict[str, tuple] = {}
        for tid, events in trace.threads.items():
            for i, event in enumerate(events):
                self._index[event.uid] = (tid, i)

    def resolve(self, uid: Optional[str], tid: str, direction: str) -> int:
        """Timestamp of ``uid`` in the replay, or of its nearest survivor.

        ``direction`` is ``"backward"`` for Time1 anchors (walk toward the
        thread start) and ``"forward"`` for Time2/Time3 anchors (walk
        toward the thread end).
        """
        if uid is None:
            if direction == "backward":
                return self._replay.thread_start.get(tid, 0)
            return self._replay.thread_end.get(tid, self._replay.end_time)
        where = self._index.get(uid)
        if where is None:
            return self._fallback(tid, direction)
        tid, idx = where
        events = self._trace.threads[tid]
        step = -1 if direction == "backward" else 1
        i = idx
        while 0 <= i < len(events):
            t = self._replay.timestamps.get(events[i].uid)
            if t is not None:
                return t
            i += step
        return self._fallback(tid, direction)

    def _fallback(self, tid: str, direction: str) -> int:
        if direction == "backward":
            return self._replay.thread_start.get(tid, 0)
        return self._replay.thread_end.get(tid, self._replay.end_time)


@dataclass
class UlcpPerformance:
    """Eq. 1 evaluation of one ULCP."""

    pair: UlcpPair
    delta_t: int
    time1_original: int
    time1_free: int
    time23_original: int
    time23_free: int

    @property
    def kind(self) -> str:
        return self.pair.kind


def evaluate_pair(
    pair: UlcpPair,
    original_resolver: AnchorResolver,
    free_resolver: AnchorResolver,
) -> UlcpPerformance:
    """Apply Eq. 1 to one pair using the two replays' timestamps."""
    a: CriticalSection = pair.c1
    b: CriticalSection = pair.c2

    t1_orig = original_resolver.resolve(a.pre_anchor, a.tid, "backward")
    t1_free = free_resolver.resolve(a.pre_anchor, a.tid, "backward")
    t2_orig = original_resolver.resolve(a.post_anchor, a.tid, "forward")
    t2_free = free_resolver.resolve(a.post_anchor, a.tid, "forward")
    t3_orig = original_resolver.resolve(b.post_anchor, b.tid, "forward")
    t3_free = free_resolver.resolve(b.post_anchor, b.tid, "forward")

    t23_orig = max(t2_orig, t3_orig)
    t23_free = max(t2_free, t3_free)
    delta = (t23_orig - t23_free) - (t1_orig - t1_free)
    return UlcpPerformance(
        pair=pair,
        delta_t=delta,
        time1_original=t1_orig,
        time1_free=t1_free,
        time23_original=t23_orig,
        time23_free=t23_free,
    )


def evaluate_pairs(
    result: TransformResult,
    original_replay: ReplayResult,
    free_replay: ReplayResult,
) -> List[UlcpPerformance]:
    """Eq. 1 for every ULCP the analysis found."""
    original_resolver = AnchorResolver(result.original, original_replay)
    free_resolver = AnchorResolver(result.original, free_replay)
    return [
        evaluate_pair(pair, original_resolver, free_resolver)
        for pair in result.analysis.ulcps
    ]


def performance_degradation(
    original_replay: ReplayResult, free_replay: ReplayResult
) -> int:
    """T_pd: how much the ULCPs stretched the whole execution."""
    return original_replay.end_time - free_replay.end_time


def resource_wasting(
    performances: List[UlcpPerformance], t_pd: int
) -> int:
    """T_rw via the paper's formula ΣΔT_ULCP − T_pd (clamped at zero)."""
    total = sum(max(0, p.delta_t) for p in performances)
    return max(0, total - t_pd)


def spin_delta(original_replay: ReplayResult, free_replay: ReplayResult) -> int:
    """Directly-measured wasted CPU: spin time removed by the transformation."""
    return max(
        0, original_replay.total_spin_ns - free_replay.total_spin_ns
    )
