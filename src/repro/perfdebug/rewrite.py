"""Trace-level fix application: try the advisor's rewrites before coding them.

The advisor (:mod:`repro.perfdebug.advisor`) estimates gains through the
ULCP transformation.  This module goes one step further: it *applies* the
suggested source-level fix directly to the trace — the same edit a
programmer would make — and replays the result with real synchronization
semantics:

* :func:`apply_rwlock_fix` — read-only critical sections on a lock become
  shared (reader-mode) acquisitions, the readers-writer rewrite;
* :func:`apply_lock_split_fix` — the uniform-reference lock becomes one
  lock per written object (fine-grained locking for disjoint writes);
* :func:`apply_atomic_fix` — sections whose writes all commute lose the
  lock entirely (lock-free atomics);
* :func:`apply_branch_fix` — empty (null-lock) sections lose their
  lock/unlock, i.e. the lock moved inside the never-taken branch.

Fixed traces replay unenforced (FIFO, zero jitter): the recorded ELSC
schedule no longer applies to rewritten synchronization, and the replay
is still deterministic.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.sections import CriticalSection, extract_sections
from repro.analysis.shadow import annotate_shared_sets, shared_addresses
from repro.replay.replayer import Replayer
from repro.replay.schemes import ELSC_S, ORIG_S
from repro.trace.events import ACQUIRE, RELEASE, WRITE, TraceEvent
from repro.trace.trace import Trace, TraceMeta


def _annotated_sections(trace: Trace) -> List[CriticalSection]:
    sections = extract_sections(trace)
    annotate_shared_sets(sections, shared_addresses(trace))
    return sections


def _clone_trace(
    trace: Trace,
    name_suffix: str,
    event_map: Callable[[TraceEvent], Optional[TraceEvent]],
) -> Trace:
    """Copy a trace, mapping each event (None drops it); schedules rebuilt."""
    meta = trace.meta
    clone = Trace(
        TraceMeta(
            name=f"{meta.name}{name_suffix}",
            seed=meta.seed,
            num_cores=meta.num_cores,
            lock_cost=meta.lock_cost,
            mem_cost=meta.mem_cost,
            params=dict(meta.params),
        )
    )
    clone.side = trace.side
    acquires: List[TraceEvent] = []
    for tid, events in trace.threads.items():
        clone.add_thread(tid)
        out = clone.threads[tid]
        for event in events:
            mapped = event_map(event)
            if mapped is None:
                continue
            out.append(mapped)
            if mapped.kind == ACQUIRE:
                acquires.append(mapped)
    # grant-time order per (possibly renamed) lock
    acquires.sort(key=lambda e: (e.t, e.uid))
    for event in acquires:
        clone.lock_schedule.setdefault(event.lock, []).append(event.uid)
    return clone


def _copy_event(event: TraceEvent, **overrides) -> TraceEvent:
    clone = copy.copy(event)
    clone.woken = list(event.woken)
    for key, value in overrides.items():
        setattr(clone, key, value)
    return clone


def apply_rwlock_fix(trace: Trace, lock: str) -> Trace:
    """Reader-mode acquisitions for sections that never write under ``lock``."""
    read_only = {
        cs.uid
        for cs in _annotated_sections(trace)
        if cs.lock == lock and not cs.writes
    }

    def mapper(event: TraceEvent):
        if event.kind == ACQUIRE and event.uid in read_only:
            return _copy_event(event, shared=True)
        return event

    return _clone_trace(trace, "+rwlock", mapper)


def apply_lock_split_fix(trace: Trace, lock: str) -> Trace:
    """One lock per written object: ``L`` becomes ``L#<addr>``.

    Sections that only read keep the original lock (they continue to
    exclude nothing relevant once writers moved to per-object locks; a
    real refactor would make them readers — combine with the rwlock fix
    for that).
    """
    sections = _annotated_sections(trace)
    new_lock_of: Dict[str, str] = {}
    release_of: Dict[str, str] = {}
    for cs in sections:
        if cs.lock != lock:
            continue
        written = sorted(cs.writes)
        if written:
            new_lock_of[cs.uid] = f"{lock}#{written[0]}"
            release_of[cs.release.uid] = f"{lock}#{written[0]}"

    def mapper(event: TraceEvent):
        if event.kind == ACQUIRE and event.uid in new_lock_of:
            return _copy_event(event, lock=new_lock_of[event.uid])
        if event.kind == RELEASE and event.uid in release_of:
            return _copy_event(event, lock=release_of[event.uid])
        return event

    return _clone_trace(trace, "+split", mapper)


def apply_atomic_fix(trace: Trace, lock: str) -> Trace:
    """Drop the lock around commutative-write sections (atomics).

    Only sections whose every write is an ``add`` op (and that read
    nothing under the lock) qualify; others keep the lock.
    """
    atomic = set()
    drop_releases = set()
    for cs in _annotated_sections(trace):
        if cs.lock != lock:
            continue
        writes = [e for e in cs.body if e.kind == WRITE]
        reads_nothing = not cs.reads
        commutative = writes and all(
            e.op is not None and e.op[0] == "add" for e in writes
        )
        if reads_nothing and commutative:
            atomic.add(cs.uid)
            drop_releases.add(cs.release.uid)

    def mapper(event: TraceEvent):
        if event.kind == ACQUIRE and event.uid in atomic:
            return None
        if event.kind == RELEASE and event.uid in drop_releases:
            return None
        return event

    return _clone_trace(trace, "+atomic", mapper)


def apply_branch_fix(trace: Trace, lock: str) -> Trace:
    """Remove the lock/unlock of empty (null-lock) sections on ``lock``."""
    empty = set()
    drop_releases = set()
    for cs in _annotated_sections(trace):
        if cs.lock == lock and cs.is_empty and not cs.body:
            empty.add(cs.uid)
            drop_releases.add(cs.release.uid)

    def mapper(event: TraceEvent):
        if event.kind == ACQUIRE and event.uid in empty:
            return None
        if event.kind == RELEASE and event.uid in drop_releases:
            return None
        return event

    return _clone_trace(trace, "+branch", mapper)


FIXES = {
    "rwlock": apply_rwlock_fix,
    "split": apply_lock_split_fix,
    "atomic": apply_atomic_fix,
    "branch": apply_branch_fix,
}


@dataclass
class FixOutcome:
    """Measured effect of one applied fix."""

    lock: str
    fix: str
    original_ns: int
    fixed_ns: int

    @property
    def gain_ns(self) -> int:
        return max(0, self.original_ns - self.fixed_ns)

    @property
    def normalized_gain(self) -> float:
        return self.gain_ns / self.original_ns if self.original_ns else 0.0

    def __str__(self):
        return (
            f"{self.fix} fix on {self.lock}: {self.original_ns} -> "
            f"{self.fixed_ns} ns ({self.normalized_gain:+.1%})"
        )


def measure_fix(
    trace: Trace, fixed: Trace, *, seed: int = 0, replayer: Replayer = None
) -> FixOutcome:
    """Replay the original (ELSC) and fixed (unenforced) traces."""
    replayer = replayer or Replayer(jitter=0.0)
    original = replayer.replay(trace, scheme=ELSC_S, seed=seed)
    fixed_replay = replayer.replay(fixed, scheme=ORIG_S, seed=seed)
    fix_name = fixed.meta.name.rsplit("+", 1)[-1]
    lock = "?"
    return FixOutcome(
        lock=lock,
        fix=fix_name,
        original_ns=original.end_time,
        fixed_ns=fixed_replay.end_time,
    )


def try_fix(
    trace: Trace, lock: str, fix: str, *, seed: int = 0,
    replayer: Replayer = None,
) -> FixOutcome:
    """Apply one named fix to one lock and measure it."""
    if fix not in FIXES:
        raise ValueError(f"unknown fix {fix!r}; known: {sorted(FIXES)}")
    fixed = FIXES[fix](trace, lock)
    outcome = measure_fix(trace, fixed, seed=seed, replayer=replayer)
    outcome.lock = lock
    outcome.fix = fix
    return outcome
