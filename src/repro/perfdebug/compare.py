"""Report comparison: did the fix help, and what should be fixed next?

After a programmer applies a recommended fix, they re-record and re-run
PERFPLAY.  ``compare_reports(before, after)`` diffs two debug reports:

* whole-program movement (T_pd, end time, ULCP counts per category),
* which recommended regions disappeared (fixed), shrank, grew, or are
  new, matched by code-region overlap in either orientation.

This closes the loop the paper leaves to the programmer: recommend →
fix → *verify the fix landed* → next recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.perfdebug.framework import DebugReport
from repro.perfdebug.fusion import FusedUlcp

GONE = "fixed"
SHRUNK = "shrunk"
GREW = "grew"
NEW = "new"
UNCHANGED = "unchanged"


@dataclass
class RegionChange:
    label: str
    before_delta_t: int
    after_delta_t: int
    status: str

    def __str__(self):
        return (
            f"[{self.status:9}] {self.label}: ΔT {self.before_delta_t} -> "
            f"{self.after_delta_t}"
        )


@dataclass
class ReportComparison:
    before: DebugReport
    after: DebugReport
    changes: List[RegionChange] = field(default_factory=list)

    @property
    def end_time_change(self) -> float:
        base = self.before.original_replay.end_time
        if not base:
            return 0.0
        return (self.after.original_replay.end_time - base) / base

    @property
    def degradation_change(self) -> float:
        return (
            self.after.normalized_degradation
            - self.before.normalized_degradation
        )

    @property
    def fixed_regions(self) -> List[RegionChange]:
        return [c for c in self.changes if c.status == GONE]

    @property
    def improved(self) -> bool:
        """The headline: less removable ULCP cost than before."""
        return self.after.t_pd < self.before.t_pd

    def render(self) -> str:
        lines = [
            "Before/after comparison",
            f"execution time : {self.before.original_replay.end_time} -> "
            f"{self.after.original_replay.end_time} ns "
            f"({self.end_time_change:+.1%})",
            f"removable T_pd : {self.before.t_pd} -> {self.after.t_pd} ns",
            f"ULCP pairs     : {self.before.breakdown.total_ulcps} -> "
            f"{self.after.breakdown.total_ulcps}",
            "-" * 64,
        ]
        for change in self.changes:
            lines.append(str(change))
        if self.after.recommendations:
            lines.append(
                f"next: {self.after.most_beneficial.where} "
                f"(P={self.after.most_beneficial.p:.0%})"
            )
        else:
            lines.append("next: nothing left to fix")
        return "\n".join(lines)


def _match(group: FusedUlcp, candidates: List[FusedUlcp]) -> Optional[FusedUlcp]:
    for other in candidates:
        straight = group.cr1.overlaps(other.cr1) and group.cr2.overlaps(other.cr2)
        crossed = group.cr1.overlaps(other.cr2) and group.cr2.overlaps(other.cr1)
        if straight or crossed:
            return other
    return None


def compare_reports(before: DebugReport, after: DebugReport,
                    *, tolerance: float = 0.15) -> ReportComparison:
    """Diff two debug reports by fused code region."""
    comparison = ReportComparison(before=before, after=after)
    after_groups = list(after.fused)
    matched_after = set()
    for group in before.fused:
        other = _match(group, after_groups)
        if other is None:
            status = GONE
            after_delta = 0
        else:
            matched_after.add(id(other))
            after_delta = other.delta_t
            base = max(1, abs(group.delta_t))
            ratio = (other.delta_t - group.delta_t) / base
            if ratio < -tolerance:
                status = SHRUNK
            elif ratio > tolerance:
                status = GREW
            else:
                status = UNCHANGED
        comparison.changes.append(
            RegionChange(
                label=group.describe(),
                before_delta_t=group.delta_t,
                after_delta_t=after_delta,
                status=status,
            )
        )
    for other in after_groups:
        if id(other) not in matched_after:
            comparison.changes.append(
                RegionChange(
                    label=other.describe(),
                    before_delta_t=0,
                    after_delta_t=other.delta_t,
                    status=NEW,
                )
            )
    comparison.changes.sort(key=lambda c: -max(c.before_delta_t, c.after_delta_t))
    return comparison
