"""Human-readable rendering of a PERFPLAY debugging session."""

from __future__ import annotations

from typing import List

from repro.sim.timebase import format_ns


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_report(report) -> str:
    """Render a :class:`repro.perfdebug.framework.DebugReport` as text."""
    lines: List[str] = []
    breakdown = report.breakdown
    lines.append("=" * 72)
    lines.append(f"PERFPLAY report: {report.trace.meta.name or '<unnamed trace>'}")
    lines.append("=" * 72)
    lines.append(
        f"threads={len(report.trace.thread_ids)}  "
        f"locks={len(report.trace.lock_schedule)}  "
        f"critical sections={len(report.transform_result.sections)}"
    )
    lines.append(
        "ULCP breakdown: "
        f"null-lock={breakdown.null_lock}  read-read={breakdown.read_read}  "
        f"disjoint-write={breakdown.disjoint_write}  benign={breakdown.benign}  "
        f"(TLCPs: {breakdown.tlcp})"
    )
    lines.append("")
    lines.append(
        f"replayed original (ELSC-S):  {format_ns(report.original_replay.end_time)}"
    )
    lines.append(
        f"replayed ULCP-free (DLS):    {format_ns(report.free_replay.end_time)}"
    )
    lines.append(
        f"performance degradation Tpd: {format_ns(report.t_pd)} "
        f"({report.normalized_degradation:.1%} of execution)"
    )
    lines.append(
        f"CPU waste per thread:        {format_ns(int(report.cpu_waste_per_thread))}"
    )
    if report.data_races:
        lines.append("")
        lines.append(
            f"WARNING: replays disagree on final memory; "
            f"{len(report.data_races)} interleaving-sensitive data race(s):"
        )
        for race in report.data_races[:5]:
            lines.append(f"  - {race}")
    lines.append("")
    lines.append(f"grouped ULCP code regions: {len(report.recommendations)}")
    lines.append("-" * 72)
    lines.append(f"{'rank':>4}  {'P':>6}  {'ΔT':>12}  {'pairs':>5}  code regions")
    lines.append("-" * 72)
    for rec in report.recommendations[:10]:
        lines.append(
            f"{rec.rank:>4}  {rec.p:>6.1%}  {format_ns(max(0, rec.delta_t)):>12}  "
            f"{rec.group.count:>5}  {rec.where}  [{_bar(rec.p)}]"
        )
    if len(report.recommendations) > 10:
        lines.append(f"... and {len(report.recommendations) - 10} more")
    lines.append("=" * 72)
    return "\n".join(lines)
