"""Human-readable rendering of a PERFPLAY debugging session.

Two renderers share this module: :func:`render_report` (plain text, the
``DebugReport.render()`` default) and :func:`render_html_report`, the
self-contained HTML artifact behind ``repro report`` /
:func:`repro.api.report`.  The HTML is a single file with inline CSS and
SVG, zero external assets, and is byte-deterministic for a fixed trace:
nothing derived from wall clocks, object identity, or dict-order
accidents goes into it.
"""

from __future__ import annotations

import html as _html
from typing import List, Optional

from repro.sim.timebase import format_ns


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_report(report) -> str:
    """Render a :class:`repro.perfdebug.framework.DebugReport` as text."""
    lines: List[str] = []
    breakdown = report.breakdown
    lines.append("=" * 72)
    lines.append(f"PERFPLAY report: {report.trace.meta.name or '<unnamed trace>'}")
    lines.append("=" * 72)
    lines.append(
        f"threads={len(report.trace.thread_ids)}  "
        f"locks={len(report.trace.lock_schedule)}  "
        f"critical sections={len(report.transform_result.sections)}"
    )
    lines.append(
        "ULCP breakdown: "
        f"null-lock={breakdown.null_lock}  read-read={breakdown.read_read}  "
        f"disjoint-write={breakdown.disjoint_write}  benign={breakdown.benign}  "
        f"(TLCPs: {breakdown.tlcp})"
    )
    lines.append("")
    lines.append(
        f"replayed original (ELSC-S):  {format_ns(report.original_replay.end_time)}"
    )
    lines.append(
        f"replayed ULCP-free (DLS):    {format_ns(report.free_replay.end_time)}"
    )
    lines.append(
        f"performance degradation Tpd: {format_ns(report.t_pd)} "
        f"({report.normalized_degradation:.1%} of execution)"
    )
    lines.append(
        f"CPU waste per thread:        {format_ns(int(report.cpu_waste_per_thread))}"
    )
    if report.data_races:
        lines.append("")
        lines.append(
            f"WARNING: replays disagree on final memory; "
            f"{len(report.data_races)} interleaving-sensitive data race(s):"
        )
        for race in report.data_races[:5]:
            lines.append(f"  - {race}")
    lines.append("")
    lines.append(f"grouped ULCP code regions: {len(report.recommendations)}")
    lines.append("-" * 72)
    lines.append(f"{'rank':>4}  {'P':>6}  {'ΔT':>12}  {'pairs':>5}  code regions")
    lines.append("-" * 72)
    for rec in report.recommendations[:10]:
        lines.append(
            f"{rec.rank:>4}  {rec.p:>6.1%}  {format_ns(max(0, rec.delta_t)):>12}  "
            f"{rec.group.count:>5}  {rec.where}  [{_bar(rec.p)}]"
        )
    if len(report.recommendations) > 10:
        lines.append(f"... and {len(report.recommendations) - 10} more")
    lines.append("=" * 72)
    return "\n".join(lines)


# ======================================================================
# HTML report
# ======================================================================

#: fill colors per interval kind (accounting layer of the waterfall)
KIND_FILL = {
    "compute": "#5b8dd9",
    "overhead": "#9aa5b1",
    "blocked": "#d5d9de",
    "lock_wait": "#e06666",
    "stall": "#a64dc8",
}

#: ULCP classification palette (cs overlay strip + wait tinting)
ULCP_FILL = {
    "null_lock": "#d93025",
    "read_read": "#f29900",
    "disjoint_write": "#fbbc04",
    "benign": "#34a853",
    "tlcp": "#5f6368",
}

_CSS = """
body{font:14px/1.45 -apple-system,'Segoe UI',Roboto,sans-serif;margin:24px;
     color:#202124;background:#fff}
h1{font-size:20px;margin:0 0 4px}
h2{font-size:16px;margin:28px 0 8px;border-bottom:1px solid #dadce0;
   padding-bottom:4px}
table{border-collapse:collapse;margin:8px 0}
th,td{border:1px solid #dadce0;padding:3px 8px;text-align:left;
      font-size:13px}
th{background:#f1f3f4}
td.num{text-align:right;font-variant-numeric:tabular-nums}
.cards{display:flex;flex-wrap:wrap;gap:10px;margin:12px 0}
.card{border:1px solid #dadce0;border-radius:6px;padding:8px 14px;
      min-width:110px}
.card .v{font-size:18px;font-weight:600}
.card .k{font-size:11px;color:#5f6368;text-transform:uppercase}
.lanes{display:flex;flex-wrap:wrap;gap:18px;align-items:flex-start}
.lane-col{flex:1 1 460px;min-width:380px}
.lane-col h3{font-size:13px;margin:0 0 4px;color:#5f6368}
.legend{font-size:12px;color:#5f6368;margin:6px 0}
.legend span{display:inline-block;margin-right:12px}
.legend i{display:inline-block;width:10px;height:10px;margin-right:4px;
          border-radius:2px}
.bar{background:#e8eaed;height:10px;border-radius:5px;min-width:120px}
.bar i{display:block;height:10px;border-radius:5px;background:#1a73e8}
.empty{border:1px dashed #dadce0;border-radius:6px;padding:18px;
       color:#5f6368;margin:10px 0}
.warn{border-left:4px solid #d93025;background:#fce8e6;padding:8px 12px;
      margin:10px 0}
footer{margin-top:32px;font-size:11px;color:#9aa0a6}
svg text{font:10px monospace;fill:#5f6368}
"""


def _esc(value) -> str:
    return _html.escape(str(value), quote=True)


def _px(value: float) -> str:
    """Fixed-precision pixel coordinate (deterministic float formatting)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _svg_waterfall(timeline, max_end: int, *, width: int = 520) -> str:
    """One timeline as an inline-SVG waterfall (one lane per thread)."""
    lane_h, strip_h, gap, label_w = 18, 5, 7, 52
    tids = timeline.thread_ids
    height = len(tids) * (lane_h + gap) + 16
    scale = (width - label_w) / max_end if max_end else 0.0
    parts: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">'
    ]
    y = 2
    for tid in tids:
        parts.append(
            f'<text x="0" y="{_px(y + lane_h - 5)}">{_esc(tid)}</text>'
        )
        parts.append(
            f'<rect x="{label_w}" y="{_px(y)}" '
            f'width="{_px(width - label_w)}" height="{lane_h}" '
            f'fill="#f8f9fa"/>'
        )
        for iv in timeline.lanes[tid]:
            x = label_w + iv.t_start * scale
            w = max(iv.duration * scale, 0.15)
            if iv.kind == "cs":
                fill = ULCP_FILL.get(iv.ulcp, "#80868b")
                title = f"cs {iv.lock} [{iv.t_start}, {iv.t_end}]"
                if iv.ulcp:
                    title += f" ulcp={iv.ulcp}"
                parts.append(
                    f'<rect x="{_px(x)}" y="{_px(y)}" width="{_px(w)}" '
                    f'height="{strip_h}" fill="{fill}">'
                    f"<title>{_esc(title)}</title></rect>"
                )
                continue
            fill = KIND_FILL.get(iv.kind, "#dadce0")
            if iv.kind == "lock_wait" and iv.ulcp:
                fill = ULCP_FILL.get(iv.ulcp, fill)
            title = f"{iv.kind} [{iv.t_start}, {iv.t_end}]"
            if iv.lock:
                title += f" lock={iv.lock}"
            if iv.holder:
                title += f" holder={iv.holder}"
            if iv.spin:
                title += " spin"
            if iv.detail:
                title += f" ({iv.detail})"
            parts.append(
                f'<rect x="{_px(x)}" y="{_px(y + strip_h)}" '
                f'width="{_px(w)}" height="{lane_h - strip_h}" '
                f'fill="{fill}"><title>{_esc(title)}</title></rect>'
            )
        y += lane_h + gap
    parts.append(
        f'<text x="{label_w}" y="{_px(y + 8)}">0</text>'
        f'<text x="{_px(width - 60)}" y="{_px(y + 8)}">'
        f"{_esc(format_ns(max_end))}</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _legend() -> str:
    entries = [
        ("compute", KIND_FILL["compute"]),
        ("lock wait", KIND_FILL["lock_wait"]),
        ("replay stall", KIND_FILL["stall"]),
        ("blocked", KIND_FILL["blocked"]),
        ("overhead", KIND_FILL["overhead"]),
        ("cs: null-lock", ULCP_FILL["null_lock"]),
        ("cs: read-read", ULCP_FILL["read_read"]),
        ("cs: disjoint-write", ULCP_FILL["disjoint_write"]),
        ("cs: benign", ULCP_FILL["benign"]),
    ]
    spans = "".join(
        f'<span><i style="background:{color}"></i>{_esc(label)}</span>'
        for label, color in entries
    )
    return f'<div class="legend">{spans}</div>'


def _heatmap(timeline) -> str:
    """Per-lock contention heatmap: wait time x waiting thread."""
    table = timeline.wait_by_lock_thread()
    if not table:
        return '<div class="empty">No lock waits in this execution.</div>'
    tids = timeline.thread_ids
    peak = max(max(row.values()) for row in table.values())
    rows: List[str] = [
        "<table><tr><th>lock</th>"
        + "".join(f"<th>{_esc(tid)}</th>" for tid in tids)
        + "<th>total</th></tr>"
    ]
    for lock in sorted(table):
        row = table[lock]
        cells = []
        for tid in tids:
            wait = row.get(tid, 0)
            alpha = f"{wait / peak:.3f}" if peak else "0"
            label = format_ns(wait) if wait else ""
            cells.append(
                f'<td class="num" style="background:rgba(217,48,37,{alpha})">'
                f"{_esc(label)}</td>"
            )
        total = sum(row.values())
        rows.append(
            f"<tr><td>{_esc(lock)}</td>{''.join(cells)}"
            f'<td class="num"><b>{_esc(format_ns(total))}</b></td></tr>'
        )
    rows.append("</table>")
    return "".join(rows)


def _ulcp_table(report, limit: int = 40) -> str:
    perfs = report.pair_performances
    if not perfs:
        return (
            '<div class="empty">No unnecessary lock contentions found — '
            "every contended critical-section pair either shares data or "
            "is benign.</div>"
        )
    rows = [
        "<table><tr><th>#</th><th>kind</th><th>lock</th>"
        "<th>region 1</th><th>region 2</th><th>&Delta;T (Eq. 1)</th></tr>"
    ]
    for i, perf in enumerate(perfs[:limit], 1):
        pair = perf.pair
        rows.append(
            f'<tr><td class="num">{i}</td><td>{_esc(perf.kind)}</td>'
            f"<td>{_esc(pair.lock)}</td>"
            f"<td>{_esc(pair.region1)}</td><td>{_esc(pair.region2)}</td>"
            f'<td class="num">{_esc(format_ns(max(0, perf.delta_t)))}</td></tr>'
        )
    rows.append("</table>")
    if len(perfs) > limit:
        rows.append(f"<p>&hellip; and {len(perfs) - limit} more pairs</p>")
    return "".join(rows)


def _fused_table(report) -> str:
    if not report.fused:
        return '<div class="empty">No fused ULCP code regions.</div>'
    rows = [
        "<table><tr><th>code regions</th><th>pairs</th><th>kinds</th>"
        "<th>accumulated &Delta;T</th></tr>"
    ]
    for group in report.fused:
        rows.append(
            f"<tr><td>{_esc(group.describe())}</td>"
            f'<td class="num">{group.count}</td>'
            f"<td>{_esc(', '.join(group.kinds))}</td>"
            f'<td class="num">{_esc(format_ns(max(0, group.delta_t)))}</td></tr>'
        )
    rows.append("</table>")
    return "".join(rows)


def _recommendation_table(report) -> str:
    if not report.recommendations:
        return (
            '<div class="empty">Nothing to recommend: no removable '
            "contention cost (Eq. 2 ranks an empty set).</div>"
        )
    rows = [
        "<table><tr><th>rank</th><th>P (Eq. 2)</th><th></th>"
        "<th>&Delta;T</th><th>pairs</th><th>code regions</th></tr>"
    ]
    for rec in report.recommendations:
        pct = max(0.0, min(1.0, rec.p))
        rows.append(
            f'<tr><td class="num">{rec.rank}</td>'
            f'<td class="num">{rec.p:.1%}</td>'
            f'<td><div class="bar"><i style="width:{pct:.1%}"></i></div></td>'
            f'<td class="num">{_esc(format_ns(max(0, rec.delta_t)))}</td>'
            f'<td class="num">{rec.group.count}</td>'
            f"<td>{_esc(rec.where)}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _telemetry_section(data: Optional[dict]) -> str:
    if not data:
        return '<div class="empty">No telemetry collected.</div>'
    parts: List[str] = []
    counters = data.get("counters", {})
    gauges = data.get("gauges", {})
    if counters:
        parts.append("<table><tr><th>counter</th><th>value</th></tr>")
        for name in sorted(counters):
            parts.append(
                f'<tr><td>{_esc(name)}</td><td class="num">'
                f"{_esc(counters[name])}</td></tr>"
            )
        parts.append("</table>")
    if gauges:
        parts.append("<table><tr><th>gauge</th><th>value</th></tr>")
        for name in sorted(gauges):
            parts.append(
                f'<tr><td>{_esc(name)}</td><td class="num">'
                f"{_esc(gauges[name])}</td></tr>"
            )
        parts.append("</table>")
    if not parts:
        return '<div class="empty">No telemetry collected.</div>'
    return "".join(parts)


def _comparison_section(comparison) -> str:
    head = (
        f"<p>execution time {comparison.before.original_replay.end_time} &rarr; "
        f"{comparison.after.original_replay.end_time} ns "
        f"({comparison.end_time_change:+.1%}); removable T<sub>pd</sub> "
        f"{comparison.before.t_pd} &rarr; {comparison.after.t_pd} ns; "
        f"{'improved' if comparison.improved else 'not improved'}.</p>"
    )
    if not comparison.changes:
        return head + '<div class="empty">No region changes.</div>'
    rows = [
        "<table><tr><th>status</th><th>code regions</th>"
        "<th>&Delta;T before</th><th>&Delta;T after</th></tr>"
    ]
    for change in comparison.changes:
        rows.append(
            f"<tr><td>{_esc(change.status)}</td><td>{_esc(change.label)}</td>"
            f'<td class="num">{_esc(format_ns(max(0, change.before_delta_t)))}</td>'
            f'<td class="num">{_esc(format_ns(max(0, change.after_delta_t)))}</td>'
            "</tr>"
        )
    rows.append("</table>")
    return head + "".join(rows)


def _card(label: str, value: str) -> str:
    return (
        f'<div class="card"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
    )


def render_html_report(
    report,
    *,
    original_timeline=None,
    free_timeline=None,
    telemetry_data: Optional[dict] = None,
    comparison=None,
    title: str = "",
) -> str:
    """Render a debugging session as one self-contained HTML document.

    ``original_timeline``/``free_timeline`` override the waterfall
    sources (defaults: :meth:`DebugReport.timelines`).  ``telemetry_data``
    is a :func:`repro.telemetry.to_dict` export (``timings=False`` keeps
    it deterministic).  ``comparison`` is an optional
    :class:`repro.perfdebug.compare.ReportComparison` rendered as a
    before/after section.
    """
    if original_timeline is None or free_timeline is None:
        built_original, built_free = report.timelines()
        original_timeline = original_timeline or built_original
        free_timeline = free_timeline or built_free

    name = report.trace.meta.name or "unnamed trace"
    doc_title = title or f"PERFPLAY report — {name}"
    breakdown = report.breakdown
    max_end = max(original_timeline.end_time, free_timeline.end_time, 1)
    no_ulcps = not report.pair_performances and not report.recommendations

    body: List[str] = []
    body.append(f"<h1>{_esc(doc_title)}</h1>")
    body.append(
        f"<p>threads {len(report.trace.thread_ids)} &middot; locks "
        f"{len(report.trace.lock_schedule)} &middot; critical sections "
        f"{len(report.transform_result.sections)} &middot; ULCPs: "
        f"null-lock {breakdown.null_lock}, read-read {breakdown.read_read}, "
        f"disjoint-write {breakdown.disjoint_write}, benign "
        f"{breakdown.benign} (TLCPs {breakdown.tlcp})</p>"
    )
    body.append('<div class="cards">')
    body.append(_card("original (ELSC-S)", format_ns(report.original_replay.end_time)))
    body.append(_card("ULCP-free replay", format_ns(report.free_replay.end_time)))
    body.append(_card("degradation T_pd", format_ns(max(0, report.t_pd))))
    body.append(_card("degradation %", f"{report.normalized_degradation:.1%}"))
    body.append(_card("CPU waste/thread", format_ns(int(report.cpu_waste_per_thread))))
    body.append(_card("spin waste removed", format_ns(max(0, report.spin_waste_removed))))
    body.append("</div>")

    if no_ulcps:
        body.append(
            '<div class="empty"><b>No unnecessary lock contentions '
            "found.</b> All observed contention is necessary (shared data "
            "or benign); the transformed replay matches the original "
            "schedule.</div>"
        )
    if report.data_races:
        body.append(
            f'<div class="warn">Replays disagree on final memory: '
            f"{len(report.data_races)} interleaving-sensitive data race(s) "
            f"detected; treat &Delta;T values with care.</div>"
        )

    body.append("<h2>Execution waterfalls</h2>")
    body.append(_legend())
    body.append('<div class="lanes">')
    body.append(
        '<div class="lane-col"><h3>original replay '
        f"({_esc(original_timeline.scheme or 'recorded')})</h3>"
        + _svg_waterfall(original_timeline, max_end)
        + "</div>"
    )
    body.append(
        '<div class="lane-col"><h3>ULCP-free replay '
        f"({_esc(free_timeline.scheme or 'transformed')})</h3>"
        + _svg_waterfall(free_timeline, max_end)
        + "</div>"
    )
    body.append("</div>")

    body.append("<h2>Lock contention heatmap (wait time &times; thread)</h2>")
    body.append(_heatmap(original_timeline))

    body.append("<h2>ULCP pairs (Eq. 1 deltas)</h2>")
    body.append(_ulcp_table(report))

    body.append("<h2>Fused code regions (Algorithm 2)</h2>")
    body.append(_fused_table(report))

    body.append("<h2>Ranked recommendations (Eq. 2)</h2>")
    body.append(_recommendation_table(report))

    if comparison is not None:
        body.append("<h2>Before / after comparison</h2>")
        body.append(_comparison_section(comparison))

    body.append("<h2>Telemetry summary</h2>")
    body.append(_telemetry_section(telemetry_data))

    body.append(
        "<footer>Self-contained PERFPLAY artifact &middot; deterministic "
        "for a fixed trace (no wall-clock content) &middot; timeline "
        "units: simulated ns</footer>"
    )

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(doc_title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head><body>\n" + "\n".join(body) + "\n</body></html>\n"
    )
