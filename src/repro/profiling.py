"""Pipeline stage profiler: where does an analysis run spend its time?

``profile_pipeline`` executes the PERFPLAY pipeline stage by stage —
record (or load), intern, scan, classify, benign, transform, replay —
timing each with ``time.perf_counter`` and counting the artifacts it
produces.  The stage boundaries deliberately mirror the fused engine's
internals (``repro profile`` exists to show what the columnar core buys
and where the remaining time goes), so the classify and benign phases
that :func:`repro.analysis.pairs.analyze_pairs` interleaves are timed
separately here while producing the identical :class:`PairAnalysis`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro import kernels, telemetry
from repro.analysis.benign import WriteTimeline, is_benign
from repro.analysis.classify import FALSE, classify_pair
from repro.analysis.engine import scan_trace
from repro.analysis.pairs import PairAnalysis
from repro.analysis.sections import sections_by_lock
from repro.analysis.transform import TransformResult, transform
from repro.analysis.ulcp import BENIGN, TLCP, UlcpPair
from repro.replay.replayer import Replayer
from repro.trace.trace import Trace


@dataclass
class Stage:
    """One timed pipeline stage."""

    name: str
    seconds: float
    detail: str = ""

    @property
    def millis(self) -> float:
        return self.seconds * 1000.0


@dataclass
class ProfileReport:
    """Per-stage wall times plus the pipeline's artifact counts."""

    stages: List[Stage] = field(default_factory=list)
    events: int = 0
    sections: int = 0
    pairs: int = 0
    analysis: Optional[PairAnalysis] = None
    result: Optional[TransformResult] = None
    backend: str = ""
    kernels: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def render(self) -> str:
        lines = ["pipeline profile"]
        width = max(len(stage.name) for stage in self.stages)
        for stage in self.stages:
            line = f"  {stage.name:<{width}} {stage.millis:9.2f} ms"
            if stage.detail:
                line += f"  {stage.detail}"
            lines.append(line)
        lines.append(f"  {'total':<{width}} {self.total_seconds * 1000.0:9.2f} ms")
        breakdown = self.analysis.breakdown if self.analysis else None
        lines.append(
            f"  events={self.events} sections={self.sections} pairs={self.pairs}"
        )
        if breakdown is not None:
            lines.append(
                "  null-lock={0.null_lock} read-read={0.read_read} "
                "disjoint-write={0.disjoint_write} benign={0.benign} "
                "tlcp={0.tlcp}".format(breakdown)
            )
        if self.backend:
            lines.append(f"kernel backend: {self.backend}")
        for name, entry in sorted(self.kernels.items()):
            lines.append(
                f"  kernel {name:<18} {entry['seconds'] * 1000.0:9.2f} ms"
                f"  ({entry['calls']} calls)"
            )
        return "\n".join(lines)


def profile_pipeline(
    trace: Optional[Trace] = None,
    workload=None,
    *,
    seed: int = 0,
    replay: bool = True,
) -> ProfileReport:
    """Run the full pipeline over ``trace`` (or record ``workload`` first),
    timing every stage.  Exactly one of ``trace``/``workload`` is required."""
    if (trace is None) == (workload is None):
        raise ValueError("profile_pipeline needs a trace OR a workload")

    report = ProfileReport(backend=kernels.backend())
    kernels.reset_timings()

    def timed(name: str, fn, detail: str = ""):
        # one span per stage, labelled, so stage wall times never overlap
        # in the exported span tree (stages run strictly one after another)
        with telemetry.span("profile.stage", stage=name):
            start = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - start
        report.stages.append(Stage(name, elapsed, detail))
        return value

    if workload is not None:
        trace = timed("record", lambda: workload.record().trace)
    report.events = len(trace)

    core = timed("intern", trace.columnar)
    scan = timed("scan", lambda: scan_trace(core))
    report.sections = len(scan.sections)

    # pair enumeration + Algorithm 1, with the benign replays deferred so
    # the two phases time separately (analyze_pairs interleaves them)
    def classify_stage():
        ordered = []
        for lock_sections in sections_by_lock(scan.sections).values():
            for first, second in zip(lock_sections, lock_sections[1:]):
                if first.tid == second.tid:
                    continue
                ordered.append((first, second, classify_pair(first, second)))
        return ordered

    classified = timed("classify", classify_stage)
    report.pairs = len(classified)

    timeline = WriteTimeline(trace)
    analysis = PairAnalysis(sections=scan.sections, timeline=timeline)

    def benign_stage():
        for first, second, kind in classified:
            if kind == FALSE:
                analysis.benign_cache[(first.uid, second.uid)] = is_benign(
                    first, second, timeline
                )

    timed(
        "benign",
        benign_stage,
        detail=f"{sum(1 for *_, k in classified if k == FALSE)} replay tests",
    )
    for first, second, kind in classified:
        if kind == FALSE:
            benign = analysis.benign_cache[(first.uid, second.uid)]
            kind = BENIGN if benign else TLCP
        analysis.pairs.append(UlcpPair(c1=first, c2=second, kind=kind))
        analysis.breakdown.add(kind)
    report.analysis = analysis

    result = timed("transform", lambda: transform(trace, analysis=analysis))
    report.result = result

    if replay:
        replayer = Replayer(jitter=0.0)
        timed(
            "replay",
            lambda: replayer.replay_transformed(result, seed=seed),
            detail="transformed trace, 1 run",
        )
    # attribute stage time to individual kernels (scan/rewrite/validate/
    # ...) — the registry accumulated while the stages above ran
    report.kernels = kernels.timings()
    return report
