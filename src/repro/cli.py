"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show registered workloads (by category) and experiment names.
``record WORKLOAD -o TRACE``
    Record a workload execution into a JSONL trace file (a ``.gz``
    suffix writes the compressed ``.jsonl.gz`` format;
    ``--segment-events N`` writes the segmented streaming format).
``convert IN OUT [--segment-events N] [--monolithic]``
    Convert a trace file to the segmented streaming format (or back,
    with ``--monolithic``).  Both formats hold identical traces; the
    segmented one lets ``stats``/``analyze``/``timeline`` run in memory
    bounded by one segment.
``replay TRACE [--scheme S] [--runs N] [--jobs N]``
    Replay a trace under one of the four schemes; prints timing stats.
    ``--jobs N`` runs the repeated seeded replays in parallel.
``transform TRACE [-o OUT]``
    Run the ULCP transformation; prints the breakdown and plan summary.
``debug WORKLOAD | debug --trace TRACE``
    Full PERFPLAY pipeline; prints the recommendation report.
``timeline TRACE [--format ascii|chrome|json] [-o OUT]``
    Per-thread activity lanes: ascii art on the terminal, Chrome
    trace-event JSON for Perfetto/chrome://tracing (ULCP-classified
    slices, waiter→holder flow arrows), or compact columnar JSON for
    programmatic diffing.
``report TRACE|WORKLOAD [TRANSFORMED] [-o REPORT.html]``
    Render the whole debugging session as one self-contained HTML file:
    original-vs-transformed waterfalls, per-lock contention heatmap,
    Eq. 1 / Eq. 2 tables, fused regions, telemetry summary.  A second
    positional trace supplies an already-saved ULCP-free trace for the
    right-hand waterfall.
``profile WORKLOAD | profile --trace TRACE``
    Per-stage wall times of the pipeline (record/intern/scan/classify/
    benign/transform/replay) plus event/section/pair counts.
``experiment NAME [--jobs N] [--cache-dir DIR | --no-cache]``
    Regenerate one of the paper's tables/figures (or ``all``).
    ``--jobs N`` fans independent cells over a worker pool; output is
    bit-for-bit identical to a serial run.  Results are memoized in a
    content-addressed on-disk cache (default ``.repro-cache/``).
``resume RUN_ID``
    Continue an ``experiment --run-id RUN_ID`` run that was killed:
    the journal under the cache root replays the original invocation,
    completed tasks are skipped, and the output is identical to an
    uninterrupted run.
``chaos [--cycles N] [--seed S]``
    Seeded kill->resume soak harness: crash the pipeline at named
    crash-points, resume, and verify cache/journal/trace invariants.
``cache info | cache clear [--cache-dir DIR]``
    Inspect or empty the on-disk result cache.
``sensitivity WORKLOAD``
    Cross-input robustness classification of the recommendations.
``stats TRACE`` / ``locks TRACE``
    Structural summary / per-lock contention profile of a trace.
``advise WORKLOAD`` / ``fix WORKLOAD --lock L --fix F``
    Per-category fix strategies with measured gains; apply one and verify.
``analyze TRACE [--format text|json]``
    Identify and classify the ULCP pairs of a trace (no transformation).
``watch TRACE [--interval S] [--until-stable N] [--format text|json]``
    Live incremental analysis of a segmented trace — including one still
    being written by ``repro record --segment-events`` in another
    process.  Repaints a progress snapshot per folded segment (events,
    ULCP breakdown, per-lock contention, Eq. 2 top-K ranking);
    ``--format json`` prints one canonical snapshot per line instead.
    ``--until-stable N`` stops early once the top-K ranking has held for
    N consecutive snapshots (exit 3); with ``--resume RUN_ID`` the
    fold's checkpoint lets a later ``repro analyze --resume RUN_ID``
    continue without redoing the folded segments.  The final snapshot's
    ``result`` is byte-identical to ``repro analyze --format json``
    (``--final-output PATH`` writes exactly that envelope).
``selfcheck WORKLOAD``
    Verify the pipeline invariants (determinism, exact ELSC replay, ...).
``faults list | faults demo``
    Show the fault-injection sites, or run the end-to-end recovery demo
    (worker crash retried, poison task quarantined, truncated trace
    salvaged).
``telemetry FILE [--format json|prom|summary]``
    Render a saved ``TELEMETRY.json`` artifact.
``serve [--port P] [--workers N] [--cache-dir DIR]``
    Run the multi-tenant HTTP analysis service: ``POST
    /v1/analyze|transform|report|timeline`` (sync or ``mode=async`` with
    ``GET /v1/jobs/<id>`` polling), Prometheus metrics at ``/metrics``.
    Identical concurrent requests share one computation; failures come
    back as the structured v1 error envelope.  See ``docs/SERVICE.md``.
``loadtest [--url URL] [--clients N] [--seed S]``
    Seeded synthetic load (mixed trace sizes, configurable read/compute
    mix) against a running server — or an in-process one with no
    ``--url`` — publishing p50/p99 latency and throughput as
    ``BENCH_serve.json``.  ``--fail-on-errors`` / ``--max-p99-ms`` turn
    it into the CI smoke gate.

Commands printing ``--format json`` output emit the same versioned v1
envelope the HTTP service speaks — ``{"v": 1, "ok": true, "result":
...}`` — built by the same code, so local and served output are
byte-identical for the same input.  Errors print as ``error: [<code>]
<message>`` with the envelope's stable code.

Every command that reads a TRACE file accepts ``--salvage`` to recover
the longest well-formed prefix of a damaged file instead of failing
(``--strict``, the default, rejects any damage).  ``stats``, ``analyze``
and ``timeline`` (chrome/json formats) additionally accept
``--stream``/``--no-stream``: segmented files stream segment by segment
in bounded memory (the default for them), with output identical to a
full load.

Every pipeline command (record/analyze/transform/replay/debug/profile/
experiment/...) accepts ``--telemetry [PATH]`` to collect spans and
metrics for the invocation (``--telemetry-format json|prom|summary``
picks the artifact format; ``--telemetry-timings`` includes wall-clock
span durations, at the price of nondeterministic output).  All pipeline
commands call through the :mod:`repro.api` facade.

Global flags (before the subcommand): ``--log-level
debug|info|warning|error`` and ``--log-json`` configure the package's
structured diagnostics (:mod:`repro.log`) — worker retries and
quarantines, trace-salvage events, run ids from the facade.

Exit codes: 0 success, 1 error, 2 usage, 3 completed but degraded
(quarantined or budget-stopped cells under ``--partial``), 130
interrupted (SIGINT) after journal/telemetry were flushed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import api, log, telemetry
from repro.options import AnalyzeOptions, ReplayOptions, ReportOptions
from repro.perfdebug.framework import PerfPlay
from repro.replay.schemes import ALL_SCHEMES, ELSC_S
from repro.trace import serialize
from repro.workloads import get_workload, workload_names

# Process exit codes, stable across releases (documented in the README):
# 0 clean success, 1 error, 2 usage, 3 completed-but-degraded (quarantined
# or budget-stopped cells under --partial), 130 operator interrupt
# (SIGINT), issued only after journal and telemetry were flushed.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3
EXIT_INTERRUPTED = 130


def _add_workload_options(parser):
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--input-size", default="simlarge",
                        choices=("simsmall", "simmedium", "simlarge"))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)


def _add_format_option(parser, choices=("text", "json"), default="text"):
    parser.add_argument("--format", choices=choices, default=default,
                        help="output format (default: %(default)s)")


def _add_telemetry_options(parser):
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--telemetry", nargs="?", const="", default=None, metavar="PATH",
        help="collect telemetry for this invocation; PATH defaults to "
             "TELEMETRY.json / TELEMETRY.prom next to the cwd ('-' prints "
             "to stdout)",
    )
    group.add_argument(
        "--telemetry-format", choices=telemetry.EXPORT_FORMATS,
        default="json", help="telemetry artifact format (default: json)",
    )
    group.add_argument(
        "--telemetry-timings", action="store_true",
        help="include wall-clock span durations in the artifact "
             "(nondeterministic across runs)",
    )


def _add_trace_options(parser):
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--salvage", action="store_true",
                      help="recover the longest well-formed prefix of a "
                           "damaged trace file instead of failing")
    mode.add_argument("--strict", dest="salvage", action="store_false",
                      help="reject any damage in the trace file (default)")
    parser.set_defaults(salvage=False)


def _add_stream_option(parser):
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--stream", action="store_true", dest="stream",
                      default=None,
                      help="stream the trace segment by segment in bounded "
                           "memory (requires a segmented file; see "
                           "'repro convert')")
    mode.add_argument("--no-stream", action="store_false", dest="stream",
                      help="always load the whole trace (default: stream "
                           "automatically for segmented files)")


def _want_stream(path, args) -> bool:
    """Resolve ``--stream/--no-stream`` (default: auto) for a trace path.

    Auto streams exactly when the file is segmented and ``--salvage`` was
    not requested (salvage hands the damaged file to the tolerant loader,
    which needs the full-load path).  An explicit ``--stream`` on a
    non-segmented file fails loudly rather than silently loading it all.
    """
    from repro.errors import TraceError
    from repro.trace import segments

    stream = getattr(args, "stream", None)
    if stream is False:
        return False
    segmented = segments.is_segmented_file(path)
    if stream is True:
        if getattr(args, "salvage", False):
            raise TraceError("--stream and --salvage are incompatible "
                             "(salvage needs the full-load path)")
        if not segmented:
            raise TraceError(
                f"--stream requires a segmented trace file, but {path} is "
                "monolithic; convert it first: repro convert IN OUT"
            )
        return True
    return segmented and not getattr(args, "salvage", False)


def _load_trace(path, args):
    """Load a trace honouring the command's ``--salvage``/``--strict``."""
    import warnings

    if not getattr(args, "salvage", False):
        return serialize.load(path)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        loaded = serialize.load_trace(path, salvage=True)
    if loaded.report is not None and not loaded.report.clean:
        log.get_logger("cli").warning(
            "salvage: %s", loaded.report.render(),
            extra={"event": "cli.salvage", "source": str(path)},
        )
    return loaded.trace


def _emit_json(result) -> None:
    """Print a v1 success envelope (the CLI's ``--format json`` contract).

    The body is built by the same :mod:`repro.serve.protocol` result
    builders and canonical encoder the HTTP service uses, so local JSON
    output is byte-identical to the server's response for the same input.
    """
    from repro.serve import protocol

    print(protocol.wire_dumps(protocol.ok_envelope(result)), end="")


def _workload_from(args):
    return get_workload(
        args.workload,
        threads=args.threads,
        input_size=args.input_size,
        scale=args.scale,
        seed=args.seed,
    )


def cmd_list(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    print("real-world workloads:")
    for name in workload_names(category="realworld"):
        print(f"  {name}")
    print("PARSEC workloads:")
    for name in workload_names(category="parsec"):
        print(f"  {name}")
    print("bug cases:")
    for name in workload_names(category="bug"):
        print(f"  {name}")
    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def cmd_record(args) -> int:
    recorded = api.record(_workload_from(args), seed=args.seed, full=True)
    if args.segment_events is not None:
        from repro.trace.segments import write_segmented

        write_segmented(
            recorded.trace, args.output, segment_events=args.segment_events
        )
    else:
        serialize.dump(recorded.trace, args.output)
    print(
        f"recorded {args.workload}: {len(recorded.trace)} events, "
        f"{recorded.recorded_time} ns -> {args.output}"
    )
    return 0


def cmd_convert(args) -> int:
    from repro.trace.segments import DEFAULT_SEGMENT_EVENTS, write_segmented

    trace = _load_trace(args.input, args)
    if args.monolithic:
        serialize.dump(trace, args.output)
        print(f"converted {args.input} -> {args.output} (monolithic)")
        return 0
    segment_events = args.segment_events or DEFAULT_SEGMENT_EVENTS
    index = write_segmented(trace, args.output, segment_events=segment_events)
    print(
        f"converted {args.input} -> {args.output} "
        f"({len(index.segments)} segments x {segment_events} events)"
    )
    return 0


def cmd_replay(args) -> int:
    trace = _load_trace(args.trace, args)
    result = api.replay(trace, ReplayOptions(
        scheme=args.scheme, runs=args.runs, seed=args.seed,
        jitter=args.jitter, jobs=args.jobs,
    ))
    if args.runs <= 1:  # a single run comes back as one ReplayResult
        from repro.replay.results import ReplaySeries

        series = ReplaySeries(scheme=args.scheme)
        series.runs.append(result)
    else:
        series = result
    summary = series.summary()
    print(f"scheme={args.scheme} runs={args.runs}")
    print(f"recorded time : {trace.end_time} ns")
    print(f"mean replay   : {summary.mean:.0f} ns")
    print(f"stdev         : {summary.stdev:.1f} ns")
    print(f"spread        : {summary.spread} ns")
    return 0


def cmd_analyze(args) -> int:
    if args.jobs > 1 and args.resume is not None:
        print("error: --jobs fans the scan out, --resume checkpoints it; "
              "pick one", file=sys.stderr)
        return EXIT_USAGE
    if _want_stream(args.trace, args):
        analysis = api.analyze(args.trace, AnalyzeOptions(
            benign_detection=not args.no_benign, stream=True,
            resume=args.resume, checkpoint_every=args.checkpoint_every,
            jobs=args.jobs,
        ))
    else:
        if args.resume is not None:
            print("error: --resume needs a segmented trace file and the "
                  "streaming path (see 'repro convert')", file=sys.stderr)
            return EXIT_USAGE
        if args.jobs > 1:
            print("error: --jobs needs a segmented trace file and the "
                  "streaming path (see 'repro convert')", file=sys.stderr)
            return EXIT_USAGE
        trace = _load_trace(args.trace, args)
        analysis = api.analyze(trace, AnalyzeOptions(
            benign_detection=not args.no_benign, stream=False
        ))
    breakdown = analysis.breakdown
    if args.format == "json":
        from repro.serve import protocol

        _emit_json(protocol.analyze_result(analysis))
        return 0
    print(f"events            : {analysis.events}")
    print(f"critical sections : {len(analysis.sections)}")
    print(f"candidate pairs   : {len(analysis.pairs)}")
    print(
        "ULCP pairs        : "
        f"null-lock={breakdown.null_lock} read-read={breakdown.read_read} "
        f"disjoint-write={breakdown.disjoint_write} benign={breakdown.benign} "
        f"(TLCP={breakdown.tlcp})"
    )
    return 0


def cmd_watch(args) -> int:
    from repro.observe import render_snapshot, snapshot_dumps, watch

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return EXIT_USAGE
    if args.until_stable < 0:
        print("error: --until-stable must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    from pathlib import Path

    from repro.trace import segments as _segments

    target = Path(args.trace)
    if target.exists() and not _segments.is_segmented_file(target):
        print(f"error: {args.trace} is not a segmented trace file; watch "
              "follows the segmented streaming format (see 'repro convert' "
              "or 'repro record --segment-events')", file=sys.stderr)
        return EXIT_USAGE

    is_tty = sys.stdout.isatty()

    def on_snapshot(snap: dict) -> None:
        if args.format == "json":
            sys.stdout.write(snapshot_dumps(snap))
        else:
            if is_tty:
                sys.stdout.write("\x1b[H\x1b[2J")  # repaint in place
            sys.stdout.write(render_snapshot(snap))
        sys.stdout.flush()

    result = watch(
        args.trace,
        on_snapshot=on_snapshot,
        interval=args.interval,
        grace=args.grace,
        until_stable=args.until_stable,
        top_k=args.top,
        benign_detection=not args.no_benign,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
    )
    if result.complete and args.final_output:
        from repro.serve import protocol

        Path(args.final_output).write_text(
            protocol.wire_dumps(
                protocol.ok_envelope(result.final_snapshot["result"])
            ),
            encoding="utf-8",
        )
    if result.stalled:
        print(f"watch: {args.trace} stopped growing without a footer "
              f"(waited {args.grace:.0f}s); partial results stand",
              file=sys.stderr)
        return EXIT_PARTIAL
    if result.early_stopped:
        note = " (checkpoint saved)" if result.checkpoint_saved else ""
        print(f"watch: ranking stable for {args.until_stable} consecutive "
              f"snapshots after {result.segments} segments; "
              f"stopping early{note}", file=sys.stderr)
        return EXIT_PARTIAL
    return EXIT_OK


def cmd_transform(args) -> int:
    trace = _load_trace(args.trace, args)
    result = api.transform(trace, full=True)
    breakdown = result.analysis.breakdown
    print(f"critical sections : {len(result.sections)}")
    print(
        "ULCP pairs        : "
        f"null-lock={breakdown.null_lock} read-read={breakdown.read_read} "
        f"disjoint-write={breakdown.disjoint_write} benign={breakdown.benign} "
        f"(TLCP={breakdown.tlcp})"
    )
    print(f"causal edges      : {len(result.topology.causal_edges())}")
    print(f"order edges       : {len(result.topology.order_edges())}")
    print(f"removed sections  : {result.removed_sections}")
    print(f"auxiliary locks   : {len(result.plan.aux_locks)}")
    if args.output:
        serialize.dump(result.trace, args.output)
        print(f"ULCP-free trace -> {args.output}")
    return 0


def cmd_debug(args) -> int:
    if args.trace:
        source = _load_trace(args.trace, args)
    else:
        if not args.workload:
            print("debug: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        source = _workload_from(args)
    report = api.debug(source, seed=args.seed, jitter=args.jitter)
    print(report.render())
    return 0


def cmd_profile(args) -> int:
    from repro.profiling import profile_pipeline

    if args.trace:
        trace = _load_trace(args.trace, args)
        report = profile_pipeline(
            trace=trace, seed=args.seed, replay=not args.no_replay
        )
    else:
        if not args.workload:
            print("profile: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        report = profile_pipeline(
            workload=_workload_from(args),
            seed=args.seed,
            replay=not args.no_replay,
        )
    if args.format == "json":
        from repro.serve import protocol

        _emit_json(protocol.profile_result(report))
        return 0
    print(report.render())
    return 0


def cmd_timeline(args) -> int:
    # the ascii renderer needs whole-thread views, so only the chrome/json
    # formats have a streaming path
    if args.format != "ascii" and _want_stream(args.trace, args):
        return _cmd_timeline_stream(args)
    trace = _load_trace(args.trace, args)
    if args.format == "ascii":
        from repro.trace.render import render_timeline

        print(render_timeline(trace, width=args.width))
        return 0

    from repro.analysis.pairs import analyze_pairs
    from repro.timeline import build_timeline, to_chrome_json, to_columnar_json

    analysis = analyze_pairs(trace, benign_detection=not args.no_benign)
    timeline = build_timeline(trace, analysis=analysis)
    return _emit_timeline(timeline, args)


def _cmd_timeline_stream(args) -> int:
    from repro.timeline import build_timeline_segments
    from repro.trace.segments import open_segmented

    analysis = api.analyze(
        args.trace, benign_detection=not args.no_benign, stream=True
    )
    with open_segmented(args.trace) as reader:
        timeline = build_timeline_segments(reader, analysis=analysis)
    return _emit_timeline(timeline, args)


def _emit_timeline(timeline, args) -> int:
    from repro.timeline import to_chrome_json, to_columnar_json

    text = (
        to_chrome_json(timeline)
        if args.format == "chrome"
        else to_columnar_json(timeline)
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"timeline ({args.format}) -> {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_report(args) -> int:
    from pathlib import Path

    source = args.trace
    if Path(source).exists():
        source = _load_trace(source, args)
    transformed = (
        _load_trace(args.transformed, args) if args.transformed else None
    )
    html_text = api.report(
        source,
        transformed,
        ReportOptions(
            threads=args.threads,
            input_size=args.input_size,
            scale=args.scale,
            seed=args.seed,
        ),
        output=args.output,
        telemetry=telemetry.active(),
    )
    print(f"report -> {args.output} ({len(html_text)} bytes)", file=sys.stderr)
    return 0


def cmd_stats(args) -> int:
    from repro.trace.stats import stats_segments, trace_stats

    if _want_stream(args.trace, args):
        from repro.trace.segments import open_segmented

        with open_segmented(args.trace) as reader:
            stats = stats_segments(reader)
    else:
        trace = _load_trace(args.trace, args)
        stats = trace_stats(trace)
    if args.format == "json":
        from repro.serve import protocol

        _emit_json(protocol.stats_result(stats))
        return 0
    print(stats.render())
    return 0


def cmd_advise(args) -> int:
    from repro.perfdebug.advisor import advise

    if args.trace:
        trace = _load_trace(args.trace, args)
    else:
        if not args.workload:
            print("advise: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        trace = api.record(_workload_from(args), seed=args.seed)
    print(advise(trace).render())
    return 0


def cmd_locks(args) -> int:
    from repro.perfdebug.lockstats import profile_locks, render_lock_profiles

    trace = _load_trace(args.trace, args)
    profiles = profile_locks(trace)
    if args.format == "json":
        from repro.serve import protocol

        _emit_json(protocol.locks_result(profiles, limit=args.limit))
        return 0
    print(render_lock_profiles(profiles, limit=args.limit))
    return 0


def cmd_fix(args) -> int:
    from repro.perfdebug.rewrite import FIXES, try_fix

    if args.trace:
        trace = _load_trace(args.trace, args)
    else:
        if not args.workload:
            print("fix: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        trace = api.record(_workload_from(args), seed=args.seed)
    if args.fix not in FIXES:
        print(f"unknown fix {args.fix!r}; known: {', '.join(sorted(FIXES))}",
              file=sys.stderr)
        return 2
    outcome = try_fix(trace, args.lock, args.fix)
    print(outcome)
    return 0


def cmd_selfcheck(args) -> int:
    from repro.selfcheck import run_selfcheck

    if args.trace:
        report = run_selfcheck(trace=_load_trace(args.trace, args))
    else:
        if not args.workload:
            print("selfcheck: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        report = run_selfcheck(_workload_from(args))
    print(report.render())
    return 0 if report.ok else 1


def cmd_compare(args) -> int:
    from repro.perfdebug.compare import compare_reports

    perfplay = PerfPlay()
    before = perfplay.analyze(_load_trace(args.before, args))
    after = perfplay.analyze(_load_trace(args.after, args))
    comparison = compare_reports(before, after)
    print(comparison.render())
    return 0


def _experiment_spec(args) -> dict:
    """The resumable description of an ``experiment`` invocation.

    Everything needed to re-run the command identically lives here; the
    journal stores it in its header so ``repro resume RUN_ID`` can
    rebuild the invocation without the original command line.
    """
    return {
        "name": args.name,
        "jobs": args.jobs,
        "task_timeout": args.task_timeout,
        "retries": args.retries,
        "partial": args.partial,
        "fault": list(args.fault),
        "fault_seed": args.fault_seed,
        "deadline": args.deadline,
        "max_rss": args.max_rss,
    }


def _run_experiment(spec: dict, root, run_id=None) -> int:
    """Run experiment(s) per ``spec`` — shared by experiment and resume.

    With ``run_id`` (and a cache root to keep the ledger in), progress is
    journaled task by task: a killed run re-invoked as ``repro resume
    RUN_ID`` skips every task whose result the journal already holds and
    produces output identical to an uninterrupted run.
    """
    import contextlib

    from repro import faults
    from repro.experiments import ALL_EXPERIMENTS
    from repro.runner import ExecPolicy, RunBudget, cache, use_budget
    from repro.runner import journal as journal_mod
    from repro.runner.journal import use_journal
    from repro.runner.pool import RUN_STATS

    if spec["name"] == "all":
        names = list(ALL_EXPERIMENTS)
    elif spec["name"] in ALL_EXPERIMENTS:
        names = [spec["name"]]
    else:
        print(f"unknown experiment {spec['name']!r}; known: "
              f"{', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return EXIT_USAGE
    policy = None
    if spec["partial"] or spec["retries"] or spec["task_timeout"] is not None:
        policy = ExecPolicy(
            timeout=spec["task_timeout"],
            retries=spec["retries"],
            partial=spec["partial"],
        )
    injection = contextlib.nullcontext()
    if spec["fault"]:
        plan = faults.FaultPlan.parse(spec["fault"], seed=spec["fault_seed"])
        injection = faults.use_plan(plan)
    budget_ctx = contextlib.nullcontext()
    if spec.get("deadline") is not None or spec.get("max_rss") is not None:
        budget_ctx = use_budget(RunBudget(
            deadline=spec.get("deadline"), max_rss_mb=spec.get("max_rss"),
        ))
    RUN_STATS.reset()
    with injection, cache.use_cache(root), budget_ctx:
        journal_ctx = contextlib.nullcontext()
        if run_id is not None:
            store = cache.active()
            if store is None:
                print("error: --run-id needs the on-disk cache "
                      "(drop --no-cache)", file=sys.stderr)
                return EXIT_USAGE
            run_id = journal_mod.sanitize_run_id(run_id)
            if journal_mod.journal_path(store.root, run_id).exists():
                journal = journal_mod.RunJournal.attach(store.root, run_id)
            else:
                journal = journal_mod.RunJournal.create(store.root, run_id, spec)
            journal_ctx = contextlib.ExitStack()
            journal_ctx.enter_context(journal)
            journal_ctx.enter_context(use_journal(journal))
        with journal_ctx:
            for name in names:
                ALL_EXPERIMENTS[name].main(jobs=spec["jobs"], policy=policy)
                print()
    return EXIT_PARTIAL if RUN_STATS.degraded() else EXIT_OK


def cmd_experiment(args) -> int:
    from repro.runner import cache

    if args.no_cache:
        root = None
    elif args.cache_dir:
        root = args.cache_dir
    else:
        root = cache.default_cache_dir()
    if args.run_id is not None and root is None:
        print("error: --run-id needs the on-disk cache (drop --no-cache)",
              file=sys.stderr)
        return EXIT_USAGE
    return _run_experiment(_experiment_spec(args), root, run_id=args.run_id)


def cmd_resume(args) -> int:
    from repro.runner import cache
    from repro.runner import journal as journal_mod

    root = args.cache_dir or cache.default_cache_dir()
    from pathlib import Path

    run_id = journal_mod.sanitize_run_id(args.run_id)
    path = journal_mod.journal_path(Path(root), run_id)
    if not path.exists():
        known = journal_mod.list_runs(Path(root))
        hint = f" (known runs: {', '.join(known)})" if known else ""
        print(f"error: no journal for run {run_id!r} under {root}{hint}",
              file=sys.stderr)
        return EXIT_USAGE
    header, _events, skipped = journal_mod.read_journal(path)
    if skipped:
        log.get_logger("cli").warning(
            "journal %s: %d malformed line(s) ignored", run_id, skipped,
            extra={"event": "cli.journal_skipped", "run_id": run_id},
        )
    spec = dict(header.get("spec") or {})
    if not spec.get("name"):
        print(f"error: journal {run_id!r} has no resumable experiment spec",
              file=sys.stderr)
        return EXIT_USAGE
    if args.jobs is not None:
        # worker count does not affect results, so it is fair game to
        # override on resume; everything else must replay the original
        spec["jobs"] = args.jobs
    print(f"resuming run {run_id}: experiment {spec['name']}")
    return _run_experiment(spec, root, run_id=run_id)


def cmd_chaos(args) -> int:
    from repro.chaos.harness import OPS, run_soak

    unknown = [op for op in (args.ops or ()) if op not in OPS]
    if unknown:
        print(f"error: unknown chaos ops {unknown}; known: {list(OPS)}",
              file=sys.stderr)
        return EXIT_USAGE
    report = run_soak(
        cycles=args.cycles,
        seed=args.seed,
        ops=args.ops or None,
        keep=args.keep,
    )
    print(report.render())
    if args.report:
        from pathlib import Path

        Path(args.report).write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"chaos report -> {args.report}", file=sys.stderr)
    return EXIT_OK if not report.violations else EXIT_ERROR


def cmd_faults(args) -> int:
    from repro import faults

    if args.action == "list":
        print("fault injection sites (use with: experiment --fault SPEC,")
        print("spec syntax: site[@key][:nth=N,times=N,attempt=N,rate=F]):")
        width = max(len(site) for site in faults.SITES)
        for site, description in faults.SITES.items():
            print(f"  {site:<{width}}  {description}")
        return 0
    if args.action == "demo":
        from repro.faults.demo import run_demo

        run_demo(
            seed=args.seed,
            jobs=args.jobs,
            scale=args.scale,
            enable_faults=not args.no_faults,
        )
        return 0
    print(f"unknown faults action {args.action!r}", file=sys.stderr)
    return 2


def cmd_cache(args) -> int:
    from repro.runner import TraceCache, cache

    root = args.cache_dir or cache.default_cache_dir()
    store = TraceCache(root)
    if args.action == "info":
        print(store.info().render())
    elif args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached entries from {store.root}")
    return 0


def cmd_telemetry(args) -> int:
    data = telemetry.load(args.file)
    if args.format == "json":
        print(telemetry.to_json(data), end="")
    elif args.format == "prom":
        print(telemetry.to_prometheus(data), end="")
    else:
        print(telemetry.render_summary(data))
    return 0


def cmd_sensitivity(args) -> int:
    from repro.perfdebug.sensitivity import sweep

    result = sweep(
        args.workload,
        thread_counts=tuple(args.threads_list),
        input_sizes=tuple(args.sizes),
        scale=args.scale,
    )
    print(result.render())
    return 0


def cmd_serve(args) -> int:
    import contextlib

    from repro.runner import ExecPolicy, cache
    from repro.serve.server import serve

    policy = ExecPolicy(
        timeout=args.task_timeout, retries=args.retries, partial=True
    )
    cache_ctx = (
        cache.use_cache(args.cache_dir) if args.cache_dir
        else contextlib.nullcontext()
    )
    with cache_ctx:
        server = serve(
            host=args.host,
            port=args.port,
            policy=policy,
            max_workers=args.workers,
            keep_jobs=args.keep_jobs,
            max_body_mb=args.max_body_mb,
            sync_timeout=args.sync_timeout,
            spool_dir=args.spool_dir,
        )
        print(f"repro serve: listening on {server.url} "
              f"(workers={args.workers}, ctrl-c to stop)", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("repro serve: shutting down", file=sys.stderr)
        finally:
            server.close()
    return EXIT_OK


def cmd_loadtest(args) -> int:
    from repro.serve.loadtest import run_loadtest

    report = run_loadtest(
        args.url,
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        read_mix=args.read_mix,
        sizes=tuple(args.sizes),
        timeout=args.timeout,
        tenants=args.tenants,
        out=args.output,
    )
    overall = report.latency_ms.get("all", {})
    print(f"clients           : {report.clients}")
    print(f"requests          : {report.requests}")
    print(f"wall time         : {report.wall_seconds:.2f} s")
    print(f"throughput        : {report.throughput_rps:.1f} req/s")
    print(f"latency p50/p99   : {overall.get('p50_ms', 0)} / "
          f"{overall.get('p99_ms', 0)} ms")
    print(f"dedup             : {report.dedup or '{}'}")
    print(f"error envelopes   : {report.error_envelopes}")
    print(f"transport errors  : {report.transport_errors}")
    print(f"event streams     : {report.streams}")
    if args.output:
        print(f"report -> {args.output}", file=sys.stderr)
    if report.transport_errors:
        print(f"error: {report.transport_errors} request(s) lost at the "
              "transport layer", file=sys.stderr)
        return EXIT_ERROR
    if report.streams.get("dropped"):
        print(f"error: {report.streams['dropped']} event stream(s) ended "
              "without the terminal result frame (gate: 0)", file=sys.stderr)
        return EXIT_ERROR
    if args.fail_on_errors and report.error_envelopes:
        print(f"error: {report.error_envelopes} structured error "
              "envelope(s) received (gate: 0)", file=sys.stderr)
        return EXIT_ERROR
    if args.max_p99_ms is not None and overall \
            and overall["p99_ms"] > args.max_p99_ms:
        print(f"error: overall p99 {overall['p99_ms']} ms exceeds the "
              f"--max-p99-ms gate of {args.max_p99_ms} ms", file=sys.stderr)
        return EXIT_ERROR
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PERFPLAY reproduction: replay-based ULCP debugging",
    )
    parser.add_argument("--log-level", choices=log.LEVELS, default="warning",
                        help="diagnostic verbosity (default: %(default)s)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit diagnostics as one JSON object per line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads and experiments")

    p = sub.add_parser("record", help="record a workload into a trace file")
    p.add_argument("workload")
    _add_workload_options(p)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--segment-events", type=int, default=None, metavar="N",
                   help="write the segmented streaming format, N events "
                        "per segment (default: monolithic)")
    _add_telemetry_options(p)

    p = sub.add_parser(
        "convert",
        help="convert a trace file between monolithic and segmented formats",
    )
    p.add_argument("input")
    p.add_argument("output")
    _add_trace_options(p)
    p.add_argument("--segment-events", type=int, default=None, metavar="N",
                   help="events per segment (default: 65536)")
    p.add_argument("--monolithic", action="store_true",
                   help="write the monolithic format instead of segmented")

    p = sub.add_parser("replay", help="replay a trace file")
    p.add_argument("trace")
    _add_trace_options(p)
    p.add_argument("--scheme", default=ELSC_S, choices=ALL_SCHEMES)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jitter", type=float, default=0.02)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the repeated replays")
    _add_telemetry_options(p)

    p = sub.add_parser("analyze",
                       help="identify and classify ULCP pairs in a trace")
    p.add_argument("trace")
    _add_trace_options(p)
    _add_stream_option(p)
    p.add_argument("--no-benign", action="store_true",
                   help="skip the reversed-replay benign test "
                        "(conflicting pairs count as TLCPs)")
    p.add_argument("--resume", metavar="RUN_ID", default=None,
                   help="checkpoint the streaming scan under this run id "
                        "and resume it from the last checkpoint if one "
                        "exists (segmented files only)")
    p.add_argument("--checkpoint-every", type=int, default=16, metavar="N",
                   help="segments between checkpoints (default: %(default)s)")
    p.add_argument("--jobs", type=int, default=1,
                   help="affinity-pinned worker processes for the "
                        "streaming scan (segmented files only)")
    _add_format_option(p)
    _add_telemetry_options(p)

    p = sub.add_parser(
        "watch",
        help="live incremental analysis of a (possibly still growing) "
             "segmented trace",
    )
    p.add_argument("trace", help="segmented trace file; may still be "
                                 "written by another process")
    p.add_argument("--interval", type=float, default=0.5, metavar="SECONDS",
                   help="poll interval while the file is quiet "
                        "(default: %(default)s)")
    p.add_argument("--grace", type=float, default=30.0, metavar="SECONDS",
                   help="give up (exit 3) after this long without growth "
                        "and no footer; 0 waits forever "
                        "(default: %(default)s)")
    p.add_argument("--until-stable", type=int, default=0, metavar="N",
                   help="stop early (exit 3) once the top-K ranking held "
                        "for N consecutive snapshots (default: run to "
                        "completion)")
    p.add_argument("--top", type=int, default=5, metavar="K",
                   help="ranking depth for display and the stability "
                        "check (default: %(default)s)")
    p.add_argument("--no-benign", action="store_true",
                   help="skip the reversed-replay benign test in the "
                        "final pass (conflicting pairs count as TLCPs)")
    p.add_argument("--resume", metavar="RUN_ID", default=None,
                   help="checkpoint the fold under this run id so 'repro "
                        "analyze --resume RUN_ID' continues after an "
                        "early stop without redoing folded segments")
    p.add_argument("--checkpoint-every", type=int, default=16, metavar="N",
                   help="segments between checkpoints (default: "
                        "%(default)s)")
    p.add_argument("--final-output", metavar="PATH", default=None,
                   help="also write the final v1 result envelope here "
                        "(byte-identical to 'repro analyze --format "
                        "json')")
    _add_format_option(p)
    _add_telemetry_options(p)

    p = sub.add_parser("transform", help="ULCP-transform a trace file")
    p.add_argument("trace")
    _add_trace_options(p)
    p.add_argument("-o", "--output")
    _add_telemetry_options(p)

    p = sub.add_parser("debug", help="full PERFPLAY pipeline")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)
    p.add_argument("--jitter", type=float, default=0.0)
    _add_telemetry_options(p)

    p = sub.add_parser("profile",
                       help="per-stage wall times of the analysis pipeline")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)
    p.add_argument("--no-replay", action="store_true",
                   help="skip the final replay stage")
    _add_format_option(p)
    _add_telemetry_options(p)

    p = sub.add_parser(
        "timeline",
        help="per-thread timeline of a trace (ascii, Chrome JSON, columnar)",
    )
    p.add_argument("trace")
    _add_trace_options(p)
    _add_stream_option(p)
    p.add_argument("--width", type=int, default=72,
                   help="lane width for --format ascii")
    _add_format_option(p, choices=("ascii", "chrome", "json"), default="ascii")
    p.add_argument("-o", "--output",
                   help="write chrome/json output to a file instead of stdout")
    p.add_argument("--no-benign", action="store_true",
                   help="skip the reversed-replay benign test when "
                        "classifying intervals (faster, less precise colors)")

    p = sub.add_parser(
        "report", help="render a self-contained HTML debugging report"
    )
    p.add_argument("trace", help="trace file or registered workload name")
    p.add_argument("transformed", nargs="?",
                   help="optional saved ULCP-free trace for the right-hand "
                        "waterfall (default: the session's own transform)")
    _add_trace_options(p)
    _add_workload_options(p)
    p.add_argument("-o", "--output", default="REPORT.html",
                   help="output file (default: %(default)s)")
    _add_telemetry_options(p)

    p = sub.add_parser("stats", help="structural summary of a trace")
    p.add_argument("trace")
    _add_trace_options(p)
    _add_stream_option(p)
    _add_format_option(p)

    p = sub.add_parser("advise", help="per-category fix strategies with gains")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)
    _add_telemetry_options(p)

    p = sub.add_parser("locks", help="per-lock contention profile of a trace")
    p.add_argument("trace")
    _add_trace_options(p)
    p.add_argument("--limit", type=int, default=10)
    _add_format_option(p)

    p = sub.add_parser("fix", help="apply a suggested fix to a trace and measure")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    p.add_argument("--lock", required=True)
    p.add_argument("--fix", required=True)
    _add_workload_options(p)
    _add_telemetry_options(p)

    p = sub.add_parser("compare", help="diff two traces' debug reports (before/after a fix)")
    p.add_argument("before")
    p.add_argument("after")
    _add_trace_options(p)
    _add_telemetry_options(p)

    p = sub.add_parser("selfcheck", help="verify pipeline invariants on an input")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)
    _add_telemetry_options(p)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for independent cells "
                        "(0 = one per CPU); output matches a serial run")
    p.add_argument("--cache-dir",
                   help="result cache directory (default: .repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    p.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-clock budget; a cell past it is "
                        "terminated (and retried, if --retries)")
    p.add_argument("--retries", type=int, default=0,
                   help="retry budget per cell for crashes/timeouts")
    p.add_argument("--partial", action="store_true",
                   help="render failed cells as n/a instead of aborting")
    p.add_argument("--fault", action="append", default=[], metavar="SPEC",
                   help="inject a fault (repeatable); see 'repro faults list'")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for rate-based fault rules")
    p.add_argument("--run-id", default=None, metavar="RUN_ID",
                   help="journal progress under this id so a killed run "
                        "can continue with 'repro resume RUN_ID' "
                        "(needs the cache)")
    p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget for the whole run; tasks past "
                        "it stop (quarantined under --partial)")
    p.add_argument("--max-rss", type=float, default=None, metavar="MB",
                   help="peak-RSS watermark; memory pressure degrades "
                        "full loads to the streaming path")
    _add_telemetry_options(p)

    p = sub.add_parser(
        "resume", help="continue an interrupted journaled experiment run"
    )
    p.add_argument("run_id", help="run id given to experiment --run-id")
    p.add_argument("--cache-dir",
                   help="cache directory holding the journal "
                        "(default: .repro-cache)")
    p.add_argument("--jobs", type=int, default=None,
                   help="override the worker count (results are identical "
                        "for any value)")
    _add_telemetry_options(p)

    p = sub.add_parser(
        "chaos",
        help="seeded kill/resume soak: crash the pipeline at random "
             "crash-points and verify every invariant after each resume",
    )
    p.add_argument("--cycles", type=int, default=25,
                   help="kill->resume cycles to run (default: %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the crash-point schedule")
    p.add_argument("--ops", nargs="+", default=None,
                   metavar="OP", help="restrict to these operations "
                   "(default: all; see repro.chaos.harness.OPS)")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="also write the soak report as JSON")
    p.add_argument("--keep", action="store_true",
                   help="keep each cycle's scratch directory (default: "
                        "only cycles with violations are kept)")

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=("info", "clear"))
    p.add_argument("--cache-dir",
                   help="cache directory (default: .repro-cache)")

    p = sub.add_parser("sensitivity", help="cross-input robustness sweep")
    p.add_argument("workload")
    p.add_argument("--threads-list", type=int, nargs="+", default=[2, 4])
    p.add_argument("--sizes", nargs="+", default=["simsmall", "simlarge"])
    p.add_argument("--scale", type=float, default=1.0)
    _add_telemetry_options(p)

    p = sub.add_parser("telemetry", help="render a saved telemetry artifact")
    p.add_argument("file", help="a TELEMETRY.json written by --telemetry")
    _add_format_option(p, choices=telemetry.EXPORT_FORMATS, default="summary")

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP analysis service (v1 wire API)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: %(default)s)")
    p.add_argument("--port", type=int, default=8787,
                   help="bind port, 0 = any free port (default: %(default)s)")
    p.add_argument("--workers", type=int, default=16,
                   help="job-manager worker threads (default: %(default)s)")
    p.add_argument("--keep-jobs", type=int, default=512, metavar="N",
                   help="finished jobs retained for polling "
                        "(default: %(default)s)")
    p.add_argument("--max-body-mb", type=float, default=64.0, metavar="MB",
                   help="largest accepted request body (default: %(default)s)")
    p.add_argument("--sync-timeout", type=float, default=600.0,
                   metavar="SECONDS",
                   help="longest a sync request waits for its job "
                        "(default: %(default)s)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-job compute budget (quarantined past it)")
    p.add_argument("--retries", type=int, default=1,
                   help="retry budget for crashed/faulted jobs "
                        "(default: %(default)s)")
    p.add_argument("--cache-dir", default=None,
                   help="back responses with the on-disk cache so a "
                        "restarted server answers repeats from disk")
    p.add_argument("--spool-dir", default=None,
                   help="directory for uploaded traces (default: a "
                        "temporary directory)")

    p = sub.add_parser(
        "loadtest",
        help="seeded synthetic load against the service; writes "
             "BENCH_serve.json",
    )
    p.add_argument("--url", default=None,
                   help="server base URL (default: start an in-process "
                        "server on an ephemeral port)")
    p.add_argument("--clients", type=int, default=32,
                   help="concurrent clients (default: %(default)s)")
    p.add_argument("--requests", type=int, default=6, metavar="N",
                   help="requests per client (default: %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the per-client op mix (default: 0)")
    p.add_argument("--read-mix", type=float, default=0.5, metavar="FRACTION",
                   help="fraction of read (health/metrics/poll) requests "
                        "(default: %(default)s)")
    p.add_argument("--sizes", nargs="+",
                   default=["small", "medium", "large"],
                   choices=("small", "medium", "large"),
                   help="trace sizes in the upload corpus")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-request client timeout (default: %(default)s)")
    p.add_argument("--tenants", type=int, default=4,
                   help="distinct X-Repro-Tenant values (default: %(default)s)")
    p.add_argument("-o", "--output", default="BENCH_serve.json",
                   help="report file (default: %(default)s)")
    p.add_argument("--fail-on-errors", action="store_true",
                   help="exit 1 if any structured error envelope comes back "
                        "(the CI smoke gate)")
    p.add_argument("--max-p99-ms", type=float, default=None, metavar="MS",
                   help="exit 1 if overall p99 latency exceeds this")

    p = sub.add_parser("faults",
                       help="fault-injection sites and the recovery demo")
    p.add_argument("action", choices=("list", "demo"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--no-faults", action="store_true",
                   help="run the demo pipeline with no faults installed "
                        "(its output must match a plain serial run)")

    return parser


COMMANDS = {
    "list": cmd_list,
    "record": cmd_record,
    "convert": cmd_convert,
    "replay": cmd_replay,
    "analyze": cmd_analyze,
    "watch": cmd_watch,
    "transform": cmd_transform,
    "debug": cmd_debug,
    "telemetry": cmd_telemetry,
    "profile": cmd_profile,
    "timeline": cmd_timeline,
    "report": cmd_report,
    "stats": cmd_stats,
    "advise": cmd_advise,
    "locks": cmd_locks,
    "fix": cmd_fix,
    "compare": cmd_compare,
    "selfcheck": cmd_selfcheck,
    "experiment": cmd_experiment,
    "resume": cmd_resume,
    "chaos": cmd_chaos,
    "cache": cmd_cache,
    "sensitivity": cmd_sensitivity,
    "faults": cmd_faults,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
}


def _export_telemetry(sink, args) -> None:
    """Write (or print) the invocation's telemetry artifact."""
    fmt = args.telemetry_format
    timings = args.telemetry_timings
    target = args.telemetry
    if target == "-" or (target == "" and fmt == "summary"):
        if fmt == "json":
            print(telemetry.to_json(sink, timings=timings), end="")
        elif fmt == "prom":
            print(telemetry.to_prometheus(sink, timings=timings), end="")
        else:
            print(telemetry.render_summary(sink))
        return
    from repro.telemetry.export import DEFAULT_PATHS

    path = target or DEFAULT_PATHS.get(fmt, "TELEMETRY.json")
    written = telemetry.write(sink, path, fmt=fmt, timings=timings)
    print(f"telemetry -> {written}", file=sys.stderr)


def main(argv=None) -> int:
    from repro.errors import ReproError, RunInterrupted

    args = build_parser().parse_args(argv)
    log.configure(args.log_level, json_lines=args.log_json)
    collect = getattr(args, "telemetry", None) is not None
    sink = telemetry.Telemetry() if collect else None
    try:
        with telemetry.use_telemetry(sink) if collect else _null_context():
            code = COMMANDS[args.command](args)
        if collect:
            _export_telemetry(sink, args)
        return code
    except (KeyboardInterrupt, RunInterrupted) as exc:
        # the pool already terminated its workers and flushed the run
        # journal; keep the telemetry artifact too, then exit 130 (the
        # conventional SIGINT code) instead of a raw traceback
        if collect:
            _export_telemetry(sink, args)
        note = str(exc) if isinstance(exc, RunInterrupted) else "interrupted"
        print(f"interrupted: {note}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        # the whole taxonomy renders as one clean line carrying the same
        # stable machine-readable code the HTTP error envelope uses
        print(f"error: [{exc.code}] {exc}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as exc:
        print(f"error: {exc.strerror}: {exc.filename}", file=sys.stderr)
        return EXIT_ERROR


def _null_context():
    import contextlib

    return contextlib.nullcontext()


if __name__ == "__main__":
    sys.exit(main())
