"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show registered workloads (by category) and experiment names.
``record WORKLOAD -o TRACE``
    Record a workload execution into a JSONL trace file (a ``.gz``
    suffix writes the compressed ``.jsonl.gz`` format).
``replay TRACE [--scheme S] [--runs N] [--jobs N]``
    Replay a trace under one of the four schemes; prints timing stats.
    ``--jobs N`` runs the repeated seeded replays in parallel.
``transform TRACE [-o OUT]``
    Run the ULCP transformation; prints the breakdown and plan summary.
``debug WORKLOAD | debug --trace TRACE``
    Full PERFPLAY pipeline; prints the recommendation report.
``timeline TRACE``
    ASCII per-thread activity lanes.
``profile WORKLOAD | profile --trace TRACE``
    Per-stage wall times of the pipeline (record/intern/scan/classify/
    benign/transform/replay) plus event/section/pair counts.
``experiment NAME [--jobs N] [--cache-dir DIR | --no-cache]``
    Regenerate one of the paper's tables/figures (or ``all``).
    ``--jobs N`` fans independent cells over a worker pool; output is
    bit-for-bit identical to a serial run.  Results are memoized in a
    content-addressed on-disk cache (default ``.repro-cache/``).
``cache info | cache clear [--cache-dir DIR]``
    Inspect or empty the on-disk result cache.
``sensitivity WORKLOAD``
    Cross-input robustness classification of the recommendations.
``stats TRACE`` / ``locks TRACE``
    Structural summary / per-lock contention profile of a trace.
``advise WORKLOAD`` / ``fix WORKLOAD --lock L --fix F``
    Per-category fix strategies with measured gains; apply one and verify.
``selfcheck WORKLOAD``
    Verify the pipeline invariants (determinism, exact ELSC replay, ...).
``faults list | faults demo``
    Show the fault-injection sites, or run the end-to-end recovery demo
    (worker crash retried, poison task quarantined, truncated trace
    salvaged).

Every command that reads a TRACE file accepts ``--salvage`` to recover
the longest well-formed prefix of a damaged file instead of failing
(``--strict``, the default, rejects any damage).
"""

from __future__ import annotations

import argparse
import sys

from repro.perfdebug.framework import PerfPlay
from repro.replay.replayer import Replayer
from repro.replay.schemes import ALL_SCHEMES, ELSC_S
from repro.trace import serialize
from repro.workloads import get_workload, workload_names


def _add_workload_options(parser):
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--input-size", default="simlarge",
                        choices=("simsmall", "simmedium", "simlarge"))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)


def _add_trace_options(parser):
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--salvage", action="store_true",
                      help="recover the longest well-formed prefix of a "
                           "damaged trace file instead of failing")
    mode.add_argument("--strict", dest="salvage", action="store_false",
                      help="reject any damage in the trace file (default)")
    parser.set_defaults(salvage=False)


def _load_trace(path, args):
    """Load a trace honouring the command's ``--salvage``/``--strict``."""
    import warnings

    if not getattr(args, "salvage", False):
        return serialize.load(path)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        loaded = serialize.load_trace(path, salvage=True)
    if loaded.report is not None and not loaded.report.clean:
        print(f"salvage: {loaded.report.render()}", file=sys.stderr)
    return loaded.trace


def _workload_from(args):
    return get_workload(
        args.workload,
        threads=args.threads,
        input_size=args.input_size,
        scale=args.scale,
        seed=args.seed,
    )


def cmd_list(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    print("real-world workloads:")
    for name in workload_names(category="realworld"):
        print(f"  {name}")
    print("PARSEC workloads:")
    for name in workload_names(category="parsec"):
        print(f"  {name}")
    print("bug cases:")
    for name in workload_names(category="bug"):
        print(f"  {name}")
    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def cmd_record(args) -> int:
    workload = _workload_from(args)
    recorded = workload.record()
    serialize.dump(recorded.trace, args.output)
    print(
        f"recorded {args.workload}: {len(recorded.trace)} events, "
        f"{recorded.recorded_time} ns -> {args.output}"
    )
    return 0


def cmd_replay(args) -> int:
    trace = _load_trace(args.trace, args)
    replayer = Replayer(jitter=args.jitter)
    series = replayer.replay_many(
        trace, scheme=args.scheme, runs=args.runs, base_seed=args.seed,
        jobs=args.jobs,
    )
    summary = series.summary()
    print(f"scheme={args.scheme} runs={args.runs}")
    print(f"recorded time : {trace.end_time} ns")
    print(f"mean replay   : {summary.mean:.0f} ns")
    print(f"stdev         : {summary.stdev:.1f} ns")
    print(f"spread        : {summary.spread} ns")
    return 0


def cmd_transform(args) -> int:
    from repro.analysis.transform import transform

    trace = _load_trace(args.trace, args)
    result = transform(trace)
    breakdown = result.analysis.breakdown
    print(f"critical sections : {len(result.sections)}")
    print(
        "ULCP pairs        : "
        f"null-lock={breakdown.null_lock} read-read={breakdown.read_read} "
        f"disjoint-write={breakdown.disjoint_write} benign={breakdown.benign} "
        f"(TLCP={breakdown.tlcp})"
    )
    print(f"causal edges      : {len(result.topology.causal_edges())}")
    print(f"order edges       : {len(result.topology.order_edges())}")
    print(f"removed sections  : {result.removed_sections}")
    print(f"auxiliary locks   : {len(result.plan.aux_locks)}")
    if args.output:
        serialize.dump(result.trace, args.output)
        print(f"ULCP-free trace -> {args.output}")
    return 0


def cmd_debug(args) -> int:
    perfplay = PerfPlay(jitter=args.jitter)
    if args.trace:
        trace = _load_trace(args.trace, args)
        report = perfplay.analyze(trace, seed=args.seed)
    else:
        if not args.workload:
            print("debug: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        workload = _workload_from(args)
        report = perfplay.analyze(workload.record().trace, seed=args.seed)
    print(report.render())
    return 0


def cmd_profile(args) -> int:
    from repro.profiling import profile_pipeline

    if args.trace:
        trace = _load_trace(args.trace, args)
        report = profile_pipeline(
            trace=trace, seed=args.seed, replay=not args.no_replay
        )
    else:
        if not args.workload:
            print("profile: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        report = profile_pipeline(
            workload=_workload_from(args),
            seed=args.seed,
            replay=not args.no_replay,
        )
    print(report.render())
    return 0


def cmd_timeline(args) -> int:
    from repro.trace.render import render_timeline

    trace = _load_trace(args.trace, args)
    print(render_timeline(trace, width=args.width))
    return 0


def cmd_stats(args) -> int:
    from repro.trace.stats import trace_stats

    trace = _load_trace(args.trace, args)
    print(trace_stats(trace).render())
    return 0


def cmd_advise(args) -> int:
    from repro.perfdebug.advisor import advise

    if args.trace:
        trace = _load_trace(args.trace, args)
    else:
        if not args.workload:
            print("advise: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        trace = _workload_from(args).record().trace
    print(advise(trace).render())
    return 0


def cmd_locks(args) -> int:
    from repro.perfdebug.lockstats import profile_locks, render_lock_profiles

    trace = _load_trace(args.trace, args)
    print(render_lock_profiles(profile_locks(trace), limit=args.limit))
    return 0


def cmd_fix(args) -> int:
    from repro.perfdebug.rewrite import FIXES, try_fix

    if args.trace:
        trace = _load_trace(args.trace, args)
    else:
        if not args.workload:
            print("fix: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        trace = _workload_from(args).record().trace
    if args.fix not in FIXES:
        print(f"unknown fix {args.fix!r}; known: {', '.join(sorted(FIXES))}",
              file=sys.stderr)
        return 2
    outcome = try_fix(trace, args.lock, args.fix)
    print(outcome)
    return 0


def cmd_selfcheck(args) -> int:
    from repro.selfcheck import run_selfcheck

    if args.trace:
        report = run_selfcheck(trace=_load_trace(args.trace, args))
    else:
        if not args.workload:
            print("selfcheck: need a WORKLOAD or --trace FILE", file=sys.stderr)
            return 2
        report = run_selfcheck(_workload_from(args))
    print(report.render())
    return 0 if report.ok else 1


def cmd_compare(args) -> int:
    from repro.perfdebug.compare import compare_reports

    perfplay = PerfPlay()
    before = perfplay.analyze(_load_trace(args.before, args))
    after = perfplay.analyze(_load_trace(args.after, args))
    comparison = compare_reports(before, after)
    print(comparison.render())
    return 0


def cmd_experiment(args) -> int:
    import contextlib

    from repro import faults
    from repro.experiments import ALL_EXPERIMENTS
    from repro.runner import ExecPolicy, cache

    if args.name == "all":
        names = list(ALL_EXPERIMENTS)
    elif args.name in ALL_EXPERIMENTS:
        names = [args.name]
    else:
        print(f"unknown experiment {args.name!r}; known: "
              f"{', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    if args.no_cache:
        root = None
    elif args.cache_dir:
        root = args.cache_dir
    else:
        root = cache.default_cache_dir()
    policy = None
    if args.partial or args.retries or args.task_timeout is not None:
        policy = ExecPolicy(
            timeout=args.task_timeout,
            retries=args.retries,
            partial=args.partial,
        )
    injection = contextlib.nullcontext()
    if args.fault:
        plan = faults.FaultPlan.parse(args.fault, seed=args.fault_seed)
        injection = faults.use_plan(plan)
    with injection, cache.use_cache(root):
        for name in names:
            ALL_EXPERIMENTS[name].main(jobs=args.jobs, policy=policy)
            print()
    return 0


def cmd_faults(args) -> int:
    from repro import faults

    if args.action == "list":
        print("fault injection sites (use with: experiment --fault SPEC,")
        print("spec syntax: site[@key][:nth=N,times=N,attempt=N,rate=F]):")
        width = max(len(site) for site in faults.SITES)
        for site, description in faults.SITES.items():
            print(f"  {site:<{width}}  {description}")
        return 0
    if args.action == "demo":
        from repro.faults.demo import run_demo

        run_demo(
            seed=args.seed,
            jobs=args.jobs,
            scale=args.scale,
            enable_faults=not args.no_faults,
        )
        return 0
    print(f"unknown faults action {args.action!r}", file=sys.stderr)
    return 2


def cmd_cache(args) -> int:
    from repro.runner import TraceCache, cache

    root = args.cache_dir or cache.default_cache_dir()
    store = TraceCache(root)
    if args.action == "info":
        print(store.info().render())
    elif args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached entries from {store.root}")
    return 0


def cmd_sensitivity(args) -> int:
    from repro.perfdebug.sensitivity import sweep

    result = sweep(
        args.workload,
        thread_counts=tuple(args.threads_list),
        input_sizes=tuple(args.sizes),
        scale=args.scale,
    )
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PERFPLAY reproduction: replay-based ULCP debugging",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads and experiments")

    p = sub.add_parser("record", help="record a workload into a trace file")
    p.add_argument("workload")
    _add_workload_options(p)
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("replay", help="replay a trace file")
    p.add_argument("trace")
    _add_trace_options(p)
    p.add_argument("--scheme", default=ELSC_S, choices=ALL_SCHEMES)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jitter", type=float, default=0.02)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the repeated replays")

    p = sub.add_parser("transform", help="ULCP-transform a trace file")
    p.add_argument("trace")
    _add_trace_options(p)
    p.add_argument("-o", "--output")

    p = sub.add_parser("debug", help="full PERFPLAY pipeline")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)
    p.add_argument("--jitter", type=float, default=0.0)

    p = sub.add_parser("profile",
                       help="per-stage wall times of the analysis pipeline")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)
    p.add_argument("--no-replay", action="store_true",
                   help="skip the final replay stage")

    p = sub.add_parser("timeline", help="ASCII timeline of a trace")
    p.add_argument("trace")
    _add_trace_options(p)
    p.add_argument("--width", type=int, default=72)

    p = sub.add_parser("stats", help="structural summary of a trace")
    p.add_argument("trace")
    _add_trace_options(p)

    p = sub.add_parser("advise", help="per-category fix strategies with gains")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)

    p = sub.add_parser("locks", help="per-lock contention profile of a trace")
    p.add_argument("trace")
    _add_trace_options(p)
    p.add_argument("--limit", type=int, default=10)

    p = sub.add_parser("fix", help="apply a suggested fix to a trace and measure")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    p.add_argument("--lock", required=True)
    p.add_argument("--fix", required=True)
    _add_workload_options(p)

    p = sub.add_parser("compare", help="diff two traces' debug reports (before/after a fix)")
    p.add_argument("before")
    p.add_argument("after")
    _add_trace_options(p)

    p = sub.add_parser("selfcheck", help="verify pipeline invariants on an input")
    p.add_argument("workload", nargs="?")
    p.add_argument("--trace")
    _add_trace_options(p)
    _add_workload_options(p)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for independent cells "
                        "(0 = one per CPU); output matches a serial run")
    p.add_argument("--cache-dir",
                   help="result cache directory (default: .repro-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk result cache")
    p.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                   help="per-cell wall-clock budget; a cell past it is "
                        "terminated (and retried, if --retries)")
    p.add_argument("--retries", type=int, default=0,
                   help="retry budget per cell for crashes/timeouts")
    p.add_argument("--partial", action="store_true",
                   help="render failed cells as n/a instead of aborting")
    p.add_argument("--fault", action="append", default=[], metavar="SPEC",
                   help="inject a fault (repeatable); see 'repro faults list'")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for rate-based fault rules")

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=("info", "clear"))
    p.add_argument("--cache-dir",
                   help="cache directory (default: .repro-cache)")

    p = sub.add_parser("sensitivity", help="cross-input robustness sweep")
    p.add_argument("workload")
    p.add_argument("--threads-list", type=int, nargs="+", default=[2, 4])
    p.add_argument("--sizes", nargs="+", default=["simsmall", "simlarge"])
    p.add_argument("--scale", type=float, default=1.0)

    p = sub.add_parser("faults",
                       help="fault-injection sites and the recovery demo")
    p.add_argument("action", choices=("list", "demo"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--no-faults", action="store_true",
                   help="run the demo pipeline with no faults installed "
                        "(its output must match a plain serial run)")

    return parser


COMMANDS = {
    "list": cmd_list,
    "record": cmd_record,
    "replay": cmd_replay,
    "transform": cmd_transform,
    "debug": cmd_debug,
    "profile": cmd_profile,
    "timeline": cmd_timeline,
    "stats": cmd_stats,
    "advise": cmd_advise,
    "locks": cmd_locks,
    "fix": cmd_fix,
    "compare": cmd_compare,
    "selfcheck": cmd_selfcheck,
    "experiment": cmd_experiment,
    "cache": cmd_cache,
    "sensitivity": cmd_sensitivity,
    "faults": cmd_faults,
}


def main(argv=None) -> int:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        # the whole taxonomy renders as one clean line: TraceError,
        # DeadlockError, FaultInjected, TaskTimeoutError, TaskCrashError, ...
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc.strerror}: {exc.filename}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
