"""Execution-timeline layer: typed per-thread interval lanes.

Converts traces and replay schedules into :class:`Timeline` lanes of
typed intervals (compute / critical section / lock wait / replay stall
/ blocked / overhead), exportable as Chrome trace-event JSON for
Perfetto and as compact columnar JSON for programmatic diffing.  The
HTML debugging report (:func:`repro.api.report`) renders from the same
model.
"""

from repro.timeline.build import (
    build_timeline,
    build_timeline_segments,
    classification_map,
    reconcile,
    timelines_of_report,
)
from repro.timeline.chrome import timeline_to_events, to_chrome_json
from repro.timeline.export import (
    from_columnar,
    from_columnar_json,
    to_columnar,
    to_columnar_json,
)
from repro.timeline.model import (
    BLOCKED,
    COMPUTE,
    CS,
    INTERVAL_KINDS,
    LOCK_WAIT,
    OVERHEAD,
    STALL,
    WAIT_KINDS,
    Interval,
    ThreadAccounting,
    Timeline,
    accounting_of,
    merge_adjacent,
    sort_lane,
)

__all__ = [
    "BLOCKED",
    "COMPUTE",
    "CS",
    "INTERVAL_KINDS",
    "LOCK_WAIT",
    "OVERHEAD",
    "STALL",
    "WAIT_KINDS",
    "Interval",
    "ThreadAccounting",
    "Timeline",
    "accounting_of",
    "build_timeline",
    "build_timeline_segments",
    "classification_map",
    "from_columnar",
    "from_columnar_json",
    "merge_adjacent",
    "reconcile",
    "sort_lane",
    "timeline_to_events",
    "timelines_of_report",
    "to_chrome_json",
    "to_columnar",
    "to_columnar_json",
]
