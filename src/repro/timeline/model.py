"""The execution-timeline model: typed per-thread interval lanes.

A :class:`Timeline` is the common currency between the trace/replay
layers and every visual artifact (Chrome trace JSON, the HTML report's
waterfall, future dashboards): one lane per thread, each lane an ordered
list of typed :class:`Interval` records.

Interval kinds
--------------

``compute``
    The thread ran application code (a COMPUTE event / request).
``cs``
    A critical section, from lock grant to release.  ``lock`` names the
    lock, ``ulcp`` carries the pair classification of the section's
    acquire (``null_lock`` / ``read_read`` / ``disjoint_write`` /
    ``benign`` / ``tlcp``; empty when the section never contended).
    ``cs`` intervals *overlay* the compute/overhead intervals inside
    them — they are excluded from the time accounting.
``lock_wait``
    The thread waited for a busy lock (``t_request`` → grant).
    ``holder`` attributes the wait to the thread whose critical section
    blocked it; ``spin`` distinguishes spin waits (charged as CPU) from
    blocked waits.
``stall``
    A replay-enforcement wait: the resource was free but a gate (ELSC
    schedule, deterministic memory order) vetoed the access to preserve
    the recorded order.
``blocked``
    Non-lock waiting: condvar/semaphore/barrier/flag waits, sleeps, and
    bypassed opaque ranges.
``overhead``
    The fixed cost of a synchronization or memory operation
    (``lock_cost`` per acquire-grant and release, ``mem_cost`` per
    memory access) — charged as CPU time by the machine.

Accounting identity (the determinism/reconciliation contract, tested on
every workload): for each thread,

* ``spin_ns``  == Σ ``lock_wait``/``stall`` intervals with ``spin``
* ``block_ns`` == Σ non-spin ``lock_wait``/``stall`` + Σ ``blocked``
* ``cpu_ns``   == Σ ``compute`` + Σ ``overhead`` + ``spin_ns``

which matches :class:`repro.sim.stats.ThreadStats` exactly for
jitter-free runs (and for jittered runs when intervals are collected
live by :class:`repro.replay.collector.IntervalCollector`, which sees
the actual jittered compute costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

COMPUTE = "compute"
CS = "cs"
LOCK_WAIT = "lock_wait"
STALL = "stall"
BLOCKED = "blocked"
OVERHEAD = "overhead"

#: canonical interval-kind order (stable codes for columnar export)
INTERVAL_KINDS = (COMPUTE, CS, LOCK_WAIT, STALL, BLOCKED, OVERHEAD)

#: kinds that represent waiting (lock or otherwise)
WAIT_KINDS = frozenset({LOCK_WAIT, STALL, BLOCKED})


@dataclass(slots=True)
class Interval:
    """One typed span of a thread's execution."""

    tid: str
    kind: str
    t_start: int
    t_end: int
    lock: str = ""
    uid: str = ""
    ulcp: str = ""
    holder: str = ""
    spin: bool = False
    detail: str = ""

    @property
    def duration(self) -> int:
        return self.t_end - self.t_start


@dataclass
class ThreadAccounting:
    """Interval-sum view of one lane, shaped like ``ThreadStats``."""

    cpu_ns: int = 0
    spin_ns: int = 0
    block_ns: int = 0


@dataclass
class Timeline:
    """Per-thread interval lanes for one execution (trace or replay)."""

    name: str = ""
    source: str = "trace"  # "trace" | "replay"
    scheme: str = ""
    lanes: Dict[str, List[Interval]] = field(default_factory=dict)
    thread_start: Dict[str, int] = field(default_factory=dict)
    thread_end: Dict[str, int] = field(default_factory=dict)

    @property
    def thread_ids(self) -> List[str]:
        return list(self.lanes)

    @property
    def end_time(self) -> int:
        latest = 0
        for end in self.thread_end.values():
            latest = max(latest, end)
        for intervals in self.lanes.values():
            for interval in intervals:
                latest = max(latest, interval.t_end)
        return latest

    def __len__(self) -> int:
        return sum(len(intervals) for intervals in self.lanes.values())

    def iter_intervals(self) -> Iterator[Interval]:
        for intervals in self.lanes.values():
            yield from intervals

    def count(self, kind: str) -> int:
        return sum(
            1 for interval in self.iter_intervals() if interval.kind == kind
        )

    # ------------------------------------------------------- accounting

    def accounting(self, tid: str) -> ThreadAccounting:
        """Interval sums of one lane, per the model's accounting identity."""
        acct = ThreadAccounting()
        for interval in self.lanes.get(tid, ()):
            d = interval.duration
            if interval.kind == COMPUTE or interval.kind == OVERHEAD:
                acct.cpu_ns += d
            elif interval.kind in (LOCK_WAIT, STALL):
                if interval.spin:
                    acct.spin_ns += d
                    acct.cpu_ns += d
                else:
                    acct.block_ns += d
            elif interval.kind == BLOCKED:
                acct.block_ns += d
        return acct

    def wait_by_lock_thread(self) -> Dict[str, Dict[str, int]]:
        """Total lock-wait/stall ns per (lock, waiting thread) — the
        contention heatmap's source data."""
        table: Dict[str, Dict[str, int]] = {}
        for interval in self.iter_intervals():
            if interval.kind not in (LOCK_WAIT, STALL) or not interval.lock:
                continue
            row = table.setdefault(interval.lock, {})
            row[interval.tid] = row.get(interval.tid, 0) + interval.duration
        return table


def merge_adjacent(intervals: List[Interval]) -> List[Interval]:
    """Coalesce back-to-back intervals of identical type/payload.

    Keeps exported artifacts compact without changing any interval sum:
    two spans merge only when the first ends exactly where the second
    starts and every annotation matches.
    """
    merged: List[Interval] = []
    for interval in intervals:
        if merged:
            last = merged[-1]
            if (
                last.kind == interval.kind
                and last.t_end == interval.t_start
                and last.lock == interval.lock
                and last.ulcp == interval.ulcp
                and last.holder == interval.holder
                and last.spin == interval.spin
                and last.detail == interval.detail
                and interval.kind in (COMPUTE, OVERHEAD, BLOCKED)
            ):
                last.t_end = interval.t_end
                if interval.uid and not last.uid:
                    last.uid = interval.uid
                continue
        merged.append(interval)
    return merged


def sort_lane(intervals: List[Interval]) -> List[Interval]:
    """Deterministic lane order: by start, then end, then kind code."""
    kind_order = {kind: i for i, kind in enumerate(INTERVAL_KINDS)}
    return sorted(
        intervals,
        key=lambda iv: (iv.t_start, iv.t_end, kind_order.get(iv.kind, 99), iv.uid),
    )


def accounting_of(
    timeline: Timeline, tids: Optional[List[str]] = None
) -> Dict[str, ThreadAccounting]:
    """Accounting for every lane (or the given subset), keyed by tid."""
    return {
        tid: timeline.accounting(tid)
        for tid in (tids if tids is not None else timeline.thread_ids)
    }
