"""Deterministic timeline construction from traces and replays.

:func:`build_timeline` converts any :class:`~repro.trace.trace.Trace`
into per-thread interval lanes in one pass over the interned columnar
core (O(events), no :class:`TraceEvent` materialization on the hot
path).  Passing a :class:`~repro.replay.results.ReplayResult` whose
replay collected intervals (``api.replay(..., timeline=True)`` or
:class:`repro.replay.collector.IntervalCollector`) reuses the live
lanes instead and only annotates them.

ULCP classification reuses a :class:`~repro.analysis.pairs.PairAnalysis`
— no second trace walk: each critical section's acquire uid is looked up
in the pair table (the classification of the pair the section *closes*
wins over the one it opens).

Salvage tolerance: lanes are built from whatever events exist.  An
unmatched release is ignored; a critical section left open by a
truncated trace closes at the thread's last event and is flagged
``detail="unclosed"`` — so ``repro timeline``/``repro report`` work on
``load_trace(..., salvage=True)`` output.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List

from repro import kernels, telemetry
from repro.errors import TraceError
from repro.timeline.model import (
    BLOCKED,
    COMPUTE,
    CS,
    INTERVAL_KINDS,
    LOCK_WAIT,
    OVERHEAD,
    Interval,
    Timeline,
    merge_adjacent,
    sort_lane,
)

#: interval-kind -> stable code, shared with the columnar export
_KIND_CODE = {kind: code for code, kind in enumerate(INTERVAL_KINDS)}
_C_COMPUTE = _KIND_CODE[COMPUTE]
_C_CS = _KIND_CODE[CS]
_C_LOCK_WAIT = _KIND_CODE[LOCK_WAIT]
_C_BLOCKED = _KIND_CODE[BLOCKED]
_C_OVERHEAD = _KIND_CODE[OVERHEAD]
#: codes merge_adjacent is allowed to coalesce
_MERGEABLE = frozenset({_C_COMPUTE, _C_BLOCKED, _C_OVERHEAD})
from repro.trace.interning import (
    ACQUIRE_CODE,
    COMPUTE_CODE,
    CS_ENTER_CODE,
    CS_EXIT_CODE,
    READ_CODE,
    RELEASE_CODE,
    SLEEP_CODE,
    THREAD_END_CODE,
    THREAD_START_CODE,
    WAIT_CODE,
    WRITE_CODE,
)


def classification_map(analysis) -> Dict[str, str]:
    """Acquire-uid -> ULCP kind, from an existing pair analysis.

    A section can appear in up to two consecutive pairs (as the second
    section of one and the first of the next); the pair it *closes* — in
    which its own acquire contended against the predecessor — is the
    natural annotation for the section, so it takes precedence.
    """
    if analysis is None:
        return {}
    kinds: Dict[str, str] = {}
    for pair in analysis.pairs:
        kinds.setdefault(pair.c1.uid, pair.kind)
    for pair in analysis.pairs:
        kinds[pair.c2.uid] = pair.kind
    return kinds


def _holder_maps(trace) -> Dict[str, str]:
    """Acquire-uid -> tid of the *previous* grant of the same lock.

    ``trace.lock_schedule`` lists grants per lock in recorded order; the
    holder that a waiting acquire was blocked behind is the grant just
    before it in that order.
    """
    uid_tid: Dict[str, str] = {}
    core = trace.columnar()
    for tid, column in core.columns.items():
        uids = column.uids
        for i in _acquire_positions(column):
            uid_tid[uids[i]] = tid
    holder: Dict[str, str] = {}
    for uids in trace.lock_schedule.values():
        for j in range(1, len(uids)):
            previous = uid_tid.get(uids[j - 1], "")
            if previous:
                holder[uids[j]] = previous
    return holder


def build_timeline(
    trace,
    *,
    analysis=None,
    replay=None,
    merge: bool = True,
) -> Timeline:
    """Build the interval lanes of ``trace`` (or of its ``replay``).

    ``analysis`` (a :class:`~repro.analysis.pairs.PairAnalysis` of the
    *original* trace) annotates critical sections and lock waits with
    their ULCP classification.  ``replay`` (a
    :class:`~repro.replay.results.ReplayResult` that carried
    ``intervals``) switches the source to the replayed schedule —
    including ELSC/gate stall intervals the trace itself cannot show.
    """
    kinds = classification_map(analysis)
    if replay is not None:
        if getattr(replay, "intervals", None) is None:
            raise ValueError(
                "replay carries no intervals; re-run the replay with "
                "timeline collection enabled (api.replay(..., timeline=True))"
            )
        return _from_replay(trace, replay, kinds, merge=merge)
    return _from_trace(trace, kinds, merge=merge)


def _from_replay(trace, replay, kinds: Dict[str, str], *, merge: bool) -> Timeline:
    holders = _holder_maps(trace)
    timeline = Timeline(
        name=trace.meta.name,
        source="replay",
        scheme=replay.scheme,
        thread_start=dict(replay.thread_start),
        thread_end=dict(replay.thread_end),
    )
    for tid in trace.thread_ids:
        intervals = [
            Interval(
                tid=tid,
                kind=iv.kind,
                t_start=iv.t_start,
                t_end=iv.t_end,
                lock=iv.lock,
                uid=iv.uid,
                ulcp=kinds.get(iv.uid, "") if iv.kind in (CS, LOCK_WAIT) else "",
                holder=iv.holder or holders.get(iv.uid, ""),
                spin=iv.spin,
                detail=iv.detail,
            )
            for iv in replay.intervals.get(tid, ())
        ]
        intervals = sort_lane(intervals)
        timeline.lanes[tid] = merge_adjacent(intervals) if merge else intervals
    return timeline


class _LaneState:
    """One thread's in-flight lane build, persistable across segments."""

    __slots__ = ("raw", "open_cs", "last_t")

    def __init__(self):
        # raw span tuples: (t_start, t_end, code, lock, uid, ulcp,
        #                   holder, spin, detail)
        self.raw: List[tuple] = []
        # open critical sections per lock id (a list tolerates damaged
        # traces where the same lock appears re-acquired before release)
        self.open_cs: Dict[int, List[tuple]] = {}
        self.last_t = 0


def _acquire_positions(column) -> List[int]:
    """Positions of ACQUIRE events in one column (backend-dispatched)."""
    if kernels.use_numpy():
        from repro.kernels import timeline_np

        return timeline_np.acquire_positions(column)
    kind = column.kind
    return [i for i in range(len(kind)) if kind[i] == ACQUIRE_CODE]


def _walk_column(
    tid: str,
    column,
    st: _LaneState,
    timeline: Timeline,
    kinds_get,
    lock_cost: int,
    mem_cost: int,
) -> None:
    """Accumulate one columnar block's raw spans into ``st``.

    The block may be a whole thread (monolithic path) or one segment
    chunk (streaming path; call once per chunk, in order, with the same
    state).  Lock-wait holders are intentionally left blank here —
    :func:`_finish_lane` patches them in before the sort, because in a
    segment stream the holder's own acquire may not have been walked yet.

    Backend-dispatched: the numpy twin bulk-extracts the dense span
    kinds and sparse-walks the stateful ones; raw tuples are totally
    ordered and sorted in :func:`_finish_lane`, so the lanes come out
    identical.
    """
    start = perf_counter()
    if kernels.use_numpy():
        from repro.kernels import timeline_np

        timeline_np.walk_column(
            tid, column, st, timeline, kinds_get, lock_cost, mem_cost,
            (_C_COMPUTE, _C_CS, _C_LOCK_WAIT, _C_BLOCKED, _C_OVERHEAD),
        )
    else:
        _walk_column_py(tid, column, st, timeline, kinds_get, lock_cost,
                        mem_cost)
    kernels.record("timeline_walk", perf_counter() - start)


def _walk_column_py(
    tid: str,
    column,
    st: _LaneState,
    timeline: Timeline,
    kinds_get,
    lock_cost: int,
    mem_cost: int,
) -> None:
    kind = column.kind
    t = column.t
    duration = column.duration
    t_request = column.t_request
    lock_id = column.lock_id
    flags = column.flags
    uids = column.uids
    tokens = column.tokens
    lock_name = column.tables.locks.name
    n = len(kind)
    add = st.raw.append
    open_cs = st.open_cs
    last_t = st.last_t
    for i in range(n):
        code = kind[i]
        ti = t[i]
        if ti > last_t:
            last_t = ti
        if code == COMPUTE_CODE:
            if duration[i] > 0:
                add((ti - duration[i], ti, _C_COMPUTE,
                     "", "", "", "", False, ""))
        elif code == ACQUIRE_CODE:
            uid = uids[i]
            name = lock_name(lock_id[i]) if lock_id[i] >= 0 else ""
            if ti > t_request[i]:
                add((t_request[i], ti, _C_LOCK_WAIT,
                     name, uid, kinds_get(uid, ""),
                     "", bool(flags[i] & 1), ""))
            if lock_cost:
                add((ti, ti + lock_cost, _C_OVERHEAD,
                     name, "", "", "", False, ""))
            open_cs.setdefault(lock_id[i], []).append((ti, uid, name))
        elif code == RELEASE_CODE:
            stack = open_cs.get(lock_id[i])
            if stack:
                t_open, uid, name = stack.pop()
                add((t_open, ti, _C_CS,
                     name, uid, kinds_get(uid, ""), "", False, ""))
            # unmatched release (salvaged prefix): nothing to close
            if lock_cost:
                name = lock_name(lock_id[i]) if lock_id[i] >= 0 else ""
                add((ti, ti + lock_cost, _C_OVERHEAD,
                     name, "", "", "", False, ""))
        elif code in (READ_CODE, WRITE_CODE):
            if mem_cost:
                add((ti, ti + mem_cost, _C_OVERHEAD,
                     "", "", "", "", False, ""))
        elif code in (WAIT_CODE, SLEEP_CODE):
            if duration[i] > 0:
                add((ti - duration[i], ti, _C_BLOCKED,
                     "", "", "", "", False, column.reasons.get(i, "")))
        elif code == CS_ENTER_CODE:
            uid = tokens.get(i, uids[i])
            name = lock_name(lock_id[i]) if lock_id[i] >= 0 else ""
            open_cs.setdefault(lock_id[i], []).append((ti, uid, name))
        elif code == CS_EXIT_CODE:
            stack = open_cs.get(lock_id[i])
            if stack:
                t_open, uid, name = stack.pop()
                add((t_open, ti, _C_CS,
                     name, uid, kinds_get(uid, ""),
                     "", False, "transformed"))
        elif code == THREAD_START_CODE:
            timeline.thread_start[tid] = ti
        elif code == THREAD_END_CODE:
            timeline.thread_end[tid] = ti
    st.last_t = last_t


def _finish_lane(
    tid: str,
    st: _LaneState,
    timeline: Timeline,
    kinds_get,
    holders_get,
    *,
    merge: bool,
) -> None:
    """Close unfinished sections, patch holders, sort, materialize."""
    raw = st.raw
    # salvage tolerance: close sections a truncated trace left open
    for stack in st.open_cs.values():
        for t_open, uid, name in stack:
            raw.append((t_open, max(st.last_t, t_open), _C_CS,
                        name, uid, kinds_get(uid, ""), "", False, "unclosed"))
    # holder patch: LOCK_WAIT spans were built holder-blank; resolving
    # here (before the sort, after every acquire has been seen) produces
    # the same lanes as inline resolution did, on both build paths
    for j, span in enumerate(raw):
        if span[2] == _C_LOCK_WAIT and span[4]:
            holder = holders_get(span[4], "")
            if holder:
                raw[j] = span[:6] + (holder,) + span[7:]
    raw.sort()
    timeline.lanes[tid] = lane = _materialize(tid, raw, merge=merge)
    timeline.thread_start.setdefault(tid, lane[0].t_start if lane else 0)
    timeline.thread_end.setdefault(tid, st.last_t)


def _from_trace(trace, kinds: Dict[str, str], *, merge: bool) -> Timeline:
    # Hot path: O(events) with no Interval construction inside the event
    # walk.  Spans accumulate as plain tuples in sort_lane's key order
    # (t_start, t_end, kind code, payload), sort natively (no Python key
    # function), and only the post-merge survivors materialize as
    # Interval objects — the dataclass __init__ dominates otherwise.
    core = trace.columnar()
    holders = _holder_maps(trace)
    kinds_get = kinds.get
    holders_get = holders.get
    lock_cost = trace.meta.lock_cost
    mem_cost = trace.meta.mem_cost
    timeline = Timeline(name=trace.meta.name, source="trace")
    for tid, column in core.columns.items():
        st = _LaneState()
        _walk_column(tid, column, st, timeline, kinds_get, lock_cost, mem_cost)
        _finish_lane(tid, st, timeline, kinds_get, holders_get, merge=merge)
    return timeline


def _restore_lanes(reader, checkpoint):
    """Adopt a checkpointed mid-build state, or ``None`` for a cold start."""
    loaded = checkpoint.load()
    if loaded is None:
        return None
    payload, segments_done = loaded
    try:
        reader.resume(payload["reader"])
        return payload["timeline"], payload["states"], \
            payload["acquire_tid"], segments_done
    except (TraceError, KeyError, TypeError):
        checkpoint.clear()
        return None


def build_timeline_segments(reader, *, analysis=None, merge: bool = True,
                            checkpoint=None) -> Timeline:
    """Build the interval lanes of a segmented trace file, streaming.

    ``reader`` is a fresh :class:`repro.trace.segments.SegmentedReader`.
    The event walk is the same :func:`_walk_column` the monolithic path
    runs — applied per chunk with per-thread state persisted across
    segments — so the resulting timeline is identical to
    :func:`build_timeline` over the fully-loaded trace.  Peak memory is
    one segment plus the lanes being built (the output itself).

    ``analysis`` annotates sections/waits with ULCP classifications,
    exactly as in :func:`build_timeline`; pass the result of
    :func:`repro.analysis.streaming.analyze_segments` to keep the whole
    pipeline bounded.

    ``checkpoint`` (a :class:`repro.runner.checkpoint.Checkpointer`)
    persists the in-flight lane state every N segments and resumes from
    the last saved boundary, exactly like the analysis scan.
    """
    kinds = classification_map(analysis)
    kinds_get = kinds.get
    lock_cost = reader.meta.lock_cost
    mem_cost = reader.meta.mem_cost
    timeline = Timeline(name=reader.meta.name, source="trace")
    states = {tid: _LaneState() for tid in reader.threads}
    acquire_tid: Dict[str, str] = {}
    segments_done = 0
    if checkpoint is not None:
        restored = _restore_lanes(reader, checkpoint)
        if restored is not None:
            timeline, states, acquire_tid, segments_done = restored
            telemetry.count("timeline.segments_resumed", segments_done)
    for segment in reader.segments():
        for chunk in segment.chunks:
            column = chunk.column
            uids = column.uids
            for i in _acquire_positions(column):
                acquire_tid[uids[i]] = chunk.tid
            _walk_column(chunk.tid, column, states[chunk.tid], timeline,
                         kinds_get, lock_cost, mem_cost)
        segments_done += 1
        if checkpoint is not None and checkpoint.due(segments_done):
            checkpoint.save({
                "timeline": timeline,
                "states": states,
                "acquire_tid": acquire_tid,
                "reader": reader.suspend(),
            }, segments_done)
    if checkpoint is not None:
        checkpoint.clear()
    # schedule-predecessor holder map, exactly as _holder_maps derives it
    holders: Dict[str, str] = {}
    for uids in reader.lock_schedule.values():
        for j in range(1, len(uids)):
            previous = acquire_tid.get(uids[j - 1], "")
            if previous:
                holders[uids[j]] = previous
    for tid in reader.threads:
        _finish_lane(tid, states[tid], timeline, kinds_get, holders.get,
                     merge=merge)
    return timeline


def _materialize(tid: str, raw: List[tuple], *, merge: bool) -> List[Interval]:
    """Turn sorted span tuples into a lane, fusing merge_adjacent's
    coalescing rule into the same pass so no throwaway Intervals exist."""
    lane: List[Interval] = []
    append = lane.append
    last = None
    for ts, te, code, lock, uid, ulcp, holder, spin, detail in raw:
        if (
            merge
            and last is not None
            and code in _MERGEABLE
            and last.kind == INTERVAL_KINDS[code]
            and last.t_end == ts
            and last.lock == lock
            and last.ulcp == ulcp
            and last.holder == holder
            and last.spin == spin
            and last.detail == detail
        ):
            last.t_end = te
            if uid and not last.uid:
                last.uid = uid
            continue
        last = Interval(tid, INTERVAL_KINDS[code], ts, te,
                        lock, uid, ulcp, holder, spin, detail)
        append(last)
    return lane


def timelines_of_report(report, *, merge: bool = True):
    """The (original, ULCP-free) timeline pair of a debug report.

    Prefers the replays' live interval lanes (exact, including stalls);
    falls back to recorded-trace lanes when the replays did not collect
    intervals.
    """
    analysis = report.transform_result.analysis
    if getattr(report.original_replay, "intervals", None) is not None:
        original = build_timeline(
            report.trace, analysis=analysis,
            replay=report.original_replay, merge=merge,
        )
    else:
        original = build_timeline(report.trace, analysis=analysis, merge=merge)
    free_replay = report.free_replay
    if getattr(free_replay, "intervals", None) is not None:
        free = build_timeline(
            report.transform_result.trace, analysis=analysis,
            replay=free_replay, merge=merge,
        )
    else:
        free = build_timeline(
            report.transform_result.trace, analysis=analysis, merge=merge
        )
    free.scheme = free.scheme or (free_replay.scheme if free_replay else "")
    return original, free


def reconcile(timeline: Timeline, machine_result) -> List[str]:
    """Check the accounting identity against a machine's ThreadStats.

    Returns a list of human-readable mismatches (empty = exact).  Lane
    keys are thread *names* (trace tids); machine stats key by machine
    tid but carry the name.
    """
    problems: List[str] = []
    by_name = {}
    for stats in machine_result.threads.values():
        by_name[stats.name or stats.tid] = stats
    for tid in timeline.thread_ids:
        stats = by_name.get(tid)
        if stats is None:
            problems.append(f"{tid}: no machine stats")
            continue
        acct = timeline.accounting(tid)
        for field_name in ("cpu_ns", "spin_ns", "block_ns"):
            want = getattr(stats, field_name)
            got = getattr(acct, field_name)
            if want != got:
                problems.append(
                    f"{tid}: {field_name} timeline={got} machine={want}"
                )
    return problems
