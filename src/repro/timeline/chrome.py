"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

The exported file is the standard ``{"traceEvents": [...]}`` JSON with:

* one ``ph: "M"`` ``process_name``/``thread_name`` metadata record per
  lane (lane order = trace thread order, so tids are stable),
* one ``ph: "X"`` complete slice per interval, categorized
  ``timeline.<kind>`` — critical sections and lock waits additionally
  carry ``ulcp.<classification>`` so Perfetto can filter/color by ULCP
  class (``cname`` picks the legacy chrome://tracing palette),
* a ``ph: "s"`` → ``ph: "f"`` flow pair per attributed lock wait,
  drawn from the waiter at wait-start to the holder's lane at grant
  time (the waiter→holder arrows of the ISSUE contract).

Time mapping: the simulator's integer nanoseconds are emitted verbatim
in the ``ts``/``dur`` microsecond fields — **1 simulated ns = 1 trace
µs** — keeping every number an exact integer (byte-determinism) at the
cost of the viewer's axis reading "µs" for simulated ns.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.timeline.model import (
    BLOCKED,
    COMPUTE,
    CS,
    LOCK_WAIT,
    OVERHEAD,
    STALL,
    Interval,
    Timeline,
)

#: legacy chrome://tracing palette names per ULCP classification
ULCP_COLORS = {
    "null_lock": "terrible",
    "read_read": "bad",
    "disjoint_write": "yellow",
    "benign": "good",
    "tlcp": "grey",
}

_KIND_COLORS = {
    COMPUTE: "thread_state_running",
    OVERHEAD: "grey",
    BLOCKED: "thread_state_sleeping",
    STALL: "thread_state_iowait",
}


def _slice_name(interval: Interval) -> str:
    if interval.kind == CS:
        return f"cs {interval.lock}" if interval.lock else "cs"
    if interval.kind in (LOCK_WAIT, STALL):
        base = "spin" if interval.spin else "wait"
        if interval.kind == STALL:
            base = "stall"
        return f"{base} {interval.lock}" if interval.lock else base
    if interval.kind == BLOCKED and interval.detail:
        return f"blocked ({interval.detail})"
    return interval.kind


def timeline_to_events(timeline: Timeline, *, pid: int = 0) -> List[dict]:
    """The deterministic trace-event list of one timeline."""
    events: List[dict] = []
    tid_index: Dict[str, int] = {
        tid: i for i, tid in enumerate(timeline.thread_ids)
    }
    process = timeline.name or "repro"
    if timeline.scheme:
        process = f"{process} [{timeline.scheme}]"
    events.append({
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": process},
    })
    for tid, index in tid_index.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": index,
            "args": {"name": tid},
        })
    flow_id = 0
    for tid in timeline.thread_ids:
        index = tid_index[tid]
        for interval in timeline.lanes[tid]:
            cat = f"timeline.{interval.kind}"
            cname = _KIND_COLORS.get(interval.kind, "")
            if interval.ulcp:
                cat += f",ulcp.{interval.ulcp}"
                cname = ULCP_COLORS.get(interval.ulcp, cname)
            args: Dict[str, object] = {}
            if interval.lock:
                args["lock"] = interval.lock
            if interval.uid:
                args["uid"] = interval.uid
            if interval.ulcp:
                args["ulcp"] = interval.ulcp
            if interval.holder:
                args["holder"] = interval.holder
            if interval.spin:
                args["spin"] = True
            if interval.detail:
                args["detail"] = interval.detail
            record = {
                "name": _slice_name(interval),
                "ph": "X",
                "pid": pid,
                "tid": index,
                "ts": interval.t_start,
                "dur": interval.duration,
                "cat": cat,
            }
            if cname:
                record["cname"] = cname
            if args:
                record["args"] = args
            events.append(record)
            if (
                interval.kind in (LOCK_WAIT, STALL)
                and interval.holder
                and interval.holder in tid_index
            ):
                flow_id += 1
                flow_name = f"waits-for {interval.lock}" if interval.lock else "waits-for"
                events.append({
                    "name": flow_name,
                    "ph": "s",
                    "id": flow_id,
                    "pid": pid,
                    "tid": index,
                    "ts": interval.t_start,
                    "cat": "timeline.flow",
                })
                events.append({
                    "name": flow_name,
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": pid,
                    "tid": tid_index[interval.holder],
                    "ts": interval.t_end,
                    "cat": "timeline.flow",
                })
    return events


def to_chrome_json(*timelines: Timeline) -> str:
    """Serialize timelines (one process each) as Chrome trace JSON.

    Output is byte-deterministic for a fixed input: dict key order is
    fixed by construction, separators are canonical, every field is an
    int/str/bool.
    """
    events: List[dict] = []
    for pid, timeline in enumerate(timelines):
        events.extend(timeline_to_events(timeline, pid=pid))
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"unit": "1 simulated ns = 1 trace us"},
    }
    return json.dumps(document, separators=(",", ":"), sort_keys=False)
