"""Compact columnar JSON for programmatic timeline diffing.

The format mirrors the trace's interned columnar core: one shared
string table, per-lane parallel arrays of small integers.  It is
deliberately minimal — a timeline is a *derived* artifact, so the
format carries no side tables and no schema negotiation beyond a
version number.

Layout::

    {
      "version": 1,
      "name": ..., "source": "trace"|"replay", "scheme": ...,
      "strings": ["", ...],          # 0 is always the empty string
      "kinds": ["compute", ...],     # interval-kind code table
      "threads": [
        {"tid": ..., "start": ns, "end": ns,
         "kind": [...], "t_start": [...], "t_end": [...],
         "lock": [sid...], "uid": [sid...], "ulcp": [sid...],
         "holder": [sid...], "spin": [0|1...], "detail": [sid...]},
        ...
      ]
    }

Integers only, canonical JSON separators: byte-deterministic for a
fixed timeline.  :func:`from_columnar_json` is the exact inverse.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.timeline.model import INTERVAL_KINDS, Interval, Timeline

VERSION = 1


class _Strings:
    """Tiny insertion-ordered interner with "" pinned at id 0."""

    def __init__(self) -> None:
        self.names: List[str] = [""]
        self.ids: Dict[str, int] = {"": 0}

    def intern(self, name: str) -> int:
        sid = self.ids.get(name)
        if sid is None:
            sid = len(self.names)
            self.ids[name] = sid
            self.names.append(name)
        return sid


def to_columnar(timeline: Timeline) -> dict:
    """The columnar document of ``timeline`` (plain JSON-ready dict)."""
    strings = _Strings()
    kind_code = {kind: i for i, kind in enumerate(INTERVAL_KINDS)}
    threads = []
    for tid in timeline.thread_ids:
        lane = timeline.lanes[tid]
        threads.append({
            "tid": tid,
            "start": timeline.thread_start.get(tid, 0),
            "end": timeline.thread_end.get(tid, 0),
            "kind": [kind_code[iv.kind] for iv in lane],
            "t_start": [iv.t_start for iv in lane],
            "t_end": [iv.t_end for iv in lane],
            "lock": [strings.intern(iv.lock) for iv in lane],
            "uid": [strings.intern(iv.uid) for iv in lane],
            "ulcp": [strings.intern(iv.ulcp) for iv in lane],
            "holder": [strings.intern(iv.holder) for iv in lane],
            "spin": [1 if iv.spin else 0 for iv in lane],
            "detail": [strings.intern(iv.detail) for iv in lane],
        })
    return {
        "version": VERSION,
        "name": timeline.name,
        "source": timeline.source,
        "scheme": timeline.scheme,
        "strings": strings.names,
        "kinds": list(INTERVAL_KINDS),
        "threads": threads,
    }


def to_columnar_json(timeline: Timeline) -> str:
    """Byte-deterministic columnar JSON of ``timeline``."""
    return json.dumps(to_columnar(timeline), separators=(",", ":"))


def from_columnar(document: dict) -> Timeline:
    """Rebuild a :class:`Timeline` from :func:`to_columnar` output."""
    if document.get("version") != VERSION:
        raise ValueError(
            f"unsupported timeline format version: {document.get('version')!r}"
        )
    strings = document["strings"]
    kinds = document["kinds"]
    timeline = Timeline(
        name=document.get("name", ""),
        source=document.get("source", "trace"),
        scheme=document.get("scheme", ""),
    )
    for column in document["threads"]:
        tid = column["tid"]
        timeline.thread_start[tid] = column.get("start", 0)
        timeline.thread_end[tid] = column.get("end", 0)
        lane = [
            Interval(
                tid=tid,
                kind=kinds[column["kind"][i]],
                t_start=column["t_start"][i],
                t_end=column["t_end"][i],
                lock=strings[column["lock"][i]],
                uid=strings[column["uid"][i]],
                ulcp=strings[column["ulcp"][i]],
                holder=strings[column["holder"][i]],
                spin=bool(column["spin"][i]),
                detail=strings[column["detail"][i]],
            )
            for i in range(len(column["kind"]))
        ]
        timeline.lanes[tid] = lane
    return timeline


def from_columnar_json(text: str) -> Timeline:
    return from_columnar(json.loads(text))
