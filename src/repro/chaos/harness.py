"""Seeded kill -> resume soak harness for the crash-safety invariants.

:func:`run_soak` drives the chaos loop behind ``repro chaos``: each
cycle picks an operation and one of its crash points from a seeded RNG,
runs the operation as a subprocess (:mod:`repro.chaos.child`) with the
crash point armed via ``REPRO_CRASH_POINT`` — so the process is
SIGKILLed mid-commit, exactly like a power cut or an OOM kill — then
audits the wreckage and resumes.  Invariants checked on every cycle:

* **No torn artifacts.**  Every output file either does not exist yet
  or is complete and byte-identical to the golden copy; atomic-write
  staging files (``.tmp-<pid>-*``) are reaped and none survive.
* **Stores stay loadable.**  The cache opens and every blob reads (or
  self-heals as a miss); the run journal parses, a torn tail line is
  tolerated and sealed.
* **Resume equals clean.**  Re-running the same operation without the
  kill completes with the exact bytes (or values) of a never-killed
  run — journaled fan-outs skip completed tasks, checkpointed scans
  restart from the last checkpoint instead of byte 0.

Some resume cycles additionally install a :mod:`repro.faults` plan
(worker crash, blob corruption) in the child, composing logical fault
injection with the process-level kills.

Everything is derived from ``seed``: the op/point schedule, the fault
composition, and the golden workload — so a failing cycle is
re-runnable with ``repro chaos --seed S --cycles N``.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Dict, List, Optional, Sequence

from repro.chaos import child as child_mod
from repro.chaos.points import ENV_VAR, parse_spec

#: operations the soak loop can pick from
OPS = ("dump", "segment", "cache", "journal", "analyze")

#: crash points each operation can plausibly die at
POINTS_BY_OP = {
    "dump": ("trace.dump",),
    "segment": ("segments.flush", "segments.close", "segments.index"),
    "cache": ("cache.commit",),
    "journal": ("journal.append", "cache.commit"),
    "analyze": ("checkpoint.save",),
}

#: fault specs occasionally composed into the *resume* leg of a cycle
RESUME_FAULTS = {
    "journal": ["cache.blob_corrupt:nth=1,times=2"],
}


@dataclass
class CycleResult:
    """One kill -> audit -> resume -> verify round."""

    index: int
    op: str
    point: str
    nth: int
    killed: bool
    resumed_segments: Optional[int] = None
    faults: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)


@dataclass
class SoakReport:
    """The outcome of a :func:`run_soak` loop."""

    cycles: int
    seed: int
    results: List[CycleResult] = field(default_factory=list)

    @property
    def kills(self) -> Counter:
        return Counter(r.point for r in self.results if r.killed)

    @property
    def violations(self) -> List[str]:
        return [
            f"cycle {r.index} ({r.op} @ {r.point}#{r.nth}): {v}"
            for r in self.results
            for v in r.violations
        ]

    def render(self) -> str:
        lines = [
            f"chaos soak: {len(self.results)} cycles, seed {self.seed}",
            f"kills per crash point "
            f"({sum(self.kills.values())} total):",
        ]
        for point in sorted(self.kills):
            lines.append(f"  {point:<18} {self.kills[point]}")
        survived = sum(1 for r in self.results if not r.killed)
        if survived:
            lines.append(f"  (no kill — point not reached: {survived})")
        resumed = [
            r for r in self.results
            if r.killed and r.resumed_segments is not None
        ]
        if resumed:
            mean = sum(r.resumed_segments for r in resumed) / len(resumed)
            lines.append(
                f"checkpoint resumes skipped {mean:.1f} segments on average"
            )
        composed = sum(1 for r in self.results if r.faults)
        if composed:
            lines.append(f"fault-composed resumes: {composed}")
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  {v}" for v in self.violations)
        else:
            lines.append("invariant violations: none")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "cycles": len(self.results),
            "seed": self.seed,
            "kills": dict(sorted(self.kills.items())),
            "violations": self.violations,
            "results": [
                {
                    "index": r.index, "op": r.op, "point": r.point,
                    "nth": r.nth, "killed": r.killed,
                    "resumed_segments": r.resumed_segments,
                    "faults": r.faults, "violations": r.violations,
                }
                for r in self.results
            ],
        }, indent=2, sort_keys=True)


@dataclass
class _Goldens:
    """Clean-run reference artifacts every cycle is compared against."""

    base: Path
    segment_events: int
    segments: int
    journal_entries: int
    dump_bytes: bytes
    segment_bytes: bytes
    index_json: dict
    analysis_json: str
    journal_results: list


def _build_goldens(base: Path) -> _Goldens:
    from repro import api
    from repro.trace import serialize
    from repro.trace.segments import write_segmented

    base.mkdir(parents=True, exist_ok=True)
    trace = api.record("mysql", threads=3, input_size="simsmall")
    serialize.dump(trace, base / "input.jsonl.gz")
    segment_events = max(16, len(trace) // 12)
    index = write_segmented(
        trace, base / "input.seg.jsonl.gz", segment_events=segment_events
    )
    (base / "segment_events.txt").write_text(str(segment_events))
    analysis = api.analyze(base / "input.seg.jsonl.gz")
    # appends through the crash point: a start and a done per task plus
    # the final complete line (the header is written atomically, outside
    # the append path, so a kill can never tear it)
    journal_entries = 2 * len(child_mod.TASKS) + 1
    return _Goldens(
        base=base,
        segment_events=segment_events,
        segments=len(index.segments),
        journal_entries=journal_entries,
        dump_bytes=(base / "input.jsonl.gz").read_bytes(),
        segment_bytes=(base / "input.seg.jsonl.gz").read_bytes(),
        index_json=json.loads(
            (base / "input.seg.jsonl.gz.idx").read_text()
        ),
        analysis_json=child_mod._analysis_json(analysis) + "\n",
        journal_results=[child_mod._cell(t) for t in child_mod.TASKS],
    )


def _max_nth(op: str, point: str, goldens: _Goldens) -> int:
    """Upper bound for the 1-based hit count of ``point`` under ``op``."""
    if point == "segments.flush":
        return goldens.segments
    if point == "journal.append":
        return goldens.journal_entries
    if point == "cache.commit" and op == "journal":
        return len(child_mod.TASKS)
    if point == "checkpoint.save":
        return max(1, goldens.segments // child_mod.CHECKPOINT_EVERY)
    return 1


def _child_env() -> Dict[str, str]:
    import repro

    env = dict(os.environ)
    env.pop(ENV_VAR, None)
    env.pop("REPRO_CACHE_DIR", None)
    src = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _run_child(op: str, cycle_dir: Path, *, crash: Optional[str] = None,
               fault: Sequence[str] = ()) -> subprocess.CompletedProcess:
    env = _child_env()
    if crash is not None:
        env[ENV_VAR] = crash
    argv = [sys.executable, "-m", "repro.chaos.child", op, str(cycle_dir)]
    for spec in fault:
        argv += ["--fault", spec]
    return subprocess.run(
        argv, env=env, capture_output=True, text=True, timeout=120
    )


def _setup_cycle(cycle_dir: Path, op: str, goldens: _Goldens) -> None:
    cycle_dir.mkdir(parents=True, exist_ok=True)
    if op in ("dump", "segment"):
        shutil.copy2(goldens.base / "input.jsonl.gz", cycle_dir)
    if op == "segment":
        shutil.copy2(goldens.base / "segment_events.txt", cycle_dir)
    if op == "analyze":
        shutil.copy2(goldens.base / "input.seg.jsonl.gz", cycle_dir)
        shutil.copy2(goldens.base / "input.seg.jsonl.gz.idx", cycle_dir)


def _audit_wreckage(cycle_dir: Path, op: str, goldens: _Goldens) -> List[str]:
    """Invariants that must hold immediately after the SIGKILL."""
    from repro.util import tmp as tmpfiles

    violations = []
    tmpfiles.reap_stale(cycle_dir)
    leftovers = [
        str(p.relative_to(cycle_dir))
        for p in sorted(cycle_dir.rglob("*"))
        if tmpfiles.is_tmp_name(p.name)
    ]
    if leftovers:
        violations.append(f"tmp files survived the reap: {leftovers}")

    if op == "dump":
        out = cycle_dir / "out.jsonl.gz"
        if out.exists() and out.read_bytes() != goldens.dump_bytes:
            violations.append("torn dump: out file exists but differs")
    elif op == "segment":
        out = cycle_dir / "out.seg.jsonl.gz"
        if out.exists():
            if out.read_bytes() != goldens.segment_bytes:
                violations.append("torn segmented file after kill")
            else:
                # data committed; a missing/stale sidecar must re-index
                from repro.trace.segments import open_segmented

                try:
                    with open_segmented(out) as reader:
                        total = sum(
                            1 for seg in reader.segments()
                            for chunk in seg.chunks
                            for _ in range(len(chunk.column.kind))
                        )
                except Exception as exc:  # noqa: BLE001 - audit boundary
                    violations.append(f"committed data unreadable: {exc!r}")
                else:
                    expected = goldens.index_json["events"]
                    if total != expected:
                        violations.append(
                            f"re-indexed read saw {total} events, "
                            f"expected {expected}"
                        )
    elif op in ("cache", "journal"):
        violations += _audit_cache(cycle_dir / "cache")
        if op == "journal":
            violations += _audit_journal(cycle_dir / "cache")
    elif op == "analyze":
        ckpt = cycle_dir / f"input.seg.jsonl.gz.{child_mod.RUN_ID}.ckpt.pkl.gz"
        if ckpt.exists():
            from repro.runner.checkpoint import Checkpointer

            try:
                Checkpointer(ckpt, tag="audit-any").load()
            except Exception as exc:  # noqa: BLE001 - audit boundary
                violations.append(f"checkpoint load raised: {exc!r}")
    return violations


def _audit_cache(root: Path) -> List[str]:
    if not root.exists():
        return []
    from repro.runner.cache import TraceCache

    violations = []
    store = TraceCache(root)
    try:
        store.info()
    except Exception as exc:  # noqa: BLE001 - audit boundary
        violations.append(f"cache info raised: {exc!r}")
    for path in sorted((root / "blobs").rglob("*.pkl.gz")):
        key = path.name[: -len(".pkl.gz")]
        try:
            store.get_blob(key)
        except Exception as exc:  # noqa: BLE001 - audit boundary
            violations.append(f"blob {key} unreadable: {exc!r}")
    return violations


def _audit_journal(root: Path) -> List[str]:
    from repro.runner import journal as journal_mod

    path = journal_mod.journal_path(root, child_mod.RUN_ID)
    if not path.exists():
        return []
    try:
        journal_mod.read_journal(path)
    except Exception as exc:  # noqa: BLE001 - audit boundary
        return [f"journal unreadable after kill: {exc!r}"]
    return []


def _verify_resume(cycle_dir: Path, op: str, goldens: _Goldens,
                   result: CycleResult) -> List[str]:
    """The resumed run must equal a clean one, bit for bit."""
    violations = []
    if op == "dump":
        if (cycle_dir / "out.jsonl.gz").read_bytes() != goldens.dump_bytes:
            violations.append("resumed dump differs from clean run")
    elif op == "segment":
        if (cycle_dir / "out.seg.jsonl.gz").read_bytes() != goldens.segment_bytes:
            violations.append("resumed segmented file differs from clean run")
        index = json.loads((cycle_dir / "out.seg.jsonl.gz.idx").read_text())
        if index != goldens.index_json:
            violations.append("resumed index sidecar differs from clean run")
    elif op == "cache":
        from repro.runner.cache import TraceCache

        value = TraceCache(cycle_dir / "cache").get_blob(child_mod.BLOB_KEY)
        if value != child_mod._payload():
            violations.append("resumed cache blob differs from clean value")
    elif op == "journal":
        import pickle

        results = pickle.loads((cycle_dir / "out.results.pkl").read_bytes())
        if results != goldens.journal_results:
            violations.append("resumed fan-out results differ from clean run")
    elif op == "analyze":
        text = (cycle_dir / "out.analysis.json").read_text()
        if text != goldens.analysis_json:
            violations.append("resumed analysis differs from clean run")
        stats = json.loads((cycle_dir / "resume_stats.json").read_text())
        result.resumed_segments = stats.get("segments_resumed", 0)
    return violations


def run_soak(cycles: int = 25, seed: int = 0,
             ops: Optional[Sequence[str]] = None, keep: bool = False,
             workdir: Optional[Path] = None) -> SoakReport:
    """Run the seeded kill -> resume soak loop; see the module docstring."""
    chosen = tuple(ops) if ops else OPS
    unknown = [op for op in chosen if op not in OPS]
    if unknown:
        raise ValueError(f"unknown chaos ops {unknown}; known: {list(OPS)}")
    rng = Random(seed)
    report = SoakReport(cycles=cycles, seed=seed)
    owned = workdir is None
    base = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    try:
        goldens = _build_goldens(base / "golden")
        for i in range(cycles):
            op = rng.choice(chosen)
            point = rng.choice(POINTS_BY_OP[op])
            nth = rng.randint(1, _max_nth(op, point, goldens))
            parse_spec(f"{point}@{nth}")  # fail fast on a bad schedule
            result = CycleResult(
                index=i, op=op, point=point, nth=nth, killed=False
            )
            cycle_dir = base / f"cycle-{i:04d}"
            _setup_cycle(cycle_dir, op, goldens)

            proc = _run_child(op, cycle_dir, crash=f"{point}@{nth}")
            if proc.returncode == -9:
                result.killed = True
            elif proc.returncode != 0:
                result.violations.append(
                    f"armed child failed with rc={proc.returncode}: "
                    f"{proc.stderr.strip()[-200:]}"
                )
            result.violations += _audit_wreckage(cycle_dir, op, goldens)

            fault = list(RESUME_FAULTS.get(op, ())) if (
                result.killed and rng.random() < 0.25
            ) else []
            result.faults = fault
            proc = _run_child(op, cycle_dir, fault=fault)
            if proc.returncode != 0:
                result.violations.append(
                    f"resume failed with rc={proc.returncode}: "
                    f"{proc.stderr.strip()[-200:]}"
                )
            else:
                result.violations += _verify_resume(
                    cycle_dir, op, goldens, result
                )

            report.results.append(result)
            if not keep and not result.violations:
                shutil.rmtree(cycle_dir, ignore_errors=True)
    finally:
        if owned and not keep and not report.violations:
            shutil.rmtree(base, ignore_errors=True)
    return report
