"""Chaos engineering for the pipeline: crash points and a soak harness.

``repro.chaos`` answers one question: *if this process is SIGKILLed at
the worst possible instant, is anything on disk torn, stale, or lost?*

Two halves:

* :mod:`repro.chaos.points` — named crash points compiled into every
  atomic write path (``crash_point("cache.commit")`` etc.), armed per
  process via ``REPRO_CRASH_POINT``.  Free when unarmed.
* :mod:`repro.chaos.harness` — a seeded soak loop (``repro chaos``)
  that spawns child pipelines, kills them at each crash point in turn,
  audits the on-disk invariants, resumes, and ``cmp``\\ s the resumed
  output against a clean run.
"""

from repro.chaos.points import (
    CRASH_POINTS,
    ENV_VAR,
    arm,
    armed,
    crash_point,
    disarm,
    parse_spec,
)

__all__ = [
    "CRASH_POINTS",
    "ENV_VAR",
    "arm",
    "armed",
    "crash_point",
    "disarm",
    "parse_spec",
]
