"""Named crash points: deterministic SIGKILL sites for the chaos harness.

A *crash point* is a named place in the write path where a process can be
killed hard — not an exception, an actual ``SIGKILL`` — to prove that the
atomic-write and journaling invariants hold under the worst interruption
the OS can deliver.  Unlike :mod:`repro.faults` (which raises
:class:`~repro.errors.FaultInjected` and exercises the *recovery* code),
a crash point exercises what is left *on disk* when there is no recovery
code left to run.

Arming is per process, via the environment::

    REPRO_CRASH_POINT="cache.commit@2"    # die at the 2nd hit of the site

The ``@nth`` suffix (1-based, default 1) selects which hit fires, so a
harness can kill at any chosen write of a multi-write run.  With the
variable unset, :func:`crash_point` is a single attribute check — the
instrumented hot paths pay nothing in normal operation.

The registry below is the documented contract between the instrumented
sites and :mod:`repro.chaos.harness`; see INTERNALS §14.
"""

from __future__ import annotations

import os
import signal
import sys
from typing import Dict, Optional, Tuple

#: environment variable arming one crash point for this process
ENV_VAR = "REPRO_CRASH_POINT"

#: every instrumented crash point and where it kills
CRASH_POINTS: Dict[str, str] = {
    "trace.dump": "serialize.dump: trace tmp fully written, before os.replace",
    "segments.flush": "segmented writer: mid-stream, after a segment block "
                      "lands in the tmp file",
    "segments.close": "segmented writer: footer written, before the data "
                      "file's os.replace",
    "segments.index": "segmented writer: data file installed, before the "
                      ".idx sidecar is written (stale-index case)",
    "cache.commit": "cache.put_blob: blob tmp written, before os.replace",
    "journal.append": "run journal: half a ledger line written (torn tail)",
    "checkpoint.save": "checkpointer: checkpoint tmp written, before "
                       "os.replace",
}

_armed: Optional[Tuple[str, int]] = None
_hits = 0


def parse_spec(spec: str) -> Tuple[str, int]:
    """``"<point>@<nth>"`` -> ``(point, nth)``; bare ``"<point>"`` means 1."""
    point, _, nth_text = spec.partition("@")
    point = point.strip()
    if point not in CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {point!r} (known: "
            f"{', '.join(sorted(CRASH_POINTS))})"
        )
    nth = 1
    if nth_text:
        nth = int(nth_text)
        if nth < 1:
            raise ValueError(f"crash point hit count must be >= 1: {nth}")
    return point, nth


def arm(spec: str) -> None:
    """Arm one crash point in this process (``"<point>[@nth]"``)."""
    global _armed, _hits
    _armed = parse_spec(spec)
    _hits = 0


def disarm() -> None:
    global _armed, _hits
    _armed = None
    _hits = 0


def armed() -> Optional[Tuple[str, int]]:
    return _armed


def kill_now() -> None:
    """Die the way a machine does: no atexit, no finally, no flush."""
    sys.stdout.flush()
    sys.stderr.flush()
    sig = getattr(signal, "SIGKILL", None)
    if sig is not None:
        os.kill(os.getpid(), sig)
    os._exit(137)  # platforms without SIGKILL


def crash_point(name: str) -> None:
    """Kill the process here iff this is the armed point's nth hit."""
    if _armed is None:
        return
    global _hits
    point, nth = _armed
    if name != point:
        return
    _hits += 1
    if _hits >= nth:
        kill_now()


_env_spec = os.environ.get(ENV_VAR)
if _env_spec:
    arm(_env_spec)
del _env_spec
