"""One crash-prone pipeline operation, run as a killable subprocess.

``python -m repro.chaos.child OP DIR`` performs exactly one operation of
the soak harness (:mod:`repro.chaos.harness`) inside the scratch
directory ``DIR``.  The harness arms a crash point via the
``REPRO_CRASH_POINT`` environment variable before spawning this module,
so the process may be SIGKILLed at any of the named commit points; run
again with the variable unset, the same invocation must complete and
produce output identical to a never-killed run.

Operations (each reads its input from ``DIR`` and writes ``out.*``):

``dump``
    Load ``input.jsonl.gz`` and re-dump it (crash point ``trace.dump``).
``segment``
    Load ``input.jsonl.gz`` and write the segmented format (crash points
    ``segments.flush`` / ``segments.close`` / ``segments.index``).
``cache``
    Commit a blob into the cache under ``DIR/cache`` (``cache.commit``).
``journal``
    A journaled ``parallel_map`` over :data:`TASKS` under ``DIR/cache``
    (``journal.append`` + ``cache.commit``); resuming attaches to the
    same run id and skips completed tasks.
``analyze``
    Streaming analysis of ``input.seg.jsonl.gz`` with a segment
    checkpoint (``checkpoint.save``); resuming restarts from the last
    checkpoint, and ``resume_stats.json`` records how much was skipped.

``--fault SPEC`` (repeatable) additionally installs a
:mod:`repro.faults` plan for the operation, so the harness can compose
logical fault injection with the process-level kills.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: the journaled fan-out's work list; small but big enough that a kill
#: mid-run leaves a meaningful completed prefix to skip on resume
TASKS = [(i, (i * 7) % 13) for i in range(12)]

#: run id shared by the kill and the resume invocation of one cycle
RUN_ID = "chaos"

#: key of the blob the ``cache`` operation commits
BLOB_KEY = "chaossoakblob0"

#: segments between checkpoints for the ``analyze`` operation — small,
#: so a resumed scan provably redoes only the tail past the last save
CHECKPOINT_EVERY = 2


def _cell(task):
    """The deterministic pure task function of the ``journal`` op."""
    a, b = task
    return (a * 1000003 + b * 7919) % 1000081


def _payload():
    """The deterministic value the ``cache`` op commits."""
    return {"cells": [_cell((i, i + 1)) for i in range(32)]}


def _analysis_json(analysis) -> str:
    """Canonical JSON of a streaming analysis, for byte comparison."""
    breakdown = analysis.breakdown
    return json.dumps({
        "events": analysis.events,
        "sections": len(analysis.sections),
        "pairs": len(analysis.pairs),
        "breakdown": {
            "null_lock": breakdown.null_lock,
            "read_read": breakdown.read_read,
            "disjoint_write": breakdown.disjoint_write,
            "benign": breakdown.benign,
            "tlcp": breakdown.tlcp,
        },
    }, indent=2, sort_keys=True)


def op_dump(root: Path) -> None:
    from repro.trace import serialize

    trace = serialize.load(root / "input.jsonl.gz")
    serialize.dump(trace, root / "out.jsonl.gz")


def op_segment(root: Path) -> None:
    from repro.trace import serialize
    from repro.trace.segments import write_segmented

    trace = serialize.load(root / "input.jsonl.gz")
    segment_events = int((root / "segment_events.txt").read_text())
    write_segmented(
        trace, root / "out.seg.jsonl.gz", segment_events=segment_events
    )


def op_cache(root: Path) -> None:
    from repro.runner.cache import TraceCache

    TraceCache(root / "cache").put_blob(BLOB_KEY, _payload())


def op_journal(root: Path) -> None:
    import pickle

    from repro.runner import ExecPolicy, parallel_map
    from repro.runner import cache as cache_mod
    from repro.runner import journal as journal_mod
    from repro.runner.journal import use_journal

    with cache_mod.use_cache(root / "cache"):
        store = cache_mod.active()
        if journal_mod.journal_path(store.root, RUN_ID).exists():
            journal = journal_mod.RunJournal.attach(store.root, RUN_ID)
        else:
            journal = journal_mod.RunJournal.create(
                store.root, RUN_ID, {"op": "journal"}
            )
        with journal, use_journal(journal):
            results = parallel_map(
                _cell, TASKS, jobs=1, policy=ExecPolicy(retries=2)
            )
    (root / "out.results.pkl").write_bytes(
        pickle.dumps(results, protocol=4)
    )


def op_analyze(root: Path) -> None:
    from repro import api, telemetry
    from repro.options import AnalyzeOptions
    from repro.telemetry import to_dict

    sink = telemetry.Telemetry()
    analysis = api.analyze(
        root / "input.seg.jsonl.gz",
        AnalyzeOptions(resume=RUN_ID, checkpoint_every=CHECKPOINT_EVERY),
        telemetry=sink,
    )
    (root / "out.analysis.json").write_text(
        _analysis_json(analysis) + "\n", encoding="utf-8"
    )
    counters = to_dict(sink, timings=False)["counters"]
    (root / "resume_stats.json").write_text(
        json.dumps({
            "segments_resumed": counters.get("analyze.segments_resumed", 0),
        }) + "\n",
        encoding="utf-8",
    )


OPERATIONS = {
    "dump": op_dump,
    "segment": op_segment,
    "cache": op_cache,
    "journal": op_journal,
    "analyze": op_analyze,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.chaos.child")
    parser.add_argument("op", choices=sorted(OPERATIONS))
    parser.add_argument("dir")
    parser.add_argument("--fault", action="append", default=[])
    parser.add_argument("--fault-seed", type=int, default=0)
    args = parser.parse_args(argv)

    import contextlib

    from repro import faults

    injection = contextlib.nullcontext()
    if args.fault:
        plan = faults.FaultPlan.parse(args.fault, seed=args.fault_seed)
        injection = faults.use_plan(plan)
    with injection:
        OPERATIONS[args.op](Path(args.dir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
