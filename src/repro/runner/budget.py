"""Run budgets: wall-clock deadlines and peak-RSS watermarks.

A :class:`RunBudget` bounds a whole run, not a single task.  Threaded
through the facade and the supervised pool it degrades gracefully
instead of dying:

* the remaining deadline clamps every task's per-attempt timeout, so a
  run never launches work it cannot finish,
* memory pressure (peak RSS past the watermark) flips monolithic trace
  loads onto the segmented streaming path,
* exhaustion mid-run stops launching tasks and surfaces the stopped
  cells through the existing ``--partial`` quarantine machinery — a
  structured partial table, not a traceback.

Peak RSS comes from ``resource.getrusage`` (kilobytes on Linux, bytes
on macOS); no third-party dependency.  The deadline is measured from
:meth:`start`, called when the budget is installed.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import Iterator, Optional

from repro.errors import BudgetExceededError

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


def peak_rss_mb() -> Optional[float]:
    """This process's peak RSS in MiB, or ``None`` where unsupported."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


class RunBudget:
    """Wall-clock + memory bounds for one run."""

    def __init__(self, deadline: Optional[float] = None,
                 max_rss_mb: Optional[float] = None):
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if max_rss_mb is not None and max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be positive, got {max_rss_mb}")
        self.deadline = deadline
        self.max_rss_mb = max_rss_mb
        self.started_at = time.monotonic()

    def start(self) -> "RunBudget":
        """Reset the deadline clock to now (chained for convenience)."""
        self.started_at = time.monotonic()
        return self

    # -- wall clock -----------------------------------------------------

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline (``None`` = unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def clamp_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """The tighter of a task timeout and the remaining deadline."""
        remaining = self.remaining()
        if remaining is None:
            return timeout
        remaining = max(remaining, 0.0)
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    # -- memory ---------------------------------------------------------

    def over_memory(self) -> bool:
        if self.max_rss_mb is None:
            return False
        peak = peak_rss_mb()
        return peak is not None and peak > self.max_rss_mb

    # -- reporting ------------------------------------------------------

    def exhausted(self) -> Optional[str]:
        """Why the budget is spent, or ``None`` while within bounds."""
        if self.expired():
            return f"deadline of {self.deadline:g}s exhausted after {self.elapsed():.1f}s"
        if self.over_memory():
            peak = peak_rss_mb()
            return (
                f"peak RSS {peak:.0f} MiB exceeds the {self.max_rss_mb:g} MiB watermark"
            )
        return None

    def check(self) -> None:
        """Raise :class:`BudgetExceededError` if the budget is spent."""
        reason = self.exhausted()
        if reason is not None:
            raise BudgetExceededError(f"run budget exceeded: {reason}")

    def describe(self) -> str:
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}s")
        if self.max_rss_mb is not None:
            parts.append(f"max_rss={self.max_rss_mb:g}MiB")
        return ", ".join(parts) or "unbounded"

    def __repr__(self) -> str:
        return f"RunBudget({self.describe()})"


# -- ambient budget (mirrors runner.cache / faults / telemetry) ---------

_ACTIVE: Optional[RunBudget] = None


def configure(budget: Optional[RunBudget]) -> None:
    """Install ``budget`` as the ambient run budget."""
    global _ACTIVE
    _ACTIVE = budget


def active() -> Optional[RunBudget]:
    """The ambient budget, or ``None`` when the run is unbounded."""
    return _ACTIVE


@contextlib.contextmanager
def use_budget(budget: Optional[RunBudget]) -> Iterator[Optional[RunBudget]]:
    """Scoped ambient budget (restores the previous one on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = budget.start() if budget is not None else None
    try:
        yield budget
    finally:
        _ACTIVE = previous
