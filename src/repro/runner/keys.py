"""Stable content-addressed cache keys.

A cache entry is valid only for the exact computation that produced it,
so every key mixes in:

* the *kind* of artifact (``"record"``, ``"transform"``, an experiment
  cell name, ...),
* the full parameter set of the computation, canonically JSON-encoded
  (sorted keys, no whitespace), and
* the *code version* — a hash over every ``repro/**/*.py`` source file,
  so editing any module invalidates everything derived from it.

Keys are hex SHA-256 digests: safe as filenames, uniform for sharding.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of the package's own source code (12 hex chars, cached)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent  # .../repro
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:12]
    return _CODE_VERSION


def canonical(params: dict) -> str:
    """Deterministic JSON encoding of a parameter dict."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=repr)


def cache_key(kind: str, **params) -> str:
    """Content-addressed key for one computation."""
    payload = {"kind": kind, "code": code_version(), "params": params}
    return hashlib.sha256(canonical(payload).encode()).hexdigest()


def trace_digest(trace) -> str:
    """Content hash of a trace, streamed through the serializer."""
    from repro.trace import serialize

    digest = hashlib.sha256()

    class _HashWriter:
        def write(self, text: str) -> None:
            digest.update(text.encode())

    serialize.write_trace(trace, _HashWriter())
    return digest.hexdigest()[:32]


def segmented_digest(path) -> str:
    """Content hash of a segmented trace file, from its segment digests.

    Folds the per-segment content digests (sidecar index when it is
    fresh, streamed from the data file otherwise) into one key-sized
    hash without ever loading the trace.  Any change to any segment —
    or to the segment size, which changes the segmentation — changes
    the result.
    """
    from repro.trace.segments import segment_digests

    digest = hashlib.sha256()
    for part in segment_digests(path):
        digest.update(part.encode())
        digest.update(b"\0")
    return digest.hexdigest()[:32]
