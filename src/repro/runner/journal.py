"""Append-only per-run journal: the ledger that makes runs resumable.

Every supervised run (``repro experiment --run-id ...``) keeps a JSONL
ledger at ``<cache-root>/journal/<run-id>.jsonl``.  The first line is a
header recording the run's spec (enough for ``repro resume`` to rebuild
the exact invocation); each subsequent line is one event:

* ``task_start`` — a task attempt was launched (index, content key,
  attempt number),
* ``task_done`` — a task completed; its result was committed to the
  blob cache under its content key, and the ledger records the result's
  pickle digest,
* ``interrupted`` — the run stopped early (SIGINT, budget, crash did
  not get to write one),
* ``complete`` — every task finished.

The header is written atomically (staged, fsynced, ``os.replace``\\ d):
after a SIGKILL the journal either does not exist or is identifiable.
Event appends are flushed and fsynced line-by-line, so after SIGKILL
the file is at worst torn mid-line.  Readers tolerate exactly that: a
malformed trailing line is skipped (and counted), never fatal.  Resume trusts
only ``task_done`` lines, and re-verifies each digest against the blob
actually in the cache — a journal can claim nothing the cache cannot
back.

No wall-clock timestamps anywhere: journals for identical runs are
byte-comparable, which the chaos harness and the determinism tests
exploit.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.chaos.points import crash_point
from repro.errors import ReproError
from repro.runner.keys import cache_key
from repro.util.tmp import tmp_name

#: journal format version (header field ``journal``)
FORMAT_VERSION = 1

#: directory under the cache root holding run journals
JOURNAL_DIRNAME = "journal"

_RUN_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


class JournalError(ReproError):
    """A run journal is missing or its header is unreadable."""


def sanitize_run_id(run_id: str) -> str:
    """Validate a run id for use as a filename component."""
    if not run_id or not set(run_id) <= _RUN_ID_SAFE:
        raise JournalError(
            f"invalid run id {run_id!r}: use letters, digits, '.', '_', '-'"
        )
    return run_id


def journal_path(root: Path, run_id: str) -> Path:
    """Where the journal for ``run_id`` lives under cache root ``root``."""
    return Path(root) / JOURNAL_DIRNAME / f"{sanitize_run_id(run_id)}.jsonl"


def task_key(fn, index: int, task) -> str:
    """Content-addressed key for one ``parallel_map`` task.

    Folds in the function's qualified name, the task's position, and its
    ``repr`` — plus (via :func:`cache_key`) the package code version, so
    editing any module invalidates journaled results the same way it
    invalidates the cache.
    """
    fn_name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    return cache_key("journal.task", fn=fn_name, index=index, task=repr(task))


def result_digest(value: Any) -> str:
    """Digest of a task result, over the same pickle the cache stores."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()[:32]


class RunJournal:
    """One run's append-only ledger.

    Opened either fresh (:meth:`create`) or for resume
    (:meth:`attach`); both return a journal positioned for appending.
    """

    def __init__(self, path: Path, header: Dict[str, Any], events: List[dict],
                 skipped_lines: int = 0):
        self.path = Path(path)
        self.header = header
        self.events = events
        #: malformed (torn) lines skipped while reading an existing ledger
        self.skipped_lines = skipped_lines
        self._handle = None

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, root: Path, run_id: str, spec: Optional[dict] = None) -> "RunJournal":
        """Start a fresh journal, replacing any previous run of this id.

        The header is staged and ``os.replace``\\ d rather than appended:
        a SIGKILL during creation must leave either no journal or one
        with a complete header, because a journal whose *header* is torn
        cannot be identified and therefore cannot be resumed.  (Event
        appends, by contrast, may tear — readers seal and skip those.)
        """
        path = journal_path(root, run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {"journal": FORMAT_VERSION, "run_id": run_id, "spec": spec or {}}
        line = json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"
        staging = tmp_name(path)
        try:
            with open(staging, "w", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(staging, path)
        finally:
            with contextlib.suppress(OSError):
                staging.unlink(missing_ok=True)
        journal = cls(path, header, [])
        journal._handle = open(path, "a", encoding="utf-8")
        return journal

    @classmethod
    def attach(cls, root: Path, run_id: str) -> "RunJournal":
        """Reopen an existing journal for resume, sealing any torn tail."""
        path = journal_path(root, run_id)
        header, events, skipped = read_journal(path)
        journal = cls(path, header, events, skipped_lines=skipped)
        # a SIGKILL mid-append leaves a half line with no newline; seal it
        # so our appends start on a fresh line (readers skip the torn one)
        with open(path, "rb+") as raw:
            raw.seek(0, os.SEEK_END)
            if raw.tell() > 0:
                raw.seek(-1, os.SEEK_END)
                if raw.read(1) != b"\n":
                    raw.write(b"\n")
        journal._handle = open(path, "a", encoding="utf-8")
        return journal

    @classmethod
    def load(cls, root: Path, run_id: str) -> "RunJournal":
        """Read a journal without opening it for appending."""
        path = journal_path(root, run_id)
        header, events, skipped = read_journal(path)
        return cls(path, header, events, skipped_lines=skipped)

    # -- appending ------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path.name} is not open for appending")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # split the write so an armed "journal.append" crash point leaves
        # a genuinely torn line, exactly like a SIGKILL mid-write would
        half = max(1, len(line) // 2)
        self._handle.write(line[:half])
        self._handle.flush()
        crash_point("journal.append")
        self._handle.write(line[half:] + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def task_start(self, index: int, key: str, attempt: int) -> None:
        self._append({"event": "task_start", "index": index, "key": key,
                      "attempt": attempt})

    def task_done(self, index: int, key: str, attempt: int, digest: str) -> None:
        record = {"event": "task_done", "index": index, "key": key,
                  "attempt": attempt, "digest": digest}
        self._append(record)
        self.events.append(record)

    def interrupted(self, note: str = "") -> None:
        with contextlib.suppress(Exception):
            self._append({"event": "interrupted", "note": note})

    def complete(self, tasks: int) -> None:
        self._append({"event": "complete", "tasks": tasks})

    def close(self) -> None:
        if self._handle is not None:
            with contextlib.suppress(Exception):
                self._handle.close()
            self._handle = None

    # -- queries --------------------------------------------------------

    @property
    def run_id(self) -> str:
        return self.header.get("run_id", "")

    @property
    def spec(self) -> dict:
        return self.header.get("spec", {})

    def done_tasks(self) -> Dict[int, Tuple[str, str]]:
        """``index -> (key, digest)`` for every journaled completion."""
        done: Dict[int, Tuple[str, str]] = {}
        for event in self.events:
            if event.get("event") == "task_done":
                done[event["index"]] = (event["key"], event["digest"])
        return done

    def is_complete(self) -> bool:
        return any(e.get("event") == "complete" for e in self.events)

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: Path) -> Tuple[Dict[str, Any], List[dict], int]:
    """Parse a journal file: ``(header, events, skipped_line_count)``.

    Malformed lines — the torn tail a SIGKILL mid-append leaves — are
    skipped and counted, never fatal.  Only a missing file or an
    unreadable *header* is an error: with no header the run cannot be
    identified, so there is nothing to resume.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except FileNotFoundError:
        raise JournalError(f"no journal at {path}") from None
    header: Optional[Dict[str, Any]] = None
    events: List[dict] = []
    skipped = 0
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(record, dict):
            skipped += 1
            continue
        if header is None:
            if record.get("journal") != FORMAT_VERSION:
                raise JournalError(
                    f"{path.name}: unsupported journal header {record!r}"
                )
            header = record
        else:
            events.append(record)
    if header is None:
        raise JournalError(f"{path.name}: journal has no readable header")
    return header, events, skipped


def list_runs(root: Path) -> List[str]:
    """Run ids with a journal under cache root ``root``, sorted."""
    directory = Path(root) / JOURNAL_DIRNAME
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.jsonl"))


# -- ambient journal (mirrors runner.cache / faults / telemetry) --------

_ACTIVE: Optional[RunJournal] = None


def configure(journal: Optional[RunJournal]) -> None:
    """Install ``journal`` as the ambient journal for ``parallel_map``."""
    global _ACTIVE
    _ACTIVE = journal


def active() -> Optional[RunJournal]:
    """The ambient journal, or ``None`` when runs are not journaled."""
    return _ACTIVE


@contextlib.contextmanager
def use_journal(journal: Optional[RunJournal]) -> Iterator[Optional[RunJournal]]:
    """Scoped ambient journal (restores the previous one on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = journal
    try:
        yield journal
    finally:
        _ACTIVE = previous
