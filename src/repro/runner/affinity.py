"""CPU-affinity pinning for fan-out workers.

The sharded single-trace scan (:mod:`repro.analysis.sharded`) asks the
pool to pin each worker process to one CPU so shards do not migrate
mid-walk and trample each other's caches.  Placement is *compact*:
worker ``index`` lands on slot ``index % len(slots)`` of the parent's
allowed-CPU list (sorted), so co-scheduled shards fill cores densely
and deterministically.

Everything degrades silently: platforms without
``os.sched_setaffinity`` (macOS, Windows), restricted containers, or a
raced-away CPU mask simply run unpinned — pinning is a performance
hint, never a correctness requirement.  The parent records what
happened in the ``runner.affinity`` gauge (the number of pinnable CPU
slots; 0 when pinning is off or unsupported).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

__all__ = ["supported", "slots", "pin"]


def supported() -> bool:
    """Can this platform pin processes to CPUs at all?"""
    return hasattr(os, "sched_setaffinity") and hasattr(os, "sched_getaffinity")


def slots() -> List[int]:
    """The CPUs the current process may run on, sorted; [] if unknown."""
    if not supported():
        return []
    try:
        return sorted(os.sched_getaffinity(0))
    except OSError:  # pragma: no cover - exotic kernel refusal
        return []


def pin(index: int, cpu_slots: Optional[Sequence[int]] = None) -> Optional[int]:
    """Pin the calling process to one CPU (compact placement).

    Returns the CPU pinned to, or ``None`` when pinning is unavailable
    or fails — callers must treat ``None`` as "keep running unpinned".
    """
    cpus = list(cpu_slots) if cpu_slots is not None else slots()
    if not cpus:
        return None
    cpu = cpus[index % len(cpus)]
    try:
        os.sched_setaffinity(0, {cpu})
    except (AttributeError, OSError):
        return None
    return cpu
