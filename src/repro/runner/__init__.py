"""Parallel execution + content-addressed caching for the pipeline.

The substrate every scaling feature builds on:

* :mod:`repro.runner.pool` — supervised deterministic fan-out
  (``jobs=N`` output is bit-for-bit identical to serial; per-task
  timeouts, bounded retries, crashed-worker replacement, and a
  partial-results quarantine via :class:`ExecPolicy`),
* :mod:`repro.runner.cache` — content-addressed on-disk cache of
  recorded traces (compressed JSONL) and derived results (pickled);
  corrupt entries self-heal as misses,
* :mod:`repro.runner.keys` — stable cache keys folding in workload
  parameters, seeds, and the package's own code version,
* :mod:`repro.runner.journal` — append-only per-run ledger so a killed
  run can resume, skipping tasks whose results are already durable,
* :mod:`repro.runner.checkpoint` — segment-granular checkpoints for
  the streaming analysis and timeline passes,
* :mod:`repro.runner.budget` — wall-clock/memory run budgets with
  graceful degradation to partial results.
"""

from repro.runner.budget import RunBudget, use_budget
from repro.runner.cache import (
    CacheInfo,
    TraceCache,
    active,
    analyze_segments_cached,
    configure,
    default_cache_dir,
    memoized,
    record_cached,
    transform_cached,
    use_cache,
)
from repro.runner.checkpoint import Checkpointer
from repro.runner.journal import RunJournal, list_runs, read_journal, use_journal
from repro.runner.keys import cache_key, code_version, segmented_digest, trace_digest
from repro.runner.pool import ExecPolicy, TaskFailure, effective_jobs, parallel_map

__all__ = [
    "Checkpointer",
    "ExecPolicy",
    "RunBudget",
    "RunJournal",
    "TaskFailure",
    "list_runs",
    "read_journal",
    "use_budget",
    "use_journal",
    "CacheInfo",
    "TraceCache",
    "active",
    "analyze_segments_cached",
    "configure",
    "default_cache_dir",
    "memoized",
    "record_cached",
    "transform_cached",
    "use_cache",
    "cache_key",
    "code_version",
    "segmented_digest",
    "trace_digest",
    "effective_jobs",
    "parallel_map",
]
