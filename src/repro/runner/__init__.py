"""Parallel execution + content-addressed caching for the pipeline.

The substrate every scaling feature builds on:

* :mod:`repro.runner.pool` — supervised deterministic fan-out
  (``jobs=N`` output is bit-for-bit identical to serial; per-task
  timeouts, bounded retries, crashed-worker replacement, and a
  partial-results quarantine via :class:`ExecPolicy`),
* :mod:`repro.runner.cache` — content-addressed on-disk cache of
  recorded traces (compressed JSONL) and derived results (pickled);
  corrupt entries self-heal as misses,
* :mod:`repro.runner.keys` — stable cache keys folding in workload
  parameters, seeds, and the package's own code version.
"""

from repro.runner.cache import (
    CacheInfo,
    TraceCache,
    active,
    analyze_segments_cached,
    configure,
    default_cache_dir,
    memoized,
    record_cached,
    transform_cached,
    use_cache,
)
from repro.runner.keys import cache_key, code_version, segmented_digest, trace_digest
from repro.runner.pool import ExecPolicy, TaskFailure, effective_jobs, parallel_map

__all__ = [
    "ExecPolicy",
    "TaskFailure",
    "CacheInfo",
    "TraceCache",
    "active",
    "analyze_segments_cached",
    "configure",
    "default_cache_dir",
    "memoized",
    "record_cached",
    "transform_cached",
    "use_cache",
    "cache_key",
    "code_version",
    "segmented_digest",
    "trace_digest",
    "effective_jobs",
    "parallel_map",
]
