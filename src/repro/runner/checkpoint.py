"""Segment-granular checkpoints for the streaming analysis paths.

The segmented trace format (PR 6) processes a trace one immutable
segment at a time, carrying a small amount of state between segments
(open critical sections, per-thread access masks, timeline lanes).
That carried state *is* the checkpoint: persist it every N segments and
a killed analysis restarts from the last saved segment boundary instead
of byte 0.

A checkpoint is a gzip-pickle written atomically (tmp + ``os.replace``)
and stamped with a *tag* — the trace's content digest and file size —
so a checkpoint taken against one file can never be replayed against
another.  Any unreadable, mismatched, or version-skewed checkpoint is
silently discarded and the analysis restarts from the beginning: a
checkpoint can only ever save work, never change a result.

(Not to be confused with :mod:`repro.trace.checkpoint`, the paper's
§5.1 in-simulation re-debugging snapshot — that checkpoints the
*simulated machine*; this checkpoints the *analysis process*.)
"""

from __future__ import annotations

import contextlib
import gzip
import os
import pickle
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.chaos.points import crash_point

#: on-disk format marker + version for checkpoint payloads
FORMAT_KEY = "repro-checkpoint"
FORMAT_VERSION = 1

#: default checkpoint cadence (segments between saves)
DEFAULT_EVERY = 16


class Checkpointer:
    """Persists streaming-analysis state every ``every`` segments."""

    def __init__(self, path: Union[str, Path], tag: str, every: int = DEFAULT_EVERY):
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        self.path = Path(path)
        self.tag = tag
        self.every = every
        self._last_saved = -1

    def due(self, segments_done: int) -> bool:
        """Whether a save should happen after ``segments_done`` segments."""
        return (
            segments_done > 0
            and segments_done % self.every == 0
            and segments_done != self._last_saved
        )

    def save(self, payload: Any, segments_done: int) -> None:
        """Atomically persist ``payload`` as the state after ``segments_done``."""
        record = {
            "format": FORMAT_KEY,
            "version": FORMAT_VERSION,
            "tag": self.tag,
            "segments_done": segments_done,
            "payload": payload,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".tmp-{os.getpid()}-{self.path.name}")
        try:
            with open(tmp, "wb") as raw:
                with gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0) as gz:
                    pickle.dump(record, gz, protocol=pickle.HIGHEST_PROTOCOL)
                raw.flush()
                os.fsync(raw.fileno())
            crash_point("checkpoint.save")
            os.replace(tmp, self.path)
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink(missing_ok=True)
        self._last_saved = segments_done

    def load(self) -> Optional[Tuple[Any, int]]:
        """``(payload, segments_done)`` if a usable checkpoint exists.

        Returns ``None`` — never raises — when the file is absent,
        torn, version-skewed, or was taken against different trace
        bytes (tag mismatch).
        """
        try:
            with gzip.open(self.path, "rb") as gz:
                record = pickle.load(gz)
        except (OSError, EOFError, ValueError, pickle.UnpicklingError,
                AttributeError, ImportError, IndexError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("format") != FORMAT_KEY or record.get("version") != FORMAT_VERSION:
            return None
        if record.get("tag") != self.tag:
            return None
        segments_done = record.get("segments_done")
        if not isinstance(segments_done, int) or segments_done < 0:
            return None
        return record.get("payload"), segments_done

    def clear(self) -> None:
        """Delete the checkpoint (after full success, or when stale)."""
        with contextlib.suppress(OSError):
            self.path.unlink(missing_ok=True)
