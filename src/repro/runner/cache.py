"""Content-addressed on-disk cache for traces and derived results.

Layout under the cache root::

    <root>/traces/<key[:2]>/<key>.jsonl.gz   recorded traces (streamed)
    <root>/blobs/<key[:2]>/<key>.pkl.gz      derived results (pickled)

Traces use the compressed JSONL format of :mod:`repro.trace.serialize`
(human-inspectable with ``zcat``); derived artifacts — machine
accounting, transformation results, experiment cell outputs — are
gzip-pickled.  Both are keyed by :func:`repro.runner.keys.cache_key`,
which folds in the package's code version, so stale entries from an
older checkout can never be returned.  Writes are atomic (temp file +
rename), so a crashed or parallel writer never leaves a torn entry.

The *active* cache is module-level state configured once per process
(:func:`configure`); worker processes inherit it through the pool
initializer in :mod:`repro.runner.pool`.  It defaults to disabled unless
``REPRO_CACHE_DIR`` is set, keeping library use hermetic; the CLI
enables it per invocation (``--cache-dir`` / ``--no-cache``).

High-level cached entry points:

* :func:`record_cached` — record a registered workload, backed by the
  trace cache (plus a blob for the recording machine's accounting);
* :func:`transform_cached` — ULCP transformation keyed by the input
  trace's content digest;
* :func:`memoized` — generic derived-result memoization used by the
  experiment cells.
"""

from __future__ import annotations

import contextlib
import gzip
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro import faults, telemetry
from repro.chaos.points import crash_point
from repro.runner.keys import cache_key, segmented_digest, trace_digest
from repro.trace import serialize
from repro.trace.trace import Trace
from repro.util import tmp as tmpfiles

#: environment override for the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: cwd-relative default so the cache lives next to the project using it
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.cwd() / DEFAULT_CACHE_DIRNAME


@dataclass
class CacheInfo:
    """Summary of a cache directory's contents."""

    root: Path
    traces: int
    blobs: int
    total_bytes: int

    def render(self) -> str:
        return (
            f"cache root : {self.root}\n"
            f"traces     : {self.traces}\n"
            f"blobs      : {self.blobs}\n"
            f"total size : {self.total_bytes / 1024:.1f} KiB"
        )


class TraceCache:
    """Content-addressed trace + derived-result store."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------- traces

    def trace_path(self, key: str) -> Path:
        return self.root / "traces" / key[:2] / f"{key}.jsonl.gz"

    def get_trace(self, key: str) -> Optional[Trace]:
        path = self.trace_path(key)
        if not path.exists():
            telemetry.count("cache.trace.misses")
            return None
        if faults.fires("cache.trace_corrupt", key=key):
            faults.corrupt_file(path, "truncate")
        try:
            trace = serialize.load(path)
        except Exception:
            # a corrupt entry is a miss, not an error: drop it and recompute
            path.unlink(missing_ok=True)
            telemetry.count("cache.corrupt_dropped")
            telemetry.count("cache.trace.misses")
            return None
        telemetry.count("cache.trace.hits")
        return trace

    def put_trace(self, key: str, trace: Trace) -> Path:
        path = self.trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # dump() itself is atomic (tmp + os.replace), so a crashed or
        # parallel writer never leaves a torn entry
        serialize.dump(trace, path)
        return path

    # -------------------------------------------------------------- blobs

    def blob_path(self, key: str) -> Path:
        return self.root / "blobs" / key[:2] / f"{key}.pkl.gz"

    def get_blob(self, key: str):
        path = self.blob_path(key)
        if not path.exists():
            telemetry.count("cache.blob.misses")
            return None
        if faults.fires("cache.blob_corrupt", key=key):
            faults.corrupt_file(path, "bitflip")
        try:
            with gzip.open(path, "rb") as handle:
                value = pickle.load(handle)
        except Exception:
            # a corrupt entry is a miss, not an error: drop it and recompute
            path.unlink(missing_ok=True)
            telemetry.count("cache.corrupt_dropped")
            telemetry.count("cache.blob.misses")
            return None
        telemetry.count("cache.blob.hits")
        return value

    def put_blob(self, key: str, value) -> Path:
        path = self.blob_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = tmpfiles.tmp_name(path)
        try:
            with gzip.open(tmp, "wb", compresslevel=1) as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            crash_point("cache.commit")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    # ------------------------------------------------------- maintenance

    def _entries(self):
        for sub in ("traces", "blobs"):
            base = self.root / sub
            if base.exists():
                # skip atomic-write staging files: a SIGKILLed writer's
                # leftovers are never entries, just litter awaiting a reap
                yield from (
                    p for p in base.rglob("*")
                    if p.is_file() and not tmpfiles.is_tmp_name(p.name)
                )

    def reap_tmp(self) -> int:
        """Remove staging files whose owning process died; returns count."""
        removed = tmpfiles.reap_stale(self.root)
        if removed:
            telemetry.count("cache.tmp_reaped", removed)
        return removed

    def info(self) -> CacheInfo:
        traces = blobs = total = 0
        for path in self._entries():
            total += path.stat().st_size
            if path.name.endswith(".jsonl.gz"):
                traces += 1
            elif path.name.endswith(".pkl.gz"):
                blobs += 1
        return CacheInfo(root=self.root, traces=traces, blobs=blobs, total_bytes=total)

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ---------------------------------------------------------------- active cache

_ACTIVE: Optional[TraceCache] = None


def configure(root: Optional[Union[str, Path]],
              reap: bool = True) -> Optional[TraceCache]:
    """Set the process-wide active cache (``None`` disables caching).

    Opening a cache sweeps staging files leaked by writers that were
    SIGKILLed between ``open`` and ``os.replace`` (live writers' files
    are left alone — the pid in the name is checked).  Pool workers pass
    ``reap=False``: they re-configure per task, and one sweep per run in
    the parent is enough.
    """
    global _ACTIVE
    _ACTIVE = TraceCache(root) if root is not None else None
    if reap and _ACTIVE is not None and _ACTIVE.root.is_dir():
        _ACTIVE.reap_tmp()
    return _ACTIVE


def active() -> Optional[TraceCache]:
    return _ACTIVE


@contextlib.contextmanager
def use_cache(root: Optional[Union[str, Path]]):
    """Temporarily activate (or disable, with ``None``) a cache."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = TraceCache(root) if root is not None else None
    if _ACTIVE is not None and _ACTIVE.root.is_dir():
        _ACTIVE.reap_tmp()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


if os.environ.get(CACHE_DIR_ENV):
    configure(default_cache_dir())


# ----------------------------------------------------------- cached pipeline


def memoized(kind: str, params: dict, compute: Callable[[], object]):
    """Return the cached result of ``compute`` or run and cache it.

    ``params`` must capture everything the computation depends on (the
    code version is mixed in automatically).  With no active cache this
    is just ``compute()``.
    """
    cache = active()
    if cache is None:
        return compute()
    key = cache_key(kind, **params)
    hit = cache.get_blob(key)
    if hit is not None:
        return hit
    value = compute()
    cache.put_blob(key, value)
    return value


def record_cached(
    name: str,
    *,
    threads: int = 2,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    num_cores: Optional[int] = None,
    lock_cost: Optional[int] = None,
    mem_cost: Optional[int] = None,
    workload_kwargs: Optional[dict] = None,
):
    """Record a registered workload, backed by the trace cache.

    Returns a :class:`~repro.record.recorder.RecordResult`.  The trace is
    stored in the ``.jsonl.gz`` trace cache and the recording machine's
    accounting as a companion blob; a hit skips the recording run
    entirely.  Recording is deterministic per (workload, params, seed),
    so a cache hit is bit-for-bit the trace a fresh recording would
    produce.
    """
    from repro.record.recorder import RecordResult
    from repro.workloads import get_workload

    kwargs = dict(workload_kwargs or {})
    record_kwargs = {}
    if num_cores is not None:
        record_kwargs["num_cores"] = num_cores
    if lock_cost is not None:
        record_kwargs["lock_cost"] = lock_cost
    if mem_cost is not None:
        record_kwargs["mem_cost"] = mem_cost

    def fresh() -> RecordResult:
        workload = get_workload(
            name, threads=threads, input_size=input_size, scale=scale, seed=seed,
            **kwargs,
        )
        return workload.record(**record_kwargs)

    cache = active()
    if cache is None:
        return fresh()
    key = cache_key(
        "record",
        name=name,
        threads=threads,
        input_size=input_size,
        scale=scale,
        seed=seed,
        workload_kwargs=kwargs,
        **record_kwargs,
    )
    trace = cache.get_trace(key)
    machine_result = cache.get_blob(key)
    if trace is not None and machine_result is not None:
        return RecordResult(trace=trace, machine_result=machine_result)
    recorded = fresh()
    cache.put_trace(key, recorded.trace)
    cache.put_blob(key, recorded.machine_result)
    return recorded


def analyze_segments_cached(path, *, benign_detection: bool = True):
    """Streaming ULCP analysis backed by the blob cache.

    Keyed by the segmented file's per-segment content digests (cheap to
    compute — the sidecar index when fresh, a digest-only stream
    otherwise), so re-analyzing an unchanged multi-gigabyte trace is a
    blob read instead of a two-pass stream.
    """
    from repro.analysis.streaming import analyze_segments

    cache = active()
    if cache is None:
        return analyze_segments(path, benign_detection=benign_detection)
    return memoized(
        "analyze_segments",
        {"trace": segmented_digest(path), "benign_detection": benign_detection},
        lambda: analyze_segments(path, benign_detection=benign_detection),
    )


def transform_cached(trace: Trace, **options):
    """ULCP transformation backed by the blob cache.

    Keyed by the input trace's content digest plus the transformation
    options, so any change to the trace or the code invalidates the
    entry.
    """
    from repro.analysis.transform import transform

    cache = active()
    if cache is None:
        return transform(trace, **options)
    return memoized(
        "transform",
        {"trace": trace_digest(trace), "options": options},
        lambda: transform(trace, **options),
    )
