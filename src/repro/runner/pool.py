"""Deterministic multiprocessing fan-out for experiment cells.

:func:`parallel_map` is an order-preserving ``map`` over a worker pool.
Determinism is by construction:

* every cell is a pure function of its (picklable) task — all seeds are
  fixed inside the task, no worker-local RNG state leaks in,
* results come back in task order (``Pool.map``), so building an output
  dict/list from them reproduces the serial insertion order exactly,
* the active trace cache is re-configured inside each worker via the
  pool initializer (safe under both fork and spawn start methods).

Hence ``jobs=N`` output is bit-for-bit identical to ``jobs=1`` — the
property the determinism tests pin down.

Cell functions must be module-level (picklable by reference).  With
``jobs<=1`` or a single task everything runs inline in the parent, which
is also the fallback the tests compare against.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def effective_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: ``None``/``0``/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _worker_init(cache_root: Optional[str]) -> None:
    from repro.runner import cache

    cache.configure(cache_root)


def parallel_map(fn: Callable[[T], R], tasks: Sequence[T], *, jobs: int = 1) -> List[R]:
    """Apply ``fn`` to every task, fanning out over ``jobs`` processes.

    Results are returned in task order regardless of completion order.
    ``fn`` must be a module-level function and tasks/results picklable.
    """
    tasks = list(tasks)
    jobs = effective_jobs(jobs) if jobs != 1 else 1
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]

    from repro.runner import cache

    active = cache.active()
    cache_root = str(active.root) if active is not None else None
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=min(jobs, len(tasks)),
        initializer=_worker_init,
        initargs=(cache_root,),
    ) as pool:
        return pool.map(fn, tasks, chunksize=1)
