"""Supervised deterministic fan-out for experiment cells.

:func:`parallel_map` is an order-preserving ``map`` over worker
processes.  Determinism is by construction:

* every cell is a pure function of its (picklable) task — all seeds are
  fixed inside the task, no worker-local RNG state leaks in,
* results are assembled by task index regardless of completion order,
  so building an output dict/list from them reproduces the serial
  insertion order exactly,
* the active trace cache and fault plan are re-configured inside each
  worker (safe under both fork and spawn start methods).

Hence ``jobs=N`` output is bit-for-bit identical to ``jobs=1`` — the
property the determinism tests pin down — and that invariant survives
the supervision features below because none of them touch results on
the success path.

Supervision (:class:`ExecPolicy`): each task runs in its own worker
process watched by the parent.  A worker that dies (``TaskCrashError``)
or exceeds the per-attempt ``timeout`` (``TaskTimeoutError``) is
replaced and the task retried up to ``retries`` times with a
deterministic exponential backoff schedule (the schedule, not measured
wall-clock, is what lands in failure records).  A task that still fails
either aborts the whole map promptly (``partial=False``, the default:
remaining workers are terminated and a :class:`repro.errors.TaskError`
subclass is raised naming the task) or is quarantined as a structured
:class:`TaskFailure` in the result list (``partial=True``), so one bad
cell degrades an experiment table to ``n/a`` cells instead of killing
the run.

Retry policy: crashes, timeouts, and injected faults are retried
(transient by nature); an ordinary exception raised by the cell function
is deterministic, so it fails fast without retries, wrapped with the
task index and repr.

Cell functions must be module-level (picklable by reference).  With
``jobs<=1`` or a single task everything runs inline in the parent —
also the fallback the determinism tests compare against.  The inline
path honours the same fault sites (a ``pool.worker_crash`` fault
becomes a raised crash failure rather than a real process death), so
partial-mode tables degrade identically in serial and parallel runs.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro import faults, log, telemetry
from repro.errors import (
    BudgetExceededError,
    FaultInjected,
    RunInterrupted,
    TaskCrashError,
    TaskError,
    TaskTimeoutError,
)

_log = log.get_logger("runner.pool")

T = TypeVar("T")
R = TypeVar("R")

#: exit code an injected worker crash dies with
CRASH_EXIT_CODE = 86
#: how long an injected hang sleeps (recovery needs a timeout well below)
HANG_SECONDS = 3600.0
#: supervisor poll granularity, seconds
_POLL_SECONDS = 0.05
#: failure kinds worth retrying (transient); plain errors are deterministic
#: ("budget" is never retried: the whole run is out of time or memory)
RETRYABLE_KINDS = frozenset({"crash", "timeout", "fault"})


class _RunStats:
    """Counters the CLI reads to pick its exit code (reset per command)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: tasks quarantined as TaskFailure results (partial mode)
        self.quarantined = 0
        #: tasks stopped/never started because the run budget was spent
        self.budget_stopped = 0
        #: tasks skipped because the journal already had their results
        self.skipped = 0

    def degraded(self) -> bool:
        return self.quarantined > 0 or self.budget_stopped > 0


RUN_STATS = _RunStats()


def effective_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: ``None``/``0``/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class ExecPolicy:
    """How the supervised executor treats failing tasks."""

    #: per-attempt timeout in seconds (``None`` disables the watchdog)
    timeout: Optional[float] = None
    #: extra attempts after the first (0 = fail on first failure)
    retries: int = 0
    #: backoff before retry k (1-based) is ``min(cap, base * 2**(k-1))``
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: quarantine failed tasks as :class:`TaskFailure` results instead of
    #: aborting the whole map
    partial: bool = False
    #: pin each worker to one CPU (compact placement over the parent's
    #: allowed CPUs); silently ignored where unsupported — see
    #: :mod:`repro.runner.affinity`
    pin_workers: bool = False

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic delay before retrying after 0-based ``attempt``."""
        return min(self.backoff_cap, self.backoff_base * (2 ** attempt))


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one quarantined task."""

    index: int
    task_repr: str
    kind: str  # "crash" | "timeout" | "error" | "fault" | "budget"
    message: str
    attempts: int
    #: the deterministic backoff schedule the retries used (no wall-clock)
    backoff: Tuple[float, ...] = ()
    #: remote traceback text, empty for crashes/timeouts
    detail: str = ""

    def render(self) -> str:
        return (
            f"n/a: task {self.index} ({self.task_repr}) {self.kind} "
            f"after {self.attempts} attempt(s): {self.message}"
        )


def _short_repr(task, limit: int = 80) -> str:
    text = repr(task)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _to_exception(failure: TaskFailure) -> TaskError:
    cls = {
        "timeout": TaskTimeoutError,
        "crash": TaskCrashError,
        "budget": BudgetExceededError,
    }.get(failure.kind, TaskError)
    exc = cls(
        f"task {failure.index} ({failure.task_repr}) {failure.kind} after "
        f"{failure.attempts} attempt(s): {failure.message}"
    )
    exc.failure = failure
    return exc


def _worker_init(cache_root: Optional[str], plan=None) -> None:
    from repro.runner import cache

    # reap=False: workers spawn per task; the parent already swept once
    cache.configure(cache_root, reap=False)
    faults.configure(plan)


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    partial: bool = False,
    policy: Optional[ExecPolicy] = None,
) -> List[R]:
    """Apply ``fn`` to every task, fanning out over ``jobs`` processes.

    Results are returned in task order regardless of completion order.
    ``fn`` must be a module-level function and tasks/results picklable.
    ``policy`` (or the ``timeout``/``retries``/``partial`` shorthands)
    selects the supervision behaviour documented in the module docstring;
    the default policy reproduces plain fail-fast mapping.
    """
    if policy is None:
        policy = ExecPolicy(timeout=timeout, retries=retries, partial=partial)
    tasks = list(tasks)
    if tasks:
        telemetry.count("pool.tasks", len(tasks))
    from repro.runner import budget as budget_mod, cache, journal as journal_mod

    run_budget = budget_mod.active()
    store = cache.active()
    journal = journal_mod.active()
    if journal is not None and store is None:
        # journaled completions live in the blob cache; without a cache
        # there is nowhere to keep results, so run un-journaled
        journal = None
    keys: Optional[List[str]] = None
    prefill: Dict[int, object] = {}
    if journal is not None:
        keys, prefill = _journal_prefill(journal, store, fn, tasks)
        if prefill:
            telemetry.count("pool.journal_skipped", len(prefill))
            RUN_STATS.skipped += len(prefill)
    jobs = effective_jobs(jobs) if jobs != 1 else 1
    if jobs <= 1 or len(tasks) <= 1:
        results = _serial_map(fn, tasks, policy, journal=journal, store=store,
                              keys=keys, prefill=prefill, budget=run_budget)
    else:
        results = _Supervisor(fn, tasks, jobs, policy, journal=journal,
                              store=store, keys=keys, prefill=prefill,
                              budget=run_budget).run()
    if journal is not None and not any(isinstance(r, TaskFailure) for r in results):
        journal.complete(len(tasks))
    return results


def _journal_prefill(journal, store, fn, tasks):
    """Task keys plus results the journal (backed by the cache) already has.

    A journaled completion is trusted only when the blob cache holds a
    result under the same content key whose digest matches the ledger —
    the journal can claim nothing the cache cannot back.
    """
    from repro.runner import journal as journal_mod

    keys = [journal_mod.task_key(fn, index, task) for index, task in enumerate(tasks)]
    prefill: Dict[int, object] = {}
    for index, (key, digest) in journal.done_tasks().items():
        if index >= len(tasks) or keys[index] != key:
            continue
        wrapped = store.get_blob(key)
        if (
            isinstance(wrapped, tuple)
            and len(wrapped) == 2
            and wrapped[0] == "repro.journal.result"
            and journal_mod.result_digest(wrapped) == digest
        ):
            prefill[index] = wrapped[1]
    return keys, prefill


def _journal_commit(journal, store, index: int, key: str, attempt: int, value) -> None:
    """Write-through: commit a result to the cache, then the ledger.

    The wrapper tuple keeps a legitimately-``None`` result distinct from
    a cache miss (``get_blob`` returns ``None`` for misses).  Order
    matters: the blob must be durable before the ledger line that
    promises it exists.
    """
    wrapped = ("repro.journal.result", value)
    from repro.runner import journal as journal_mod

    digest = journal_mod.result_digest(wrapped)
    store.put_blob(key, wrapped)
    journal.task_done(index, key, attempt, digest)


def _count_attempt_failure(kind: str) -> None:
    """Parent-side failure accounting, identical in serial and parallel."""
    if kind == "crash":
        telemetry.count("pool.crashes")
    elif kind == "timeout":
        telemetry.count("pool.timeouts")


def _log_attempt_failure(
    index: int, kind: str, message: str, attempt: int, retrying: bool
) -> None:
    """One greppable event per failed attempt (serial and parallel alike)."""
    _log.warning(
        "task %d attempt %d %s: %s",
        index, attempt + 1, kind, message,
        extra={
            "event": "pool.task_failure",
            "task": index,
            "kind": kind,
            "attempt": attempt + 1,
            "retry": retrying,
        },
    )


def _log_quarantine(failure: TaskFailure) -> None:
    _log.warning(
        "task %d quarantined after %d attempt(s): %s",
        failure.index, failure.attempts, failure.message,
        extra={
            "event": "pool.quarantine",
            "task": failure.index,
            "kind": failure.kind,
            "attempts": failure.attempts,
        },
    )


# ------------------------------------------------------------- serial path


def _serial_map(fn, tasks, policy: ExecPolicy, *, journal=None, store=None,
                keys=None, prefill=None, budget=None) -> List:
    prefill = prefill or {}
    results = []
    try:
        for index, task in enumerate(tasks):
            if index in prefill:
                results.append(prefill[index])
                continue
            if budget is not None:
                reason = budget.exhausted()
                if reason is not None:
                    results.append(
                        _quarantine_budget(policy, index, _short_repr(task),
                                           f"not started: {reason}")
                    )
                    continue
            backoff: List[float] = []
            failure = None
            for attempt in range(policy.retries + 1):
                if journal is not None:
                    journal.task_start(index, keys[index], attempt)
                status, payload, detail = _attempt_inline(fn, task, index, attempt)
                if status == "ok":
                    failure = None
                    if journal is not None:
                        _journal_commit(journal, store, index, keys[index],
                                        attempt, payload)
                    results.append(payload)
                    break
                _count_attempt_failure(status)
                retrying = status in RETRYABLE_KINDS and attempt < policy.retries
                _log_attempt_failure(index, status, payload, attempt, retrying)
                failure = TaskFailure(
                    index=index,
                    task_repr=_short_repr(task),
                    kind=status,
                    message=payload,
                    attempts=attempt + 1,
                    backoff=tuple(backoff),
                    detail=detail,
                )
                if retrying:
                    # record the deterministic schedule; no need to actually
                    # sleep in-process — the failure was synchronous
                    backoff.append(policy.backoff_delay(attempt))
                    telemetry.count("pool.retries")
                    continue
                break
            if failure is not None:
                if not policy.partial:
                    raise _to_exception(failure)
                telemetry.count("pool.quarantined")
                RUN_STATS.quarantined += 1
                _log_quarantine(failure)
                results.append(failure)
    except KeyboardInterrupt:
        _interrupted(journal, "operator interrupt during serial map")
    return results


def _quarantine_budget(policy: ExecPolicy, index: int, task_repr: str,
                       message: str) -> TaskFailure:
    """A budget-stopped task: quarantined in partial mode, fatal otherwise."""
    failure = TaskFailure(
        index=index,
        task_repr=task_repr,
        kind="budget",
        message=message,
        attempts=0,
    )
    if not policy.partial:
        raise _to_exception(failure)
    telemetry.count("pool.budget_stopped")
    RUN_STATS.budget_stopped += 1
    _log_quarantine(failure)
    return failure


def _interrupted(journal, note: str) -> "None":
    """Record the interrupt in the ledger, then raise the structured error."""
    run_id = None
    if journal is not None:
        journal.interrupted(note)
        run_id = journal.run_id
    telemetry.count("pool.interrupted")
    raise RunInterrupted(run_id=run_id) from None


def _attempt_inline(fn, task, index: int, attempt: int):
    """One inline attempt: ``("ok", result, "")`` or ``(kind, msg, detail)``."""
    if faults.fires("pool.worker_crash", key=index, attempt=attempt):
        return ("crash", f"injected worker crash (exit {CRASH_EXIT_CODE})", "")
    if faults.fires("pool.worker_hang", key=index, attempt=attempt):
        return ("timeout", "injected worker hang", "")
    try:
        # the same attempt span a worker process opens, so serial and
        # parallel runs aggregate identical span trees, and retried
        # attempts land under distinct keys (no double-counted stages)
        with telemetry.span("runner.task", attempt=attempt):
            return ("ok", fn(task), "")
    except FaultInjected as exc:
        return ("fault", str(exc), traceback.format_exc())
    except Exception as exc:
        return ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())


# ----------------------------------------------------------- parallel path


def _run_remote(fn, task, index, attempt, cache_root, plan, collect, out_queue,
                pin_cpus=()) -> None:
    """Worker body: run one task attempt, send one message, exit.

    With ``collect`` set (telemetry enabled in the parent) the worker
    builds its own private sink and ships its snapshot alongside the
    result; the parent merges snapshots in task order, which is what
    makes merged ``--jobs N`` metrics equal a serial run's.
    """
    if pin_cpus:
        from repro.runner import affinity

        affinity.pin(index, pin_cpus)  # best effort; None = run unpinned
    _worker_init(cache_root, plan)
    sink = telemetry.configure(telemetry.Telemetry()) if collect else None
    try:
        if faults.fires("pool.worker_crash", key=index, attempt=attempt):
            os._exit(CRASH_EXIT_CODE)
        if faults.fires("pool.worker_hang", key=index, attempt=attempt):
            time.sleep(HANG_SECONDS)
        with telemetry.span("runner.task", attempt=attempt):
            result = fn(task)
        message = (index, "ok", result, "")
    except FaultInjected as exc:
        message = (index, "fault", str(exc), traceback.format_exc())
    except KeyboardInterrupt:
        # a terminal SIGINT reaches the whole process group; die quietly
        # with the conventional 130 instead of spraying tracebacks — the
        # parent is unwinding via RunInterrupted at the same moment
        os._exit(130)
    except BaseException as exc:
        message = (index, "error", f"{type(exc).__name__}: {exc}",
                   traceback.format_exc())
    snapshot = sink.snapshot() if sink is not None else None
    try:
        out_queue.put(message + (snapshot,))
    except Exception as exc:  # e.g. an unpicklable result
        out_queue.put((index, "error", f"unsendable result: {exc!r}", "", snapshot))


class _Supervisor:
    """Watches one bounded fleet of single-task worker processes."""

    def __init__(self, fn, tasks, jobs: int, policy: ExecPolicy, *,
                 journal=None, store=None, keys=None, prefill=None, budget=None):
        self.fn = fn
        self.tasks = tasks
        self.jobs = min(jobs, len(tasks))
        self.policy = policy
        self.journal = journal
        self.store = store
        self.keys = keys
        self.budget = budget
        self.ctx = multiprocessing.get_context()
        self.queue = self.ctx.Queue()
        self.pin_cpus: Tuple[int, ...] = ()
        if policy.pin_workers:
            from repro.runner import affinity

            self.pin_cpus = tuple(affinity.slots())
            # 0 = pinning requested but unavailable on this platform
            telemetry.gauge("runner.affinity", len(self.pin_cpus))
        from repro.runner import cache

        store = cache.active()
        self.cache_root = str(store.root) if store is not None else None
        self.plan = faults.active()
        self.collect = telemetry.enabled()
        self.results: Dict[int, object] = dict(prefill or {})
        self.failures: Dict[int, TaskFailure] = {}
        self.attempt: Dict[int, int] = {}
        self.backoff_used: Dict[int, List[float]] = {}
        #: index -> worker snapshots in attempt order, merged at the end
        self.snapshots: Dict[int, List[dict]] = {}
        #: (index, earliest monotonic launch time)
        self.pending: List[Tuple[int, float]] = [
            (i, 0.0) for i in range(len(tasks)) if i not in self.results
        ]
        #: index -> (process, per-attempt deadline or None, timeout used)
        self.in_flight: Dict[
            int, Tuple[multiprocessing.Process, Optional[float], Optional[float]]
        ] = {}

    def run(self) -> List:
        try:
            while len(self.results) + len(self.failures) < len(self.tasks):
                if self.budget is not None:
                    reason = self.budget.exhausted()
                    if reason is not None:
                        self._budget_stop(reason)
                        continue
                self._launch_ready()
                self._drain(block=True)
                self._reap()
        except KeyboardInterrupt:
            # finally still terminates workers and merges telemetry
            _interrupted(self.journal, "operator interrupt during supervised run")
        finally:
            self._terminate_all()
            self._merge_telemetry()
        return [
            self.results[i] if i in self.results else self.failures[i]
            for i in range(len(self.tasks))
        ]

    def _budget_stop(self, reason: str) -> None:
        """The run budget is spent: stop everything, fail what's unresolved."""
        for index, (proc, _deadline, _timeout) in list(self.in_flight.items()):
            if proc.is_alive():
                proc.terminate()
            proc.join()
            self.in_flight.pop(index, None)
            self.failures[index] = _quarantine_budget(
                self.policy, index, _short_repr(self.tasks[index]),
                f"stopped mid-task: {reason}",
            )
        waiting, self.pending = self.pending, []
        for index, _not_before in waiting:
            self.failures[index] = _quarantine_budget(
                self.policy, index, _short_repr(self.tasks[index]),
                f"not started: {reason}",
            )

    def _merge_telemetry(self) -> None:
        """Fold worker snapshots into the parent sink, in task order.

        Task-then-attempt order makes the merged totals independent of
        worker completion order — the serial path emits in exactly this
        order, so ``jobs=N`` metrics equal ``jobs=1`` metrics.
        """
        sink = telemetry.active()
        if sink is None or not self.snapshots:
            return
        for index in sorted(self.snapshots):
            for snapshot in self.snapshots[index]:
                sink.merge(snapshot)

    # ------------------------------------------------------------ lifecycle

    def _launch_ready(self) -> None:
        if not self.pending or len(self.in_flight) >= self.jobs:
            return
        now = time.monotonic()
        still_waiting = []
        for index, not_before in self.pending:
            if len(self.in_flight) >= self.jobs or not_before > now:
                still_waiting.append((index, not_before))
                continue
            self._launch(index)
        self.pending = still_waiting

    def _launch(self, index: int) -> None:
        attempt = self.attempt.get(index, 0)
        if self.journal is not None:
            self.journal.task_start(index, self.keys[index], attempt)
        proc = self.ctx.Process(
            target=_run_remote,
            args=(self.fn, self.tasks[index], index, attempt,
                  self.cache_root, self.plan, self.collect, self.queue,
                  self.pin_cpus),
            daemon=True,
        )
        proc.start()
        timeout = self.policy.timeout
        if self.budget is not None:
            timeout = self.budget.clamp_timeout(timeout)
        deadline = time.monotonic() + timeout if timeout is not None else None
        self.in_flight[index] = (proc, deadline, timeout)

    def _drain(self, *, block: bool) -> None:
        try:
            message = self.queue.get(timeout=_POLL_SECONDS) if block \
                else self.queue.get_nowait()
        except queue_mod.Empty:
            return
        self._handle(message)
        while True:
            try:
                message = self.queue.get_nowait()
            except queue_mod.Empty:
                return
            self._handle(message)

    def _handle(self, message) -> None:
        index, status, payload, detail, snapshot = message
        entry = self.in_flight.pop(index, None)
        if entry is None:
            # stale message from an attempt already reaped (e.g. a result
            # that raced a timeout termination): the verdict stands
            return
        entry[0].join()
        if snapshot is not None:
            self.snapshots.setdefault(index, []).append(snapshot)
        if status == "ok":
            if self.journal is not None:
                _journal_commit(self.journal, self.store, index,
                                self.keys[index], self.attempt.get(index, 0),
                                payload)
            self.results[index] = payload
        else:
            self._failed(index, status, payload, detail)

    def _reap(self) -> None:
        now = time.monotonic()
        for index, (proc, deadline, _timeout) in list(self.in_flight.items()):
            if index not in self.in_flight:
                # resolved by a message drained while reaping another entry
                continue
            if not proc.is_alive():
                proc.join()
                # the exit may have raced its own result message: give the
                # queue a final look before calling it a crash
                self._drain(block=False)
                if index not in self.in_flight:
                    continue
                self.in_flight.pop(index)
                self._failed(
                    index, "crash",
                    f"worker exited with code {proc.exitcode}", "",
                )
            elif deadline is not None and now >= deadline:
                proc.terminate()
                proc.join()
                self.in_flight.pop(index)
                if self.budget is not None and (
                    self.policy.timeout is None or self.budget.expired()
                ):
                    # the deadline came from the run budget's clamp, not the
                    # per-task policy: fail as "budget" (never retried)
                    self.failures[index] = _quarantine_budget(
                        self.policy, index, _short_repr(self.tasks[index]),
                        "terminated at the run deadline",
                    )
                else:
                    self._failed(
                        index, "timeout",
                        f"task exceeded its {self.policy.timeout:g}s timeout", "",
                    )

    def _failed(self, index: int, kind: str, message: str, detail: str) -> None:
        attempt = self.attempt.get(index, 0)
        _count_attempt_failure(kind)
        retrying = kind in RETRYABLE_KINDS and attempt < self.policy.retries
        _log_attempt_failure(index, kind, message, attempt, retrying)
        if retrying:
            delay = self.policy.backoff_delay(attempt)
            self.backoff_used.setdefault(index, []).append(delay)
            self.attempt[index] = attempt + 1
            self.pending.append((index, time.monotonic() + delay))
            telemetry.count("pool.retries")
            return
        failure = TaskFailure(
            index=index,
            task_repr=_short_repr(self.tasks[index]),
            kind=kind,
            message=message,
            attempts=attempt + 1,
            backoff=tuple(self.backoff_used.get(index, ())),
            detail=detail,
        )
        if self.policy.partial:
            telemetry.count("pool.quarantined")
            RUN_STATS.quarantined += 1
            _log_quarantine(failure)
            self.failures[index] = failure
        else:
            # fail fast: run() terminates the remaining workers on the way out
            raise _to_exception(failure)

    def _terminate_all(self) -> None:
        for proc, _deadline, _timeout in self.in_flight.values():
            if proc.is_alive():
                proc.terminate()
            proc.join()
        self.in_flight.clear()
        self.queue.close()
