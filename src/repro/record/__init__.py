"""Recording: run programs on a machine and capture a trace."""

from repro.record.recorder import RecordResult, Recorder, record

__all__ = ["Recorder", "RecordResult", "record"]
