"""The recording phase of PERFPLAY.

A :class:`Recorder` wires a :class:`~repro.trace.TraceBuilder` into a
fresh machine, runs the given thread programs, and returns the recorded
:class:`~repro.trace.Trace` together with the machine accounting of the
recording run.

Recording runs use no jitter and the FIFO wake policy: the recorded lock
grant order *is* the ELSC schedule that replays will enforce, so the
recording itself must be deterministic for a given workload and seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro import telemetry
from repro.sim.machine import Machine
from repro.sim.stats import MachineResult
from repro.sim.timebase import DEFAULT_LOCK_COST, DEFAULT_MEM_COST
from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace, TraceMeta
from repro.trace.validate import validate


@dataclass
class RecordResult:
    """A recorded trace plus the accounting of the recording run."""

    trace: Trace
    machine_result: MachineResult

    @property
    def recorded_time(self) -> int:
        return self.machine_result.end_time


class Recorder:
    """Records executions of thread programs into traces."""

    def __init__(
        self,
        *,
        num_cores: int = 8,
        lock_cost: int = DEFAULT_LOCK_COST,
        mem_cost: int = DEFAULT_MEM_COST,
        validate_trace: bool = True,
    ):
        self.num_cores = num_cores
        self.lock_cost = lock_cost
        self.mem_cost = mem_cost
        self.validate_trace = validate_trace

    def record(
        self,
        programs: Iterable[Tuple],
        *,
        name: str = "",
        seed: int = 0,
        params: Optional[dict] = None,
        semaphores: Optional[Dict[str, int]] = None,
    ) -> RecordResult:
        """Run ``programs`` (generator, name) pairs and record the trace."""
        meta = TraceMeta(
            name=name,
            seed=seed,
            num_cores=self.num_cores,
            lock_cost=self.lock_cost,
            mem_cost=self.mem_cost,
            params=dict(params or {}),
        )
        builder = TraceBuilder(meta)
        machine = Machine(
            num_cores=self.num_cores,
            observer=builder,
            lock_cost=self.lock_cost,
            mem_cost=self.mem_cost,
        )
        for sem, count in (semaphores or {}).items():
            machine.set_semaphore(sem, count)
        with telemetry.span("record"):
            for entry in programs:
                if isinstance(entry, tuple):
                    program, thread_name = entry
                else:
                    program, thread_name = entry, None
                machine.add_thread(program, name=thread_name)
            result = machine.run()
            if self.validate_trace:
                validate(builder.trace)
        trace = builder.trace
        telemetry.count("record.traces")
        telemetry.count("record.events", len(trace))
        telemetry.observe("record.trace_events", len(trace))
        telemetry.gauge("trace.events", len(trace))
        telemetry.gauge("trace.threads", len(trace.threads))
        return RecordResult(trace=trace, machine_result=result)


def record(programs, **kwargs) -> RecordResult:
    """One-shot convenience wrapper around :class:`Recorder`.

    Machine parameters (``num_cores``, ``lock_cost``, ``mem_cost``) are
    split from recording parameters automatically.
    """
    machine_keys = ("num_cores", "lock_cost", "mem_cost", "validate_trace")
    recorder_kwargs = {k: kwargs.pop(k) for k in machine_keys if k in kwargs}
    return Recorder(**recorder_kwargs).record(programs, **kwargs)
