"""Seeded synthetic load generator for the service: ``repro loadtest``.

Drives a running (or in-process) :class:`~repro.serve.server.ReproServer`
with N concurrent clients issuing a seeded, reproducible mix of

* **read** requests — ``GET /v1/health``, ``GET /metrics``, job polls —
  cheap, exercise the routing and telemetry path; and
* **compute** requests — trace uploads and workload-spec submissions to
  ``POST /v1/analyze`` / ``/v1/transform`` / ``/v1/timeline``, sync and
  async — exercise the job manager, the dedup and the supervised pool;
* **watch** requests — async submissions followed end-to-end over
  ``GET /v1/jobs/<id>/events`` — exercise the SSE progress stream and
  the ``serve.watchers`` accounting under concurrency.  A stream that
  ends without the terminal ``event: result`` frame counts as
  *dropped*; the CI gate requires zero.

The upload corpus is recorded locally at startup (mixed trace sizes:
a few KB to a few hundred KB, from the registered workload models) so
the run needs nothing but the server address.  Per-client RNGs are
seeded from the run seed, so the *request sequence* is reproducible
even though latencies are not.

The result is a :class:`LoadTestReport` — p50/p90/p99 latency per
operation class, throughput, per-status and per-dedup-outcome counters,
and the count of structured error envelopes received (the CI smoke gate
requires zero with a clean mix) — published as ``BENCH_serve.json``.
"""

from __future__ import annotations

import dataclasses
import http.client
import io
import json
import random
import threading
import time
import urllib.parse
from typing import Dict, List, Optional, Tuple

from repro import log

__all__ = ["LoadTestReport", "run_loadtest", "build_corpus"]

_log = log.get_logger("serve.loadtest")

#: size label -> (workload name, record parameters); scales span ~3 KB
#: (blackscholes small) to ~300 KB (mysql) of JSONL trace text
_CORPUS_SPECS = {
    "small": ("blackscholes", {"threads": 2, "scale": 0.2}),
    "medium": ("mixed-bag", {"threads": 2, "scale": 1.0}),
    "large": ("mysql", {"threads": 4, "scale": 1.0}),
}


@dataclasses.dataclass
class _CorpusTrace:
    size: str
    workload: str
    body: bytes


def build_corpus(sizes=("small", "medium", "large"), seed: int = 0):
    """Record the upload corpus locally (one trace per size label)."""
    from repro import api
    from repro.trace import serialize

    corpus = []
    for size in sizes:
        name, kwargs = _CORPUS_SPECS[size]
        trace = api.record(name, seed=seed, **kwargs)
        out = io.StringIO()
        serialize.write_trace(trace, out)
        corpus.append(_CorpusTrace(size, name, out.getvalue().encode("utf-8")))
    return corpus


# -------------------------------------------------------------- the client


class _Client:
    """One keep-alive HTTP/1.1 connection with a single reconnect retry."""

    def __init__(self, base_url: str, timeout: float):
        parsed = urllib.parse.urlsplit(base_url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout
        self.conn = None

    def _connect(self):
        self.conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def request(self, method: str, path: str, body: Optional[bytes] = None,
                headers: Optional[dict] = None) -> Tuple[int, dict, bytes]:
        for attempt in (0, 1):
            if self.conn is None:
                self._connect()
            try:
                self.conn.request(method, path, body=body,
                                  headers=headers or {})
                response = self.conn.getresponse()
                payload = response.read()
                return response.status, dict(response.getheaders()), payload
            except (http.client.HTTPException, ConnectionError, OSError):
                # stale keep-alive connection: reconnect once, then give up
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def close(self):
        if self.conn is not None:
            try:
                self.conn.close()
            finally:
                self.conn = None


@dataclasses.dataclass
class _Sample:
    op: str
    status: int
    ms: float
    dedup: str = ""
    error_code: str = ""


class _Worker:
    """One synthetic client: seeded op mix over a shared corpus."""

    def __init__(self, index: int, base_url: str, corpus, *, seed: int,
                 requests: int, read_mix: float, timeout: float,
                 tenants: int):
        self.rng = random.Random(seed * 100_003 + index * 7919)
        self.client = _Client(base_url, timeout)
        self.corpus = corpus
        self.requests = requests
        self.read_mix = read_mix
        self.tenant = f"tenant-{index % max(tenants, 1)}"
        self.samples: List[_Sample] = []
        self.transport_errors = 0
        self.job_ids: List[str] = []
        self.streams_started = 0
        self.streams_completed = 0

    # each op issues HTTP round-trip(s) and records exactly one sample

    def run(self) -> None:
        try:
            for _ in range(self.requests):
                op = self._pick_op()
                started = time.perf_counter()
                try:
                    status, headers, body = op[1]()
                except Exception:
                    self.transport_errors += 1
                    continue
                ms = (time.perf_counter() - started) * 1000.0
                self.samples.append(_Sample(
                    op=op[0],
                    status=status,
                    ms=ms,
                    dedup=headers.get("X-Repro-Dedup", ""),
                    error_code=_error_code(headers, body),
                ))
        finally:
            self.client.close()

    def _pick_op(self):
        if self.rng.random() < self.read_mix:
            reads = [("health", self._op_health), ("metrics", self._op_metrics)]
            if self.job_ids:
                reads.append(("poll", self._op_poll))
            return self.rng.choice(reads)
        computes = [
            ("analyze", self._op_analyze),
            ("analyze", self._op_analyze),       # dominant op
            ("analyze_async", self._op_analyze_async),
            ("analyze_spec", self._op_analyze_spec),
            ("transform", self._op_transform),
            ("timeline", self._op_timeline),
            ("watch", self._op_watch),
        ]
        return self.rng.choice(computes)

    def _headers(self, content_type: str = "application/octet-stream"):
        return {"Content-Type": content_type, "X-Repro-Tenant": self.tenant}

    def _trace(self) -> _CorpusTrace:
        return self.rng.choice(self.corpus)

    def _op_health(self):
        return self.client.request("GET", "/v1/health")

    def _op_metrics(self):
        return self.client.request("GET", "/metrics")

    def _op_poll(self):
        job_id = self.rng.choice(self.job_ids)
        return self.client.request("GET", f"/v1/jobs/{job_id}")

    def _op_analyze(self):
        result = self.client.request(
            "POST", "/v1/analyze", self._trace().body, self._headers()
        )
        self._note_job(result)
        return result

    def _op_transform(self):
        return self.client.request(
            "POST", "/v1/transform", self._trace().body, self._headers()
        )

    def _op_timeline(self):
        return self.client.request(
            "POST", "/v1/timeline?format=json", self._trace().body,
            self._headers(),
        )

    def _op_analyze_spec(self):
        trace = self._trace()
        name, kwargs = _CORPUS_SPECS[trace.size]
        body = json.dumps({
            "workload": {"name": name, **kwargs, "seed": 0},
        }).encode("utf-8")
        return self.client.request(
            "POST", "/v1/analyze", body, self._headers("application/json")
        )

    def _op_analyze_async(self):
        status, headers, body = self.client.request(
            "POST", "/v1/analyze?mode=async", self._trace().body,
            self._headers(),
        )
        if status != 202:
            return status, headers, body
        job_id = headers.get("X-Repro-Job", "")
        self._note_job((status, headers, body))
        deadline = time.monotonic() + self.client.timeout
        while time.monotonic() < deadline:
            status, headers, body = self.client.request(
                "GET", f"/v1/jobs/{job_id}"
            )
            document = _maybe_json(headers, body)
            if document is None or document.get("ok") is False:
                return status, headers, body
            result = document.get("result")
            still_running = (
                isinstance(result, dict) and result.get("state") == "running"
            )
            if not still_running:
                return status, headers, body
            time.sleep(0.005)
        raise TimeoutError(f"async job {job_id} never finished")

    def _op_watch(self):
        status, headers, body = self.client.request(
            "POST", "/v1/analyze?mode=async", self._trace().body,
            self._headers(),
        )
        if status != 202:
            return status, headers, body
        job_id = headers.get("X-Repro-Job", "")
        self._note_job((status, headers, body))
        self.streams_started += 1
        # the SSE response is Connection: close, so it gets a dedicated
        # connection instead of poisoning the keep-alive one
        conn = http.client.HTTPConnection(
            self.client.host, self.client.port, timeout=self.client.timeout
        )
        try:
            conn.request(
                "GET", f"/v1/jobs/{job_id}/events",
                headers={"X-Repro-Tenant": self.tenant},
            )
            response = conn.getresponse()
            payload = response.read()
            status = response.status
            headers = dict(response.getheaders())
        finally:
            conn.close()
        if status == 200 and _sse_terminated(payload):
            self.streams_completed += 1
        return status, headers, payload

    def _note_job(self, result) -> None:
        job_id = result[1].get("X-Repro-Job")
        if job_id and len(self.job_ids) < 32:
            self.job_ids.append(job_id)


def _sse_terminated(payload: bytes) -> bool:
    """True when the last SSE frame in ``payload`` is ``event: result``."""
    text = payload.decode("utf-8", "replace")
    frames = [frame for frame in text.split("\n\n") if frame]
    return bool(frames) and frames[-1].startswith("event: result")


def _maybe_json(headers: dict, body: bytes) -> Optional[dict]:
    content_type = headers.get("Content-Type", "")
    if not content_type.startswith("application/json"):
        return None
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None


def _error_code(headers: dict, body: bytes) -> str:
    document = _maybe_json(headers, body)
    if document is not None and document.get("ok") is False:
        return document.get("error", {}).get("code", "unknown")
    return ""


# --------------------------------------------------------------- reporting


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample."""
    index = min(len(values) - 1, max(0, int(round(fraction * (len(values) - 1)))))
    return values[index]


def _summarize(samples_ms: List[float]) -> dict:
    ordered = sorted(samples_ms)
    return {
        "count": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p90_ms": round(_percentile(ordered, 0.90), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "max_ms": round(ordered[-1], 3),
        "mean_ms": round(sum(ordered) / len(ordered), 3),
    }


@dataclasses.dataclass
class LoadTestReport:
    """Aggregate of one load-test run; serialized as ``BENCH_serve.json``."""

    clients: int
    requests: int
    seed: int
    read_mix: float
    wall_seconds: float
    throughput_rps: float
    latency_ms: Dict[str, dict]          # op class -> percentile summary
    status_counts: Dict[str, int]        # HTTP status -> count
    dedup: Dict[str, int]                # miss / inflight / done -> count
    error_envelopes: int                 # structured ok:false responses
    error_codes: Dict[str, int]          # error code -> count
    transport_errors: int                # dropped connections (gate: 0)
    streams: Dict[str, int]              # SSE started/completed/dropped
    server_jobs: dict                    # /v1/health jobs stats at the end
    corpus: List[dict]

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def write(self, path) -> None:
        from pathlib import Path

        text = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        Path(path).write_text(text, encoding="utf-8")


def run_loadtest(
    url: Optional[str] = None,
    *,
    clients: int = 32,
    requests_per_client: int = 6,
    seed: int = 0,
    read_mix: float = 0.5,
    sizes=("small", "medium", "large"),
    timeout: float = 120.0,
    tenants: int = 4,
    out=None,
    server_kwargs: Optional[dict] = None,
) -> LoadTestReport:
    """Run the synthetic load against ``url`` (or an in-process server).

    With ``url=None`` a :class:`~repro.serve.server.ReproServer` is
    started on an ephemeral port for the duration of the run — the
    one-command path used by ``repro loadtest`` and the CI smoke job.
    ``out`` optionally writes the report (``BENCH_serve.json``).
    """
    from repro.serve.server import serve

    server = None
    server_thread = None
    if url is None:
        server = serve(port=0, **(server_kwargs or {}))
        server_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        server_thread.start()
        url = server.url
    try:
        corpus = build_corpus(sizes, seed=seed)
        _log.info(
            "load test: %d clients x %d requests against %s",
            clients, requests_per_client, url,
            extra={"event": "loadtest.start", "clients": clients},
        )
        workers = [
            _Worker(
                index, url, corpus, seed=seed, requests=requests_per_client,
                read_mix=read_mix, timeout=timeout, tenants=tenants,
            )
            for index in range(clients)
        ]
        started = time.perf_counter()
        threads = [
            threading.Thread(target=worker.run, name=f"loadtest-{i}")
            for i, worker in enumerate(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        health = _Client(url, timeout)
        try:
            _, _, body = health.request("GET", "/v1/health")
            server_jobs = json.loads(body.decode("utf-8"))["result"]["jobs"]
        except Exception:
            server_jobs = {}
        finally:
            health.close()
    finally:
        if server is not None:
            server.shutdown()
            server.close()
            server_thread.join(timeout=5)

    samples = [s for worker in workers for s in worker.samples]
    by_op: Dict[str, List[float]] = {}
    status_counts: Dict[str, int] = {}
    dedup: Dict[str, int] = {}
    error_codes: Dict[str, int] = {}
    for sample in samples:
        by_op.setdefault(sample.op, []).append(sample.ms)
        status_counts[str(sample.status)] = \
            status_counts.get(str(sample.status), 0) + 1
        if sample.dedup:
            dedup[sample.dedup] = dedup.get(sample.dedup, 0) + 1
        if sample.error_code:
            error_codes[sample.error_code] = \
                error_codes.get(sample.error_code, 0) + 1
    latency = {op: _summarize(ms) for op, ms in sorted(by_op.items())}
    if samples:
        latency["all"] = _summarize([s.ms for s in samples])

    report = LoadTestReport(
        clients=clients,
        requests=len(samples),
        seed=seed,
        read_mix=read_mix,
        wall_seconds=round(wall, 3),
        throughput_rps=round(len(samples) / wall, 2) if wall > 0 else 0.0,
        latency_ms=latency,
        status_counts=dict(sorted(status_counts.items())),
        dedup=dict(sorted(dedup.items())),
        error_envelopes=sum(error_codes.values()),
        error_codes=dict(sorted(error_codes.items())),
        transport_errors=sum(w.transport_errors for w in workers),
        streams={
            "started": sum(w.streams_started for w in workers),
            "completed": sum(w.streams_completed for w in workers),
            "dropped": sum(w.streams_started - w.streams_completed
                           for w in workers),
        },
        server_jobs=server_jobs,
        corpus=[
            {"size": c.size, "workload": c.workload, "bytes": len(c.body)}
            for c in corpus
        ],
    )
    if out is not None:
        report.write(out)
    _log.info(
        "load test done: %d requests in %.2fs (%.1f rps), "
        "%d error envelopes, %d transport errors, %d/%d event streams",
        report.requests, report.wall_seconds, report.throughput_rps,
        report.error_envelopes, report.transport_errors,
        report.streams["completed"], report.streams["started"],
        extra={"event": "loadtest.done", "rps": report.throughput_rps},
    )
    return report
