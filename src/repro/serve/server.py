"""The HTTP service: ``repro serve`` — v1 endpoints over ``repro.api``.

Routes (see ``docs/SERVICE.md`` for the full contract)::

    POST /v1/analyze    classify ULCP pairs      -> JSON result envelope
    POST /v1/transform  ULCP-free rewrite        -> trace artifact (JSONL)
    POST /v1/report     HTML debugging report    -> text/html artifact
    POST /v1/timeline   columnar/Chrome timeline -> JSON artifact
    GET  /v1/jobs/<id>            poll an async job
    GET  /v1/jobs/<id>/artifact   fetch a finished job's artifact blob
    GET  /v1/jobs/<id>/events     live progress snapshots (SSE); the
                                  terminal "result" event is
                                  byte-identical to the polled result
    GET  /v1/health               liveness + job-manager stats
    GET  /metrics                 Prometheus exposition (repro.telemetry)

A job request is either a JSON body (``{"workload": {...}, "options":
{...}, "mode": "sync"|"async"}``) or a raw trace upload (any
content type except ``application/json``; monolithic or segmented
container, auto-sniffed) with ``mode`` / ``format`` / ``options``
(URL-encoded JSON) as query parameters.  Every computation is
content-addressed through :mod:`repro.serve.jobs` — concurrent
identical requests share one computation — and executes under the
supervised executor, so failures come back as the structured v1 error
envelope with a stable code, never as a dropped connection.

Responses carry ``X-Repro-Job`` (the job id), ``X-Repro-Dedup``
(``miss`` | ``inflight`` | ``done``) and ``X-Repro-Key`` (the content
key) so clients and the load-test harness can observe the dedup.
"""

from __future__ import annotations

import io
import json
import time
import urllib.parse
from hashlib import sha256
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from repro import log, telemetry
from repro.errors import (
    NotFoundError,
    OptionsError,
    PayloadTooLarge,
    ReproError,
    RequestError,
)
from repro.options import AnalyzeOptions, ReportOptions
from repro.runner.keys import cache_key
from repro.runner.pool import ExecPolicy
from repro.serve import protocol
from repro.serve.jobs import JobManager, JobResult

__all__ = ["ReproServer", "serve"]

_log = log.get_logger("serve")

#: content types for artifact blobs
TRACE_CONTENT_TYPE = "application/x-repro-trace+jsonl"
HTML_CONTENT_TYPE = "text/html; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

ENDPOINTS = ("analyze", "transform", "report", "timeline")


# ------------------------------------------------------------ computations
#
# Each builder returns a closure producing a JobResult; the closure runs
# on a manager worker thread under the supervised executor.  Everything
# inside is deterministic per content key, which is what makes the dedup
# and the blob-cache reuse sound.


def _spool_trace(server: "ReproServer", body: bytes) -> Path:
    """Write an uploaded trace to the content-addressed spool.

    The spool file name is the payload digest, so re-uploads of the same
    trace bytes share one file and the write is idempotent (atomic
    rename; a concurrent identical upload simply wins the race).
    """
    digest = sha256(body).hexdigest()
    path = server.spool_dir / f"{digest[:32]}.trace"
    if not path.exists():
        server.spool_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp-{digest[:8]}")
        tmp.write_bytes(body)
        tmp.replace(path)
    return path


def _trace_key(path: Path, body: bytes) -> str:
    """Content digest of an uploaded trace.

    Segmented containers reuse :func:`repro.runner.keys.segmented_digest`
    (per-segment digests from the sidecar index — also validates the
    container); anything else hashes the raw bytes.
    """
    from repro.errors import TraceError
    from repro.runner.keys import segmented_digest
    from repro.trace.segments import is_segmented_file

    try:
        if is_segmented_file(path):
            return "seg:" + segmented_digest(path)
    except TraceError:
        pass  # damaged segmented file: fall back to raw bytes, let the
        # analysis surface the precise TraceError in the envelope
    return "raw:" + sha256(body).hexdigest()[:32]


def _load_source(server: "ReproServer", source: dict):
    """Resolve a job source dict to a Trace (or segmented path).

    ``{"path": ...}`` loads/streams a spooled upload; ``{"workload":
    spec}`` records the workload (through the trace cache when one is
    active, reusing its ``task_key`` content addressing).
    """
    if "path" in source:
        return Path(source["path"])
    spec = source["workload"]
    from repro.runner.cache import record_cached

    kwargs, extra = _split_workload_spec(spec)
    if extra:
        kwargs["workload_kwargs"] = extra
    return record_cached(spec["name"], **kwargs).trace


def _split_workload_spec(spec: dict):
    """(record parameters, workload-constructor passthrough) from a spec."""
    known = ("threads", "input_size", "scale", "seed")
    kwargs = {k: spec[k] for k in known if spec.get(k) is not None}
    extra = {k: v for k, v in spec.items()
             if k != "name" and k not in known and v is not None}
    return kwargs, extra


def _analyze_compute(server, source, options: AnalyzeOptions):
    def compute(job) -> JobResult:
        from repro import api

        target = _load_source(server, source)
        if isinstance(target, Path):
            from repro.trace import segments, serialize

            if not segments.is_segmented_file(target):
                target = serialize.load(target)
        analysis = api.analyze(target, options, on_progress=job.publish)
        envelope = protocol.ok_envelope(protocol.analyze_result(analysis))
        return JobResult(envelope=envelope)

    # the job manager passes the Job in so the analysis can stream
    # progress snapshots to /v1/jobs/<id>/events subscribers
    compute.wants_job = True
    return compute


def _transform_compute(server, source, options: dict):
    def compute() -> JobResult:
        from repro import api
        from repro.trace import serialize

        trace = _coerce_full_trace(server, source)
        result = api.transform(trace, full=True, **options)
        out = io.StringIO()
        serialize.write_trace(result.trace, out)
        envelope = protocol.ok_envelope(protocol.transform_summary(result))
        return JobResult(
            envelope=envelope,
            blob=out.getvalue().encode("utf-8"),
            content_type=TRACE_CONTENT_TYPE,
        )

    return compute


def _timeline_compute(server, source, options: dict, fmt: str):
    def compute() -> JobResult:
        from repro import api
        from repro.timeline import build_timeline, to_chrome_json, to_columnar_json

        trace = _coerce_full_trace(server, source)
        analysis = api.analyze(
            trace,
            AnalyzeOptions(benign_detection=options.get("benign_detection", True)),
        )
        timeline = build_timeline(trace, analysis=analysis)
        text = to_chrome_json(timeline) if fmt == "chrome" \
            else to_columnar_json(timeline)
        envelope = protocol.ok_envelope({"format": fmt, "bytes": len(text) + 1})
        return JobResult(
            envelope=envelope,
            blob=(text + "\n").encode("utf-8"),
            content_type=JSON_CONTENT_TYPE,
        )

    return compute


def _report_compute(server, source, options: ReportOptions):
    def compute() -> JobResult:
        from repro import api

        if "workload" in source:
            spec = source["workload"]
            kwargs, extra = _split_workload_spec(spec)
            if extra:
                kwargs["workload_kwargs"] = extra
            html_text = api.report(spec["name"],
                                   options=options.replace(**kwargs))
        else:
            html_text = api.report(_coerce_full_trace(server, source),
                                   options=options)
        envelope = protocol.ok_envelope({"bytes": len(html_text)})
        return JobResult(
            envelope=envelope,
            blob=html_text.encode("utf-8"),
            content_type=HTML_CONTENT_TYPE,
        )

    return compute


def _coerce_full_trace(server, source):
    """A fully loaded Trace for endpoints that need whole-thread views."""
    from repro.trace import serialize

    target = _load_source(server, source)
    if isinstance(target, Path):
        return serialize.load(target)
    return target


_COMPUTE_BUILDERS = {
    "analyze": lambda server, source, req: _analyze_compute(
        server, source, AnalyzeOptions.from_wire(req["options"])),
    "transform": lambda server, source, req: _transform_compute(
        server, source, _transform_options(req["options"])),
    "timeline": lambda server, source, req: _timeline_compute(
        server, source, _timeline_options(req["options"]), req["format"]),
    "report": lambda server, source, req: _report_compute(
        server, source, ReportOptions.from_wire(req["options"])),
}


def _bool_options(owner: str, payload: Optional[dict], known: tuple) -> dict:
    if payload is None:
        return {}
    if not isinstance(payload, dict):
        raise OptionsError(f"{owner}: options must be a JSON object")
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise OptionsError(
            f"{owner}: unknown option(s) {unknown}; known: {sorted(known)}"
        )
    for name, value in payload.items():
        if not isinstance(value, bool):
            raise OptionsError(f"{owner}.{name}: expected a boolean, got {value!r}")
    return dict(payload)


def _transform_options(payload: Optional[dict]) -> dict:
    return _bool_options("TransformOptions", payload,
                         ("benign_detection", "order_edges"))


def _timeline_options(payload: Optional[dict]) -> dict:
    return _bool_options("TimelineOptions", payload, ("benign_detection",))


# ------------------------------------------------------------- the server


class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server wired to a :class:`JobManager` and a sink."""

    daemon_threads = True
    allow_reuse_address = True
    # the socketserver default backlog (5) drops connections under a
    # concurrent-client burst; size it for hundreds of simultaneous opens
    request_queue_size = 512

    def __init__(
        self,
        address=("127.0.0.1", 0),
        *,
        policy: Optional[ExecPolicy] = None,
        max_workers: int = 16,
        keep_jobs: int = 512,
        max_body_mb: float = 64.0,
        sync_timeout: float = 600.0,
        spool_dir=None,
        sink: Optional[telemetry.Telemetry] = None,
    ):
        import tempfile

        self.sink = sink if sink is not None else telemetry.Telemetry()
        self.manager = JobManager(policy=policy, max_workers=max_workers,
                                  keep=keep_jobs)
        self.max_body = int(max_body_mb * 1024 * 1024)
        self.sync_timeout = sync_timeout
        if spool_dir is None:
            self._spool_tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            spool_dir = self._spool_tmp.name
        self.spool_dir = Path(spool_dir)
        self.started = time.monotonic()
        self.tenants: dict = {}
        self._tenants_lock = __import__("threading").Lock()
        #: open SSE event streams (exported as the serve.watchers gauge)
        self.watchers = 0
        self._watchers_lock = __import__("threading").Lock()
        self._request_ids = __import__("itertools").count(1)
        # the server owns the process-wide ambient sink for its lifetime:
        # handler threads and job-manager workers all record into one
        # Telemetry without per-request global swaps (those would race
        # across threads); close() restores whatever was active before
        self._previous_sink = telemetry.active()
        telemetry.configure(self.sink)
        super().__init__(tuple(address), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def note_tenant(self, tenant: str) -> None:
        with self._tenants_lock:
            self.tenants[tenant] = self.tenants.get(tenant, 0) + 1

    def adjust_watchers(self, delta: int) -> int:
        """Track open SSE streams; mirrors into the serve.watchers gauge."""
        with self._watchers_lock:
            self.watchers += delta
            self.sink.gauge("serve.watchers", self.watchers)
            return self.watchers

    def close(self) -> None:
        self.manager.shutdown()
        self.server_close()
        telemetry.configure(self._previous_sink)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ReproServer

    # ------------------------------------------------------------- plumbing
    #
    # http.server's default request logging writes bare lines to stderr;
    # everything here routes through repro.log instead, with structured
    # fields (request id, job id, status) so server logs correlate with
    # the run ids the analysis emits and with /v1/jobs ids.

    #: per-request correlation fields, assigned at route entry
    request_id: str = ""
    job_id: str = ""

    def _log_fields(self, **extra) -> dict:
        fields = {
            "event": "serve.request",
            "request_id": self.request_id,
            "client": self.address_string(),
        }
        if self.job_id:
            fields["job"] = self.job_id
        fields.update(extra)
        return fields

    def log_request(self, code="-", size="-"):  # noqa: D102 (contract)
        _log.info(
            "%s %s -> %s", self.command, self.path,
            getattr(code, "value", code),
            extra=self._log_fields(status=str(getattr(code, "value", code))),
        )

    def log_error(self, fmt, *args):
        _log.warning(
            fmt, *args,
            extra=self._log_fields(event="serve.request_error"),
        )

    def log_message(self, fmt, *args):  # route through repro.log, not stderr
        _log.debug("%s " + fmt, self.address_string(), *args)

    def _respond(self, status: int, body: bytes, content_type: str,
                 headers: Optional[dict] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_envelope(self, envelope: dict, *, status: Optional[int] = None,
                          headers: Optional[dict] = None) -> None:
        body = protocol.wire_dumps(envelope).encode("utf-8")
        self._respond(status if status is not None
                      else protocol.http_status(envelope),
                      body, JSON_CONTENT_TYPE, headers)

    def _respond_error(self, exc: BaseException) -> None:
        envelope = protocol.envelope_from_exception(exc)
        telemetry.count("serve.errors")
        self._respond_envelope(envelope)

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        started = time.perf_counter()
        self.request_id = f"req-{next(self.server._request_ids):06d}"
        parsed = urllib.parse.urlsplit(self.path)
        try:
            self._route_get(parsed)
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._safe_error(exc)
        finally:
            self._observe(parsed.path, started)

    def do_POST(self) -> None:  # noqa: N802
        started = time.perf_counter()
        self.request_id = f"req-{next(self.server._request_ids):06d}"
        parsed = urllib.parse.urlsplit(self.path)
        try:
            self._route_post(parsed)
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._safe_error(exc)
        finally:
            self._observe(parsed.path, started)

    def _safe_error(self, exc: BaseException) -> None:
        try:
            self._respond_error(exc)
        except Exception:
            _log.error("failed to send error response: %s", exc,
                       extra={"event": "serve.respond_failed"})

    def _observe(self, path: str, started: float) -> None:
        endpoint = self._endpoint_label(path)
        elapsed_ms = int((time.perf_counter() - started) * 1000)
        sink = self.server.sink
        sink.count(f"serve.requests.{endpoint}")
        sink.observe(f"serve.latency_ms.{endpoint}", elapsed_ms)

    @staticmethod
    def _endpoint_label(path: str) -> str:
        parts = [p for p in path.split("/") if p]
        if not parts:
            return "root"
        if parts[0] == "metrics":
            return "metrics"
        if len(parts) >= 2 and parts[0] == "v1":
            if parts[1] == "jobs":
                return "events" if len(parts) >= 4 and parts[3] == "events" \
                    else "jobs"
            return parts[1]
        return "other"

    def _route_get(self, parsed) -> None:
        parts = [p for p in parsed.path.split("/") if p]
        if parsed.path == "/metrics":
            text = telemetry.to_prometheus(self.server.sink)
            self._respond(200, text.encode("utf-8"), PROM_CONTENT_TYPE)
            return
        if parsed.path == "/v1/health":
            result = {
                "status": "ok",
                "jobs": self.server.manager.stats(),
                "tenants": dict(sorted(self.server.tenants.items())),
                "endpoints": sorted(ENDPOINTS),
            }
            self._respond_envelope(protocol.ok_envelope(result))
            return
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            self._route_job(parts[2:])
            return
        raise NotFoundError(f"no such route: GET {parsed.path}")

    def _route_job(self, rest) -> None:
        job = self.server.manager.get(rest[0])
        if job is None:
            raise NotFoundError(f"no such job: {rest[0]!r} (it may have "
                                "been evicted; resubmit the request)")
        self.job_id = job.id
        if len(rest) == 1:
            if job.state == "done" and job.result.blob is None:
                # JSON-result jobs answer with the result envelope itself,
                # byte-identical to the synchronous response
                self._respond_envelope(job.result.envelope,
                                       headers={"X-Repro-Job": job.id})
                return
            self._respond_envelope(protocol.ok_envelope(job.status()),
                                   headers={"X-Repro-Job": job.id})
            return
        if rest[1] == "artifact":
            if job.state != "done":
                raise RequestError(
                    f"job {job.id} is still running; poll /v1/jobs/{job.id}"
                )
            if not job.result.ok:
                self._respond_envelope(job.result.envelope,
                                       headers={"X-Repro-Job": job.id})
                return
            if job.result.blob is None:
                raise NotFoundError(f"job {job.id} has no artifact; its "
                                    "result is the JSON envelope")
            self._respond(200, job.result.blob, job.result.content_type,
                          {"X-Repro-Job": job.id})
            return
        if rest[1] == "events":
            self._stream_events(job)
            return
        raise NotFoundError(f"no such job route: {'/'.join(rest)}")

    def _stream_events(self, job) -> None:
        """``GET /v1/jobs/<id>/events``: progress snapshots over SSE.

        Each progress snapshot is one ``event: snapshot`` frame whose
        data line is the canonical :func:`repro.observe.snapshot_dumps`
        encoding; the stream ends with one ``event: result`` frame whose
        data lines carry exactly the bytes a ``GET /v1/jobs/<id>`` poll
        of the finished job returns — byte-identical after the standard
        SSE join of data lines with a newline.  The response has no
        Content-Length (the connection closes when the stream ends), so
        ``Connection: close`` is explicit.
        """
        from repro.observe import snapshot_dumps

        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.send_header("X-Repro-Job", job.id)
        self.end_headers()
        self.close_connection = True
        self.server.adjust_watchers(+1)
        try:
            for snapshot in job.events(timeout=self.server.sync_timeout):
                data = snapshot_dumps(snapshot).rstrip("\n")
                self.wfile.write(
                    f"event: snapshot\ndata: {data}\n\n".encode("utf-8")
                )
                self.wfile.flush()
            if job.state == "done":
                body = protocol.wire_dumps(job.result.envelope)
                frame = "event: result\n" + "".join(
                    f"data: {line}\n" for line in body.split("\n")
                ) + "\n"
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        finally:
            self.server.adjust_watchers(-1)

    def _route_post(self, parsed) -> None:
        parts = [p for p in parsed.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "v1" or parts[1] not in ENDPOINTS:
            raise NotFoundError(
                f"no such route: POST {parsed.path} "
                f"(endpoints: {', '.join('/v1/' + e for e in ENDPOINTS)})"
            )
        endpoint = parts[1]
        tenant = self.headers.get("X-Repro-Tenant", "anonymous")
        self.server.note_tenant(tenant)
        body = self._read_body()
        content_type = (self.headers.get("Content-Type") or "").split(";")[0]
        if content_type == "application/json":
            request = self._json_request(endpoint, body)
            if request["workload"] is None:
                raise RequestError(
                    "JSON requests need a workload spec; upload raw trace "
                    "bytes with a non-JSON content type to analyze a trace"
                )
            source = {"workload": request["workload"]}
            key_params = {"workload": request["workload"]}
        else:
            if not body:
                raise RequestError("empty trace upload")
            request = self._query_request(endpoint, parsed.query)
            path = _spool_trace(self.server, body)
            source = {"path": str(path)}
            key_params = {"trace": _trace_key(path, body)}
        key = cache_key(
            f"serve.{endpoint}",
            options=request["options"] or {},
            format=request["format"],
            **key_params,
        )
        compute = _COMPUTE_BUILDERS[endpoint](self.server, source, request)
        job, dedup = self.server.manager.submit(
            endpoint, key, self._cached(endpoint, key, compute), tenant=tenant
        )
        self.job_id = job.id
        headers = {
            "X-Repro-Job": job.id,
            "X-Repro-Dedup": dedup,
            "X-Repro-Key": key[:32],
        }
        if request["mode"] == "async":
            telemetry.count("serve.jobs.async")
            envelope = protocol.ok_envelope({
                "job": job.id,
                "state": job.state,
                "poll": f"/v1/jobs/{job.id}",
                "dedup": dedup,
            })
            self._respond_envelope(envelope, status=202, headers=headers)
            return
        if not job.wait(self.server.sync_timeout):
            raise RequestError(
                f"job {job.id} did not finish within the server's sync "
                f"window; resubmit with mode=async and poll /v1/jobs/{job.id}"
            )
        result = job.result
        if result.blob is not None and result.ok:
            self._respond(200, result.blob, result.content_type, headers)
            return
        self._respond_envelope(result.envelope, headers=headers)

    def _cached(self, endpoint: str, key: str, compute):
        """Back a computation with the active blob cache when one is open.

        The tuple round-trips through gzip-pickle, so a server restarted
        over the same ``--cache-dir`` answers repeat requests from disk.
        """
        from repro.runner import cache as _cache

        if _cache.active() is None:
            return compute
        wants_job = getattr(compute, "wants_job", False)

        def cached_compute(job=None) -> JobResult:
            run = (lambda: compute(job)) if wants_job else compute
            envelope, blob, content_type = _cache.memoized(
                "serve.response", {"key": key},
                lambda: _result_tuple(run()),
            )
            return JobResult(envelope=envelope, blob=blob,
                             content_type=content_type)

        # a cache hit skips the computation, so no intermediate progress
        # is published — the event stream then carries just the terminal
        # result, which is the correct replay of "no work was redone"
        cached_compute.wants_job = wants_job
        return cached_compute

    # ------------------------------------------------------------- parsing

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        if length is None:
            raise RequestError("POST needs a Content-Length header")
        try:
            length = int(length)
        except ValueError:
            raise RequestError(f"bad Content-Length: {length!r}") from None
        if length > self.server.max_body:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the server's "
                f"limit of {self.server.max_body} bytes"
            )
        return self.rfile.read(length)

    def _json_request(self, endpoint: str, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"request body is not valid JSON: {exc}") \
                from None
        return protocol.parse_request(endpoint, payload)

    def _query_request(self, endpoint: str, query: str) -> dict:
        params = dict(urllib.parse.parse_qsl(query))
        payload: dict = {}
        for name in ("mode", "format"):
            if name in params:
                payload[name] = params.pop(name)
        if "options" in params:
            try:
                payload["options"] = json.loads(params.pop("options"))
            except json.JSONDecodeError as exc:
                raise RequestError(
                    f"options query parameter is not valid JSON: {exc}"
                ) from None
        if params:
            raise RequestError(
                f"unknown query parameter(s) {sorted(params)}; "
                "known: mode, format, options"
            )
        return protocol.parse_request(endpoint, payload)


def _result_tuple(result: JobResult):
    return (result.envelope, result.blob, result.content_type)


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    **server_kwargs,
) -> ReproServer:
    """Build a :class:`ReproServer` bound to ``host:port`` (not yet running).

    The caller starts it with ``serve_forever()`` (the CLI does) or on a
    background thread (tests and the in-process load test do)::

        server = serve(port=0)           # 0 = any free port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown(); server.close()
    """
    server = ReproServer((host, port), **server_kwargs)
    _log.info(
        "serving on %s", server.url,
        extra={"event": "serve.start", "url": server.url},
    )
    return server
