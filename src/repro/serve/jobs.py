"""Content-addressed job manager: dedup, supervision, async polling.

Every service request resolves to a *job key* — a
:func:`repro.runner.keys.cache_key` over the endpoint, the request's
content (trace digest or workload spec) and its options, folding in the
package's code version exactly like the batch cache.  The manager keeps
one :class:`Job` per key:

* a request whose key matches a **running** job attaches to it instead
  of computing again (``serve.dedup.inflight``) — this is what makes
  concurrent identical submissions compute once;
* a request whose key matches a **finished, still-retained** job gets
  the stored response bytes back immediately (``serve.dedup.done``);
* otherwise the computation is submitted to the worker thread pool and
  runs under the supervised executor
  (:func:`repro.runner.pool.parallel_map` with the server's
  :class:`~repro.runner.pool.ExecPolicy`, ``partial=True``), so
  injected faults, worker hangs and crashes surface as quarantined
  :class:`~repro.runner.pool.TaskFailure` records — which the manager
  maps to the structured error envelope, never to a lost request.

Job ids are derived from the key (``<endpoint>-<key prefix>``), so they
are stable across identical submissions: polling ``/v1/jobs/<id>`` for
a deduplicated request finds the shared job.  Finished jobs are
retained FIFO up to ``keep`` entries for async pollers.

Determinism note: replay-based analysis is deterministic per content
key, so handing one job's result to many tenants is safe — the dedup
can never leak one request's data into a different request's answer.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Tuple

from repro import log, telemetry
from repro.runner.pool import ExecPolicy, TaskFailure, parallel_map
from repro.serve import protocol

__all__ = ["Job", "JobResult", "JobManager"]

_log = log.get_logger("serve.jobs")


@dataclasses.dataclass
class JobResult:
    """What one finished job hands back to the HTTP layer.

    ``envelope`` is always set (the v1 success or error envelope);
    ``blob``/``content_type`` carry the artifact body for blob
    endpoints (transform's trace, report's HTML, timeline's JSON).
    """

    envelope: dict
    blob: Optional[bytes] = None
    content_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        return bool(self.envelope.get("ok"))


class Job:
    """One content-addressed computation and its completion latch."""

    __slots__ = ("id", "key", "kind", "tenant", "seq", "_done", "result",
                 "progress", "_progress_cond")

    def __init__(self, job_id: str, key: str, kind: str, tenant: str, seq: int):
        self.id = job_id
        self.key = key
        self.kind = kind
        self.tenant = tenant
        self.seq = seq
        self._done = threading.Event()
        self.result: Optional[JobResult] = None
        #: append-only progress snapshots (repro.observe dicts); every
        #: follower replays the full list from the start, so a watcher
        #: attaching late still sees the deterministic whole sequence
        self.progress: list = []
        self._progress_cond = threading.Condition()

    @property
    def state(self) -> str:
        return "done" if self._done.is_set() else "running"

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; False on timeout."""
        return self._done.wait(timeout)

    def finish(self, result: JobResult) -> None:
        self.result = result
        self._done.set()
        with self._progress_cond:
            self._progress_cond.notify_all()

    def publish(self, snapshot: dict) -> None:
        """Append one progress snapshot and wake any followers.

        This is the ``on_progress`` callback the analyze computation is
        wired with; it runs on the job's worker thread.
        """
        with self._progress_cond:
            self.progress.append(snapshot)
            self._progress_cond.notify_all()

    def events(self, timeout: Optional[float] = None):
        """Yield progress snapshots in order until the job finishes.

        Starts from the beginning of the job's progress list (late
        subscribers replay everything), then follows live.  ``timeout``
        bounds each wait for *new* progress; a quiet period longer than
        that ends the stream early (the caller can poll the job state).
        """
        i = 0
        while True:
            with self._progress_cond:
                while i >= len(self.progress) and not self._done.is_set():
                    if not self._progress_cond.wait(timeout):
                        return
                batch = list(self.progress[i:])
            for snapshot in batch:
                yield snapshot
            i += len(batch)
            if self._done.is_set() and i >= len(self.progress):
                return

    def status(self) -> dict:
        """The ``/v1/jobs/<id>`` status object (state + links)."""
        status = {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
        }
        if self.state == "done" and self.result is not None:
            status["ok"] = self.result.ok
            if self.result.blob is not None:
                status["artifact"] = f"/v1/jobs/{self.id}/artifact"
        return status


def _run_supervised(compute: Callable[[], JobResult],
                    policy: ExecPolicy) -> JobResult:
    """One computation under the supervised executor's failure contract.

    ``partial=True`` is forced: a failed task must come back as a
    quarantined :class:`TaskFailure` (-> structured error envelope), not
    abort the serving thread.  Retries/timeouts follow the policy.
    """
    policy = dataclasses.replace(policy, partial=True)
    outcome = parallel_map(lambda thunk: thunk(), [compute], policy=policy)[0]
    if isinstance(outcome, TaskFailure):
        telemetry.count("serve.quarantined")
        _log.warning(
            "job quarantined: %s", outcome.message,
            extra={"event": "serve.quarantine", "kind": outcome.kind},
        )
        return JobResult(envelope=protocol.envelope_from_failure(outcome))
    return outcome


class JobManager:
    """Deduplicating executor over a bounded worker thread pool."""

    def __init__(
        self,
        *,
        policy: Optional[ExecPolicy] = None,
        max_workers: int = 16,
        keep: int = 512,
    ):
        self.policy = policy or ExecPolicy()
        self.keep = keep
        self._lock = threading.Lock()
        self._running: dict = {}          # key -> Job
        self._finished: OrderedDict = OrderedDict()  # key -> Job (FIFO cap)
        self._by_id: dict = {}            # job id -> Job
        self._seq = itertools.count()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        #: computations actually executed (dedup hits do not increment)
        self.computed = 0

    # ------------------------------------------------------------- submit

    def submit(
        self,
        kind: str,
        key: str,
        compute: Callable[[], JobResult],
        *,
        tenant: str = "",
    ) -> Tuple[Job, str]:
        """Attach to (or start) the job for ``key``.

        Returns ``(job, dedup)`` where dedup is ``"miss"`` (started a
        computation), ``"inflight"`` (attached to a running job) or
        ``"done"`` (served from a retained finished job).
        """
        with self._lock:
            job = self._running.get(key)
            if job is not None:
                telemetry.count("serve.dedup.inflight")
                return job, "inflight"
            job = self._finished.get(key)
            if job is not None:
                telemetry.count("serve.dedup.done")
                return job, "done"
            job = Job(self._job_id(kind, key), key, kind,
                      tenant, next(self._seq))
            self._running[key] = job
            self._by_id[job.id] = job
            telemetry.count("serve.jobs")
            self.computed += 1
        telemetry.count("serve.computed")
        self._pool.submit(self._run, job, compute)
        return job, "miss"

    @staticmethod
    def _job_id(kind: str, key: str) -> str:
        # derived from the content key: identical requests share the id,
        # so a deduplicated submitter can poll the same /v1/jobs/<id>
        return f"{kind}-{key[:16]}"

    def _run(self, job: Job, compute: Callable[[], JobResult]) -> None:
        if getattr(compute, "wants_job", False):
            # progress-publishing computations take the job so they can
            # call job.publish from inside the analysis
            bound, compute = compute, (lambda: bound(job))
        try:
            result = _run_supervised(compute, self.policy)
        except BaseException as exc:  # a bug, not a task failure
            _log.error(
                "job %s internal failure: %s", job.id, exc,
                extra={"event": "serve.internal", "job": job.id},
            )
            result = JobResult(envelope=protocol.envelope_from_exception(exc))
        job.finish(result)
        with self._lock:
            self._running.pop(job.key, None)
            self._finished[job.key] = job
            while len(self._finished) > self.keep:
                _, evicted = self._finished.popitem(last=False)
                self._by_id.pop(evicted.id, None)

    # -------------------------------------------------------------- reads

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._by_id.get(job_id)

    def stats(self) -> dict:
        with self._lock:
            return {
                "running": len(self._running),
                "finished": len(self._finished),
                "computed": self.computed,
            }

    def shutdown(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
