"""The versioned v1 wire contract: envelope, error codes, result schemas.

Every JSON document the project emits over a machine interface — the
HTTP service's responses and the CLI's ``--format json`` output — is one
*envelope*::

    {"v": 1, "ok": true,  "result": <endpoint-specific object>}
    {"v": 1, "ok": false, "error": {"code": "...", "message": "...",
                                    ["detail": {...}]}}

``v`` is the wire version: additive changes (new result fields) keep
``v: 1``; anything that changes the meaning of an existing field bumps
it.  Error ``code`` strings come from the :mod:`repro.errors` hierarchy
(every ``ReproError`` subclass carries a stable ``code``) plus the
supervised executor's quarantine kinds; they are part of the contract
and never change meaning.

The per-endpoint ``result`` builders live here too, so the CLI and the
HTTP service cannot drift: ``repro analyze --format json`` and a
``POST /v1/analyze`` response body are built by the same function and
serialized by the same canonical encoder (:func:`wire_dumps` — sorted
keys, two-space indent, trailing newline), which is what makes
server-side output byte-identical to local output.  Golden-file tests
(``tests/serve/test_protocol.py``) pin the exact bytes.
"""

from __future__ import annotations

import json
from typing import Optional

from repro import errors

__all__ = [
    "WIRE_VERSION",
    "ok_envelope",
    "error_envelope",
    "envelope_from_exception",
    "envelope_from_failure",
    "http_status",
    "wire_dumps",
    "analyze_result",
    "stats_result",
    "locks_result",
    "profile_result",
    "transform_summary",
]

WIRE_VERSION = 1

#: HTTP status per error code; codes not listed map to 500.  4xx = the
#: request can never succeed as posed; 5xx = the server (or its budget)
#: failed, a retry or a different deployment might succeed.
_HTTP_STATUS = {
    "request.invalid": 400,
    "request.not_found": 404,
    "request.too_large": 413,
    "options.invalid": 400,
    "workload.invalid": 400,
    "trace.invalid": 400,
    "trace.salvaged": 400,
    "transform.failed": 422,
    "replay.diverged": 422,
    "task.timeout": 504,
    "budget.exceeded": 503,
    "run.interrupted": 503,
}

#: quarantine kind (``repro.runner.pool.TaskFailure.kind``) -> error code
_FAILURE_CODES = {
    "crash": "task.crash",
    "timeout": "task.timeout",
    "fault": "fault.injected",
    "budget": "budget.exceeded",
    "error": "task.failed",
}


def ok_envelope(result) -> dict:
    """The success envelope around an endpoint-specific result."""
    return {"v": WIRE_VERSION, "ok": True, "result": result}


def error_envelope(code: str, message: str, detail: Optional[dict] = None) -> dict:
    """The error envelope; ``detail`` is optional structured context."""
    error = {"code": code, "message": message}
    if detail:
        error["detail"] = detail
    return {"v": WIRE_VERSION, "ok": False, "error": error}


def _code_registry() -> dict:
    """Exception class name -> stable code, from the errors hierarchy."""
    table = {}
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, errors.ReproError):
            table[obj.__name__] = obj.code
    return table


_CODES_BY_CLASS = _code_registry()


def envelope_from_exception(exc: BaseException) -> dict:
    """Map any exception to the error envelope.

    ``ReproError`` subclasses carry their own stable code; anything else
    is an internal server failure (``serve.internal``) — the message is
    included, the traceback is not (it belongs in the server log).
    """
    if isinstance(exc, errors.ReproError):
        return error_envelope(exc.code, str(exc))
    return error_envelope("serve.internal", f"{type(exc).__name__}: {exc}")


def envelope_from_failure(failure) -> dict:
    """Map a quarantined :class:`~repro.runner.pool.TaskFailure`.

    The supervised executor flattens in-task exceptions to
    ``"<ClassName>: <message>"`` strings; when the class name is a
    ``ReproError`` subclass its stable code is recovered, so a
    ``TraceError`` raised three layers down still reaches the client as
    ``trace.invalid``, not a generic ``task.failed``.
    """
    code = _FAILURE_CODES.get(failure.kind, "task.failed")
    message = failure.message
    if failure.kind == "error":
        head, _, rest = message.partition(": ")
        if head in _CODES_BY_CLASS:
            code = _CODES_BY_CLASS[head]
            message = rest or message
    return error_envelope(
        code,
        message,
        detail={"kind": failure.kind, "attempts": failure.attempts,
                "task": failure.index},
    )


def http_status(envelope: dict) -> int:
    """The HTTP status an envelope travels under (200 for successes)."""
    if envelope.get("ok"):
        return 200
    code = envelope.get("error", {}).get("code", "")
    return _HTTP_STATUS.get(code, 500)


def wire_dumps(envelope: dict) -> str:
    """Canonical envelope text: sorted keys, indent 2, one trailing newline.

    Byte-determinism is part of the contract — it is what lets the
    service's dedup return cached response bytes, the CLI's JSON output
    be compared with ``cmp``, and the golden-file tests pin the format.
    """
    return json.dumps(envelope, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------- result schemas (v1)


def analyze_result(analysis) -> dict:
    """``/v1/analyze`` + ``repro analyze --format json`` result object."""
    breakdown = analysis.breakdown
    return {
        "events": analysis.events,
        "sections": len(analysis.sections),
        "pairs": len(analysis.pairs),
        "ulcps": len(analysis.ulcps),
        "breakdown": {
            "null_lock": breakdown.null_lock,
            "read_read": breakdown.read_read,
            "disjoint_write": breakdown.disjoint_write,
            "benign": breakdown.benign,
            "tlcp": breakdown.tlcp,
        },
    }


def stats_result(stats) -> dict:
    """``repro stats --format json`` result object."""
    return {
        "events": stats.total_events,
        "end_time": stats.end_time,
        "locks": stats.locks,
        "shared_addresses": stats.shared_addresses,
        "contention_rate": stats.contention_rate,
        "kinds": dict(stats.kinds),
        "threads": {
            tid: {
                "events": t.events,
                "compute_ns": t.compute_ns,
                "acquisitions": t.acquisitions,
                "contended": t.contended,
                "wait_ns": t.wait_ns,
                "reads": t.reads,
                "writes": t.writes,
            }
            for tid, t in stats.threads.items()
        },
    }


def locks_result(profiles, limit: Optional[int] = None) -> list:
    """``repro locks --format json`` result array."""
    return [
        {
            "lock": p.lock,
            "acquisitions": p.acquisitions,
            "contended": p.contended,
            "contention_rate": p.contention_rate,
            "total_wait_ns": p.total_wait_ns,
            "total_hold_ns": p.total_hold_ns,
            "max_wait_ns": p.max_wait_ns,
            "threads": sorted(p.threads),
        }
        for p in (profiles if limit is None else profiles[:limit])
    ]


def profile_result(report) -> dict:
    """``repro profile --format json`` result object (wall times inside —
    deterministic in shape, not in values)."""
    return {
        "stages": [
            {"name": s.name, "seconds": s.seconds, "detail": s.detail}
            for s in report.stages
        ],
        "total_seconds": report.total_seconds,
        "events": report.events,
        "sections": report.sections,
        "pairs": report.pairs,
    }


def transform_summary(result) -> dict:
    """``/v1/transform`` result object (the trace itself travels as an
    artifact blob; this is the envelope-sized summary)."""
    breakdown = result.analysis.breakdown
    return {
        "sections": len(result.sections),
        "removed_sections": result.removed_sections,
        "aux_locks": len(result.plan.aux_locks),
        "causal_edges": len(result.topology.causal_edges()),
        "order_edges": len(result.topology.order_edges()),
        "breakdown": {
            "null_lock": breakdown.null_lock,
            "read_read": breakdown.read_read,
            "disjoint_write": breakdown.disjoint_write,
            "benign": breakdown.benign,
            "tlcp": breakdown.tlcp,
        },
    }


# ------------------------------------------------------ request validation


#: fields every job-request JSON body may carry
_REQUEST_FIELDS = {"v", "workload", "options", "mode", "format"}
#: per-endpoint artifact formats (None = the endpoint has one format)
_FORMATS = {"timeline": ("json", "chrome")}


def parse_request(endpoint: str, payload: dict) -> dict:
    """Validate a v1 JSON job request; returns the normalized fields.

    Raises :class:`~repro.errors.RequestError` (code
    ``request.invalid``) on shape violations and
    :class:`~repro.errors.OptionsError` on bad option values — both map
    to HTTP 400.
    """
    from repro.errors import RequestError

    if not isinstance(payload, dict):
        raise RequestError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown request field(s) {unknown}; "
            f"known: {sorted(_REQUEST_FIELDS)}"
        )
    version = payload.get("v", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise RequestError(
            f"unsupported wire version {version!r} (this server speaks "
            f"v{WIRE_VERSION})"
        )
    mode = payload.get("mode", "sync")
    if mode not in ("sync", "async"):
        raise RequestError(f'mode must be "sync" or "async", got {mode!r}')
    fmt = payload.get("format")
    allowed = _FORMATS.get(endpoint)
    if fmt is not None and (allowed is None or fmt not in allowed):
        raise RequestError(
            f"format {fmt!r} is not valid for /v1/{endpoint}"
            + (f" (expected one of {allowed})" if allowed else "")
        )
    workload = payload.get("workload")
    if workload is not None:
        workload = parse_workload_spec(workload)
    return {
        "workload": workload,
        "options": payload.get("options"),
        "mode": mode,
        "format": fmt or (allowed[0] if allowed else None),
    }


#: workload-spec fields; everything else is passed to the workload ctor
_WORKLOAD_FIELDS = {"name", "threads", "input_size", "scale", "seed"}


def parse_workload_spec(spec) -> dict:
    """Validate the ``workload`` object of a job request."""
    from repro.errors import RequestError

    if not isinstance(spec, dict) or not isinstance(spec.get("name"), str):
        raise RequestError(
            'workload must be an object with a string "name" field, e.g. '
            '{"name": "mysql", "threads": 2}'
        )
    for field, types, label in (
        ("threads", (int,), "an integer"),
        ("seed", (int,), "an integer"),
        ("scale", (int, float), "a number"),
        ("input_size", (str,), "a string"),
    ):
        value = spec.get(field)
        if value is not None and (
            not isinstance(value, types) or isinstance(value, bool)
        ):
            raise RequestError(f"workload.{field} must be {label}, got {value!r}")
    return spec
