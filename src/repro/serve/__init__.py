"""``repro.serve``: the multi-tenant analysis service over ``repro.api``.

A stdlib-only HTTP service (``http.server.ThreadingHTTPServer``, no new
runtime dependencies) that turns the batch pipeline into a long-running
shared server:

* :mod:`repro.serve.protocol` — the versioned v1 wire contract: one
  envelope ``{"v": 1, "ok": ..., "result"|"error": ...}`` shared with
  the CLI's ``--format json`` output, stable error codes from
  :mod:`repro.errors`, and the per-endpoint result schemas;
* :mod:`repro.serve.jobs` — content-addressed job manager: concurrent
  identical requests (same trace digest, same options) share one
  computation, finished jobs are retained for polling, and every
  computation runs under the supervised executor's
  :class:`~repro.runner.pool.ExecPolicy` (retries, quarantine);
* :mod:`repro.serve.server` — the HTTP endpoints
  (``POST /v1/analyze|transform|report|timeline``, async polling via
  ``GET /v1/jobs/<id>``, Prometheus metrics at ``GET /metrics``);
* :mod:`repro.serve.loadtest` — the seeded synthetic load generator
  behind ``repro loadtest`` (hundreds of concurrent clients, mixed
  trace sizes, p50/p99/throughput published as ``BENCH_serve.json``).

See ``docs/SERVICE.md`` for the full wire contract.
"""

from repro.serve.jobs import Job, JobManager
from repro.serve.loadtest import LoadTestReport, run_loadtest
from repro.serve.protocol import (
    WIRE_VERSION,
    envelope_from_exception,
    error_envelope,
    http_status,
    ok_envelope,
    wire_dumps,
)
from repro.serve.server import ReproServer, serve

__all__ = [
    "WIRE_VERSION",
    "Job",
    "JobManager",
    "LoadTestReport",
    "ReproServer",
    "envelope_from_exception",
    "error_envelope",
    "http_status",
    "ok_envelope",
    "run_loadtest",
    "serve",
    "wire_dumps",
]
