"""Eraser: lockset-based data-race detection (Savage et al., 1997).

The classic state machine per shared address:

* *virgin* → *exclusive* on first access (one thread, no checking),
* *exclusive* → *shared* when a second thread reads,
* → *shared-modified* when a second thread writes (or a write happens in
  the shared state).

In the shared states, the candidate lockset C(addr) is refined to the
intersection of the locks held at each access; an empty C(addr) in the
shared-modified state is reported as a race.  PERFPLAY relies on locksets
for RULE 3 and uses race reports as the Theorem 1 escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.trace.events import ACQUIRE, READ, RELEASE, WRITE
from repro.trace.trace import Trace

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared_modified"


@dataclass
class RaceReport:
    """One address whose candidate lockset drained while shared-modified."""

    addr: str
    event_uid: str
    tid: str
    state: str

    def __str__(self):
        return f"race on {self.addr} at {self.event_uid} ({self.tid}, {self.state})"


@dataclass
class _AddrState:
    state: str = VIRGIN
    owner: Optional[str] = None
    lockset: Optional[Set[str]] = None  # None = not yet initialized


class EraserDetector:
    """Streaming Eraser over trace events."""

    def __init__(self):
        self._held: Dict[str, Set[str]] = {}
        self._addr: Dict[str, _AddrState] = {}
        self.reports: List[RaceReport] = []
        self._reported: Set[str] = set()

    def _locks_of(self, tid: str) -> Set[str]:
        return self._held.setdefault(tid, set())

    def on_acquire(self, tid: str, lock: str) -> None:
        self._locks_of(tid).add(lock)

    def on_release(self, tid: str, lock: str) -> None:
        self._locks_of(tid).discard(lock)

    def on_access(self, tid: str, addr: str, is_write: bool, uid: str) -> None:
        state = self._addr.setdefault(addr, _AddrState())
        held = self._locks_of(tid)

        if state.state == VIRGIN:
            state.state = EXCLUSIVE
            state.owner = tid
            return
        if state.state == EXCLUSIVE:
            if tid == state.owner:
                return
            state.state = SHARED_MODIFIED if is_write else SHARED
            state.lockset = set(held)
            self._check(state, addr, tid, uid)
            return
        # shared / shared-modified: refine the candidate lockset
        if is_write and state.state == SHARED:
            state.state = SHARED_MODIFIED
        state.lockset = (state.lockset if state.lockset is not None else set(held)) & held
        self._check(state, addr, tid, uid)

    def _check(self, state: _AddrState, addr: str, tid: str, uid: str) -> None:
        if (
            state.state == SHARED_MODIFIED
            and state.lockset is not None
            and not state.lockset
            and addr not in self._reported
        ):
            self._reported.add(addr)
            self.reports.append(
                RaceReport(addr=addr, event_uid=uid, tid=tid, state=state.state)
            )


def eraser_races(trace: Trace) -> List[RaceReport]:
    """Run Eraser over a recorded trace, in recorded time order."""
    detector = EraserDetector()
    for event in trace.iter_time_order():
        if event.kind == ACQUIRE:
            detector.on_acquire(event.tid, event.lock)
        elif event.kind == RELEASE:
            detector.on_release(event.tid, event.lock)
        elif event.kind == READ:
            detector.on_access(event.tid, event.addr, False, event.uid)
        elif event.kind == WRITE:
            detector.on_access(event.tid, event.addr, True, event.uid)
    return detector.reports
