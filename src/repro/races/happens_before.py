"""Happens-before race detection with vector clocks.

Builds the happens-before relation of a trace from program order plus
synchronization edges, then reports conflicting unordered access pairs.
Two variants:

* :func:`happens_before_races` — for original traces: release→acquire
  edges per lock (in acquisition order) and post→wait token edges.
* :func:`transformed_trace_races` — for ULCP-free traces: token edges
  plus the transformation plan's predecessor edges (cs_exit → cs_enter).
  This is what PERFPLAY consults when the original and ULCP-free replays
  disagree on final memory (Theorem 1's "report the data races" branch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.trace.events import (
    ACQUIRE,
    CS_ENTER,
    CS_EXIT,
    POST,
    READ,
    RELEASE,
    WAIT,
    WRITE,
)
from repro.trace.trace import Trace


class VectorClock:
    """A sparse vector clock over thread ids."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Dict[str, int] = None):
        self.clocks = dict(clocks or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def tick(self, tid: str) -> None:
        self.clocks[tid] = self.clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, value in other.clocks.items():
            if self.clocks.get(tid, 0) < value:
                self.clocks[tid] = value

    def happens_before(self, other: "VectorClock") -> bool:
        """self ≤ other componentwise (and they are comparable that way)."""
        return all(other.clocks.get(tid, 0) >= v for tid, v in self.clocks.items())

    def __repr__(self):
        return f"VC({self.clocks})"


@dataclass
class HbRace:
    """Two conflicting accesses with no happens-before order."""

    addr: str
    first_uid: str
    first_tid: str
    second_uid: str
    second_tid: str

    def __str__(self):
        return (
            f"race on {self.addr}: {self.first_uid}({self.first_tid}) || "
            f"{self.second_uid}({self.second_tid})"
        )


@dataclass
class _LastAccess:
    uid: str
    tid: str
    vc: VectorClock


def _detect(
    trace: Trace,
    extra_edges: Dict[str, List[str]],
    use_lock_edges: bool,
    max_reports: int,
) -> List[HbRace]:
    """Core sweep in time order.

    ``extra_edges`` maps an event uid to the uids of events that must
    happen-before it (beyond program order / lock / token edges).
    """
    vc: Dict[str, VectorClock] = {tid: VectorClock() for tid in trace.threads}
    for tid in trace.threads:
        vc[tid].tick(tid)
    lock_release_vc: Dict[str, VectorClock] = {}
    token_vc: Dict[str, VectorClock] = {}
    event_vc: Dict[str, VectorClock] = {}
    last_writer: Dict[str, _LastAccess] = {}
    last_readers: Dict[str, Dict[str, _LastAccess]] = {}
    races: List[HbRace] = []

    for event in trace.iter_time_order():
        tid = event.tid
        mine = vc.get(tid)
        if mine is None:
            mine = vc[tid] = VectorClock()
        for pred_uid in extra_edges.get(event.uid, ()):
            pred_vc = event_vc.get(pred_uid)
            if pred_vc is not None:
                mine.join(pred_vc)
        if event.kind == ACQUIRE and use_lock_edges:
            prev = lock_release_vc.get(event.lock)
            if prev is not None:
                mine.join(prev)
        elif event.kind == RELEASE and use_lock_edges:
            lock_release_vc[event.lock] = mine.copy()
        elif event.kind == WAIT and event.token is not None:
            prev = token_vc.get(event.token)
            if prev is not None:
                mine.join(prev)
        elif event.kind == POST:
            token_vc[event.token] = mine.copy()
        elif event.kind in (READ, WRITE):
            addr = event.addr
            writer = last_writer.get(addr)
            if writer is not None and writer.tid != tid:
                if not writer.vc.happens_before(mine):
                    races.append(
                        HbRace(addr, writer.uid, writer.tid, event.uid, tid)
                    )
            if event.kind == WRITE:
                for reader in last_readers.get(addr, {}).values():
                    if reader.tid != tid and not reader.vc.happens_before(mine):
                        races.append(
                            HbRace(addr, reader.uid, reader.tid, event.uid, tid)
                        )
                last_writer[addr] = _LastAccess(event.uid, tid, mine.copy())
                last_readers[addr] = {}
            else:
                last_readers.setdefault(addr, {})[tid] = _LastAccess(
                    event.uid, tid, mine.copy()
                )
        mine.tick(tid)
        event_vc[event.uid] = mine.copy()
        if len(races) >= max_reports:
            break
    return races


def happens_before_races(trace: Trace, *, max_reports: int = 100) -> List[HbRace]:
    """Races in an original trace (lock + token edges)."""
    return _detect(trace, {}, use_lock_edges=True, max_reports=max_reports)


def transformed_trace_races(result, *, max_reports: int = 100) -> List[HbRace]:
    """Races in a ULCP-free trace given its transformation plan.

    Synchronization edges: token waits/posts plus cs_exit(pred) →
    cs_enter(succ) for every planned predecessor.
    """
    trace: Trace = result.trace
    plan = result.plan
    exit_uid: Dict[str, str] = {}
    for event in trace.iter_events():
        if event.kind == CS_EXIT:
            exit_uid[event.token] = event.uid
    extra: Dict[str, List[str]] = {}
    for event in trace.iter_events():
        if event.kind == CS_ENTER:
            preds = plan.preds.get(event.token, ())
            extra[event.uid] = [
                exit_uid[pred] for pred in preds if pred in exit_uid
            ]
    return _detect(trace, extra, use_lock_edges=False, max_reports=max_reports)
