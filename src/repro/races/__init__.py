"""Race detection: Eraser-style locksets and happens-before vector clocks."""

from repro.races.eraser import EraserDetector, RaceReport, eraser_races
from repro.races.happens_before import (
    HbRace,
    VectorClock,
    happens_before_races,
    transformed_trace_races,
)

__all__ = [
    "EraserDetector",
    "RaceReport",
    "eraser_races",
    "VectorClock",
    "HbRace",
    "happens_before_races",
    "transformed_trace_races",
]
