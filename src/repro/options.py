"""Typed option objects for the facade, the CLI, and the wire API.

One options object, three frontends: :func:`repro.api.analyze`,
``repro analyze`` and ``POST /v1/analyze`` all configure the same
computation, so they share one :class:`AnalyzeOptions` (and the
:class:`ReplayOptions` / :class:`ReportOptions` siblings) instead of
three drifting keyword lists.

The dataclasses are frozen — an options object is a value, safe to hash
into cache keys and to share between the deduplicating service jobs.
Two constructors cover the non-Python frontends:

* :meth:`from_kwargs` — the facade's bare-keyword compatibility shim
  (``api.analyze(trace, benign_detection=False)`` keeps working for one
  release, with a :class:`DeprecationWarning`);
* :meth:`from_wire` — a JSON object from the v1 wire API, validated
  field by field (unknown fields and wrong types raise
  :class:`~repro.errors.OptionsError` with a stable error code).

``to_wire()`` is the inverse of ``from_wire`` and is canonical: it emits
only non-default fields, sorted, so equal options always serialize to
equal JSON (and therefore equal cache keys).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Optional, Union

from repro.errors import OptionsError

__all__ = ["AnalyzeOptions", "ReplayOptions", "ReportOptions"]


class _Options:
    """Shared constructors/serializers for the frozen option dataclasses."""

    @classmethod
    def from_kwargs(cls, kwargs: dict):
        """Build from bare keyword arguments; unknown names raise."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise TypeError(
                f"unknown {cls.__name__} field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        options = cls(**kwargs)
        options.validate()
        return options

    @classmethod
    def from_wire(cls, payload: Optional[dict]):
        """Build from a decoded JSON object, validating every field."""
        if payload is None:
            return cls()
        if not isinstance(payload, dict):
            raise OptionsError(
                f"{cls.__name__}: expected a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise OptionsError(
                f"{cls.__name__}: unknown field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        values = {}
        for name, value in payload.items():
            values[name] = _check_type(cls.__name__, name, value,
                                       known[name].type)
        try:
            options = cls(**values)
        except (TypeError, ValueError) as exc:
            raise OptionsError(f"{cls.__name__}: {exc}") from None
        options.validate()
        return options

    def to_wire(self) -> dict:
        """Canonical JSON form: non-default fields only, plain types."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = (f.default if f.default is not dataclasses.MISSING
                       else f.default_factory())
            if value != default:
                out[f.name] = value
        return out

    def replace(self, **changes):
        """A copy with ``changes`` applied (frozen dataclasses are values)."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        """Range/consistency checks beyond field types (may be overridden)."""


# wire-type table: dataclass annotation string -> (python types, label).
# annotations are strings under `from __future__ import annotations`, so
# the check is by name, not by evaluated type object.
_WIRE_TYPES = {
    "bool": ((bool,), "a boolean"),
    "int": ((int,), "an integer"),
    "float": ((int, float), "a number"),
    "str": ((str,), "a string"),
    "Optional[str]": ((str, type(None)), "a string or null"),
    "Optional[int]": ((int, type(None)), "an integer or null"),
    "Union[bool, str]": ((bool, str), "a boolean or string"),
    "dict": ((dict,), "an object"),
}


def _check_type(owner: str, name: str, value, annotation):
    types, label = _WIRE_TYPES.get(str(annotation), ((object,), "a value"))
    if not isinstance(value, types) or (
        bool not in types and isinstance(value, bool) and types != (object,)
    ):
        raise OptionsError(
            f"{owner}.{name}: expected {label}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class AnalyzeOptions(_Options):
    """How :func:`repro.api.analyze` identifies and classifies ULCP pairs.

    ``benign_detection``
        run the reversed-replay benign test on conflicting pairs (the
        default); off, conflicting pairs count as TLCPs.
    ``stream``
        ``"auto"`` (default) streams segmented trace files segment by
        segment and fully loads everything else; ``True`` requires a
        segmented file path; ``False`` always loads fully.
    ``resume`` / ``checkpoint_every``
        run id for segment-granular scan checkpoints, and the number of
        segments between checkpoints (streaming path only).
    ``jobs``
        affinity-pinned worker processes for a sharded streaming scan
        (mutually exclusive with ``resume``).
    """

    benign_detection: bool = True
    stream: Union[bool, str] = "auto"
    resume: Optional[str] = None
    checkpoint_every: int = 16
    jobs: int = 1

    def validate(self) -> None:
        if isinstance(self.stream, str) and self.stream != "auto":
            raise OptionsError(
                f"AnalyzeOptions.stream: expected true, false or \"auto\", "
                f"got {self.stream!r}"
            )
        if self.checkpoint_every < 1:
            raise OptionsError(
                "AnalyzeOptions.checkpoint_every: must be >= 1"
            )
        if self.jobs > 1 and self.resume is not None:
            raise OptionsError(
                "AnalyzeOptions: jobs>1 fans the scan out, resume "
                "checkpoints it; pick one"
            )


@dataclass(frozen=True)
class ReplayOptions(_Options):
    """How :func:`repro.api.replay` re-executes a trace.

    ``scheme`` is one of ``ALL_SCHEMES`` (default ELSC-S); ``runs`` > 1
    returns a seeded series (``seed``, ``seed+1``, ...) fanned over
    ``jobs`` worker processes; ``timeline`` collects live interval lanes
    (single runs only); ``resume`` journals a multi-run series under the
    active cache so a killed call can continue.
    """

    scheme: str = "ELSC-S"
    runs: int = 1
    seed: int = 0
    jitter: float = 0.02
    jobs: int = 1
    timeline: bool = False
    resume: Optional[str] = None

    def validate(self) -> None:
        from repro.replay.schemes import ALL_SCHEMES

        if self.scheme not in ALL_SCHEMES:
            raise OptionsError(
                f"ReplayOptions.scheme: unknown scheme {self.scheme!r} "
                f"(expected one of {ALL_SCHEMES})"
            )
        if self.runs < 1:
            raise OptionsError("ReplayOptions.runs: must be >= 1")


@dataclass(frozen=True)
class ReportOptions(_Options):
    """How :func:`repro.api.report` runs the session behind the HTML report.

    The workload parameters (``threads``/``input_size``/``scale``/
    ``seed``/``workload_kwargs``) apply when the report's input is a
    workload name rather than a recorded trace; the analysis knobs
    (``benign_detection``/``order_edges``) configure the transformation
    either way.
    """

    threads: int = 2
    input_size: str = "simlarge"
    scale: float = 1.0
    seed: int = 0
    benign_detection: bool = True
    order_edges: bool = True
    workload_kwargs: dict = dataclasses.field(default_factory=dict)

    def validate(self) -> None:
        if self.input_size not in ("simsmall", "simmedium", "simlarge"):
            raise OptionsError(
                f"ReportOptions.input_size: expected simsmall/simmedium/"
                f"simlarge, got {self.input_size!r}"
            )
        if self.threads < 1:
            raise OptionsError("ReportOptions.threads: must be >= 1")
