"""Request objects yielded by thread programs.

A thread program is a Python generator.  Each ``yield`` hands the machine one
of the request dataclasses below; the machine performs the requested action,
advances simulated time, and sends the result (if any) back into the
generator.  This is the only interface between workload code and the
simulator, and also the interface the replayer uses to re-execute traces.

Every request can carry:

* ``site``  — an opaque code-site object (see :mod:`repro.trace.codesite`)
  identifying the source location that issued the operation, and
* ``uid``   — a stable event uid.  The recorder allocates uids; the replayer
  passes the recorded uids back in so that enforcement gates and
  cross-replay timestamp correlation can match events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class Store:
    """Write a literal value to a memory location."""

    value: int

    def apply(self, old: int) -> int:
        return self.value

    def encode(self) -> Tuple[str, int]:
        return ("store", self.value)


@dataclass(frozen=True)
class Add:
    """Add a delta to a memory location (commutes with itself)."""

    delta: int

    def apply(self, old: int) -> int:
        return old + self.delta

    def encode(self) -> Tuple[str, int]:
        return ("add", self.delta)


#: decoded-op cache — traces repeat the same handful of micro-ops millions
#: of times, and Store/Add are frozen, so the instances are safely shared
_DECODE_CACHE: dict = {}


def decode_op(encoded) -> "Store | Add":
    """Inverse of ``Store.encode`` / ``Add.encode`` (memoized)."""
    key = tuple(encoded)
    op = _DECODE_CACHE.get(key)
    if op is None:
        kind, operand = key
        if kind == "store":
            op = Store(int(operand))
        elif kind == "add":
            op = Add(int(operand))
        else:
            raise ValueError(f"unknown memory op {kind!r}")
        _DECODE_CACHE[key] = op
    return op


@dataclass
class Request:
    """Base class for everything a thread program may yield."""

    site: Any = field(default=None, kw_only=True)
    uid: Optional[str] = field(default=None, kw_only=True)


@dataclass
class Compute(Request):
    """Burn ``duration`` nanoseconds of CPU on the owning core."""

    duration: int = 0


@dataclass
class Acquire(Request):
    """Acquire a lock.  ``spin=True`` accounts the wait as burned CPU.

    ``shared=True`` takes the lock in reader mode: any number of shared
    holders may coexist, but they exclude (and are excluded by) exclusive
    holders.  This is the readers-writer rewrite the fix advisor suggests
    for read-read ULCPs; plain mutexes are ``shared=False``.
    """

    lock: str = ""
    spin: bool = False
    shared: bool = False


@dataclass
class Release(Request):
    """Release a mutex held by this thread."""

    lock: str = ""


@dataclass
class Read(Request):
    """Read a shared-memory location; the value is sent back to the program."""

    addr: str = ""


@dataclass
class Write(Request):
    """Apply ``op`` (Store/Add) to a shared-memory location."""

    addr: str = ""
    op: Any = None


@dataclass
class CondWait(Request):
    """Wait on a condition variable, releasing ``lock`` while asleep.

    The machine sends back ``"signaled"`` or ``"timeout"``.  On wake the
    thread re-acquires ``lock`` before the program resumes (mirroring
    ``pthread_cond_wait`` — the source of the paper's Case 1 null-locks).
    """

    cond: str = ""
    lock: str = ""
    timeout: Optional[int] = None


@dataclass
class Signal(Request):
    """Wake one waiter of a condition variable."""

    cond: str = ""


@dataclass
class Broadcast(Request):
    """Wake every waiter of a condition variable."""

    cond: str = ""


@dataclass
class SemAcquire(Request):
    """P() on a counting semaphore (non-mutual-exclusive sync)."""

    sem: str = ""


@dataclass
class SemRelease(Request):
    """V() on a counting semaphore."""

    sem: str = ""


@dataclass
class BarrierWait(Request):
    """Block until ``parties`` threads have reached the named barrier."""

    barrier: str = ""
    parties: int = 2


@dataclass
class Sleep(Request):
    """Block off-core for ``duration`` nanoseconds."""

    duration: int = 0


@dataclass
class AwaitFlag(Request):
    """Block until a named boolean flag becomes true."""

    flag: str = ""


@dataclass
class SetFlag(Request):
    """Set a named boolean flag and wake its waiters."""

    flag: str = ""


@dataclass
class Opaque(Request):
    """A bypassed code range (selective recording, paper §5.1).

    Models a system call / library call / spin loop whose internals are
    not worth recording: the thread blocks off-core for ``duration`` and
    the range's net memory effect ``changes`` is applied atomically at
    the end, without per-access events.  The recorder stores the delta in
    the trace's side table; replay restores it the same way.
    """

    duration: int = 0
    changes: dict = field(default_factory=dict)


@dataclass
class CheckFlag(Request):
    """Non-blocking flag test; sends True/False back to the program.

    The dynamic locking strategy (paper §3.2, Figure 9) uses this to test
    each source node's END state at runtime and skip the locks of sections
    that already finished.
    """

    flag: str = ""
