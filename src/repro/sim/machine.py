"""The discrete-event multicore machine.

This module is the execution substrate standing in for the paper's real
2x quad-core Xeon + pthreads + Pin stack.  Threads are Python generators
yielding :mod:`repro.sim.requests` objects; the machine interleaves them
over ``num_cores`` simulated cores, arbitrates locks, applies memory ops,
and accounts CPU/spin/block time per thread.

Determinism: given the same programs and the same seeds (``sched_rng``,
``jitter_rng``, wake policy RNG), a run is bit-for-bit reproducible.  All
run-to-run variance used by the ORIG-S replay scheme comes exclusively
from those seeds.

Waiting semantics: a thread waiting on a busy lock either *blocks*
(``block_ns``) or *spins* (``spin_ns``, also charged as ``cpu_ns`` — pure
waste, the paper's "CPU time wasting").  Spinning is an accounting mode,
not a core-occupancy mode; this keeps the scheduler livelock-free while
preserving the waste metric the paper reports.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, Generator, List, Optional

from repro import faults
from repro.errors import DeadlockError, FaultInjected, SimulationError
from repro.sim import requests as rq
from repro.sim.gates import Gate
from repro.sim.memory import SharedMemory
from repro.sim.observer import NullObserver
from repro.sim.policies import FifoPolicy, WakePolicy
from repro.sim.stats import LockStats, MachineResult, ThreadStats
from repro.sim.timebase import DEFAULT_LOCK_COST, DEFAULT_MEM_COST
from repro.util.ids import IdGenerator

_NEW = "new"
_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class _Thread:
    __slots__ = (
        "tid",
        "name",
        "gen",
        "state",
        "stats",
        "send_value",
        "pending_cost",
        "wait_start",
        "wait_is_spin",
        "wait_req",
        "blocked_reason",
    )

    def __init__(self, tid: str, name: str, gen: Generator):
        self.tid = tid
        self.name = name
        self.gen = gen
        self.state = _NEW
        self.stats = ThreadStats(tid=tid, name=name)
        self.send_value = None
        self.pending_cost = 0
        self.wait_start = 0
        self.wait_is_spin = False
        self.wait_req: Optional[rq.Acquire] = None
        self.blocked_reason = ""

    def __repr__(self):
        return f"<_Thread {self.tid} {self.name!r} {self.state}>"


class _Lock:
    __slots__ = (
        "name", "owner", "readers", "reader_t", "waiters", "stats", "t_acquired",
    )

    def __init__(self, name: str):
        self.name = name
        self.owner: Optional[_Thread] = None  # exclusive holder
        self.readers: set = set()  # shared holders
        self.reader_t: Dict[str, int] = {}
        self.waiters: List[_Thread] = []
        self.stats = LockStats(lock=name)
        self.t_acquired = 0

    def admits(self, shared: bool) -> bool:
        """Can a new holder of the given mode enter right now?"""
        if shared:
            return self.owner is None
        return self.owner is None and not self.readers

    @property
    def held(self) -> bool:
        return self.owner is not None or bool(self.readers)


class _Sem:
    __slots__ = ("name", "init_count", "credits", "waiters")

    def __init__(self, name: str, count: int = 0):
        self.name = name
        self.init_count = count
        self.credits: List[str] = []  # uids of unconsumed V() posts
        self.waiters: List[tuple] = []


class Machine:
    """A deterministic discrete-event multicore machine."""

    def __init__(
        self,
        num_cores: int = 8,
        *,
        observer: NullObserver = None,
        gate: Gate = None,
        wake_policy: WakePolicy = None,
        sched_rng=None,
        jitter: float = 0.0,
        jitter_rng=None,
        lock_cost: int = DEFAULT_LOCK_COST,
        mem_cost: int = DEFAULT_MEM_COST,
        memory: SharedMemory = None,
        max_time: Optional[int] = None,
    ):
        if num_cores < 1:
            raise SimulationError("machine needs at least one core")
        if jitter and jitter_rng is None:
            raise SimulationError("jitter requires a jitter_rng")
        self.num_cores = num_cores
        self.now = 0
        self.memory = memory if memory is not None else SharedMemory()
        self.observer = observer if observer is not None else NullObserver()
        self.gate = gate if gate is not None else Gate()
        self.wake_policy = wake_policy if wake_policy is not None else FifoPolicy()
        self._sched_rng = sched_rng
        self._jitter = jitter
        self._jitter_rng = jitter_rng
        self.lock_cost = lock_cost
        self.mem_cost = mem_cost
        self.max_time = max_time

        self._ids = IdGenerator()
        self._threads: Dict[str, _Thread] = {}
        self._ready: deque = deque()
        self._free_cores = num_cores
        self._eventq: List[tuple] = []
        self._seq = 0
        self._done_count = 0

        self._locks: Dict[str, _Lock] = {}
        self._conds: Dict[str, List[tuple]] = {}
        self._sems: Dict[str, _Sem] = {}
        self._barriers: Dict[str, List[tuple]] = {}
        self._barrier_round: Dict[str, int] = {}
        self._flags: Dict[str, tuple] = {}  # name -> (set, last_post_uid)
        self._flag_waiters: Dict[str, List[tuple]] = {}
        self._gated_mem: List[tuple] = []  # (thread, request)
        self._starved_locks: set = set()  # free locks whose waiters a gate vetoed
        self._recheck_scheduled = False
        self._ran = False

        self.gate.attach(self)

    # ------------------------------------------------------------- setup

    def add_thread(self, program: Generator, name: str = None) -> str:
        """Register a thread program (a generator of requests)."""
        if self._ran:
            raise SimulationError("cannot add threads after run()")
        tid = self._ids.next("t")
        thread = _Thread(tid, name or tid, program)
        self._threads[tid] = thread
        return tid

    def set_semaphore(self, name: str, count: int) -> None:
        """Pre-charge a counting semaphore with ``count`` credits."""
        self._sems[name] = _Sem(name, count)

    # --------------------------------------------------------------- run

    def run(self) -> MachineResult:
        """Run all threads to completion and return the accounting."""
        if self._ran:
            raise SimulationError("a Machine can only run() once")
        self._ran = True
        for thread in self._threads.values():
            thread.state = _READY
            self._ready.append(thread)
            self.observer.on_thread_start(thread.tid, thread.name, self.now)

        while True:
            self._dispatch()
            if self._done_count == len(self._threads):
                break
            if not self._eventq:
                blocked = [
                    f"{t.tid}({t.blocked_reason})"
                    for t in self._threads.values()
                    if t.state != _DONE
                ]
                raise DeadlockError(blocked, self.now)
            t, _, fn, args = heapq.heappop(self._eventq)
            if t > self.now:
                self.now = t
            if self.max_time is not None and self.now > self.max_time:
                raise SimulationError(f"exceeded max_time={self.max_time}")
            fn(*args)

        result = self._result()
        self._emit_telemetry(result)
        return result

    def _emit_telemetry(self, result: MachineResult) -> None:
        """One boundary-level metric emission per run (cheap when disabled)."""
        from repro import telemetry

        if not telemetry.enabled():
            return
        telemetry.count("sim.runs")
        telemetry.count("sim.simulated_ns", result.end_time)
        telemetry.count("sim.threads", len(result.threads))
        acquisitions = contended = wait_spin = wait_block = 0
        for stats in result.locks.values():
            acquisitions += stats.acquisitions
            contended += stats.contended_acquisitions
        for stats in result.threads.values():
            wait_spin += stats.spin_ns
            wait_block += stats.block_ns
        telemetry.count("sim.lock.acquisitions", acquisitions)
        telemetry.count("sim.lock.contended", contended)
        telemetry.count("sim.wait.spin_ns", wait_spin)
        telemetry.count("sim.wait.block_ns", wait_block)

    def _result(self) -> MachineResult:
        return MachineResult(
            end_time=self.now,
            threads={tid: th.stats for tid, th in self._threads.items()},
            locks={name: lk.stats for name, lk in self._locks.items()},
        )

    # --------------------------------------------------------- scheduling

    def _schedule(self, delay: int, fn: Callable, *args) -> None:
        self._seq += 1
        heapq.heappush(self._eventq, (self.now + delay, self._seq, fn, args))

    def _dispatch(self) -> None:
        while self._free_cores > 0 and self._ready:
            if self._sched_rng is not None and len(self._ready) > 1:
                idx = self._sched_rng.randrange(len(self._ready))
                self._ready.rotate(-idx)
                thread = self._ready.popleft()
                self._ready.rotate(idx)
            else:
                thread = self._ready.popleft()
            if thread.state != _READY:
                continue
            thread.state = _RUNNING
            self._free_cores -= 1
            cost = thread.pending_cost
            thread.pending_cost = 0
            if cost > 0:
                thread.stats.cpu_ns += cost
                self._schedule(cost, self._step, thread)
            else:
                self._step(thread)

    def _make_ready(self, thread: _Thread, send_value=None, cost: int = 0) -> None:
        thread.state = _READY
        thread.send_value = send_value
        thread.pending_cost = cost
        thread.blocked_reason = ""
        self._ready.append(thread)

    def _block(self, thread: _Thread, reason: str) -> None:
        thread.state = _BLOCKED
        thread.blocked_reason = reason
        self._release_core()
        # blocking can change gate eligibility (e.g. the Kendo clock
        # minimum moves to a parked thread), so parked work gets re-checked
        self._request_recheck()

    def _release_core(self) -> None:
        self._free_cores += 1

    def _finish(self, thread: _Thread) -> None:
        for lock in self._locks.values():
            if lock.owner is thread or thread in lock.readers:
                raise SimulationError(
                    f"thread {thread.tid} exited holding lock {lock.name}"
                )
        thread.state = _DONE
        thread.stats.end_time = self.now
        self._done_count += 1
        self._release_core()
        self.observer.on_thread_end(thread.tid, self.now)
        self.gate.on_thread_end(thread.tid)
        self._request_recheck()

    # -------------------------------------------------------------- step

    def _kill_thread(self, thread: _Thread) -> None:
        """An injected silent death: the thread vanishes, locks still held.

        Unlike :meth:`_finish` this skips the held-lock sanity check —
        modelling a worker killed mid-critical-section.  Threads waiting
        on its locks then starve, and the run ends in a
        :class:`DeadlockError` naming exactly those blocked threads.
        """
        thread.gen.close()
        thread.state = _DONE
        thread.stats.end_time = self.now
        self._done_count += 1
        self._release_core()
        self.observer.on_thread_end(thread.tid, self.now)
        self.gate.on_thread_end(thread.tid)
        self._request_recheck()

    def _step(self, thread: _Thread) -> None:
        """Drive a RUNNING thread until it blocks, computes, or finishes."""
        if faults.enabled():
            if faults.fires("sim.thread_kill", key=thread.tid):
                self._kill_thread(thread)
                self._dispatch()
                return
            if faults.fires("sim.thread_exception", key=thread.tid):
                raise FaultInjected("sim.thread_exception", key=thread.tid)
        while True:
            value, thread.send_value = thread.send_value, None
            try:
                if value is None:
                    req = next(thread.gen)
                else:
                    req = thread.gen.send(value)
            except StopIteration:
                self._finish(thread)
                self._dispatch()
                return
            action, cost = self._handle(thread, req)
            if action == "block":
                self._dispatch()
                return
            if cost > 0:
                thread.stats.cpu_ns += cost
                self._schedule(cost, self._step, thread)
                return
            # zero-cost request: keep stepping inline

    def _handle(self, thread: _Thread, req: rq.Request):
        handler = self._HANDLERS.get(type(req))
        if handler is None:
            raise SimulationError(f"unknown request {req!r} from {thread.tid}")
        return handler(self, thread, req)

    # ---------------------------------------------------------- requests

    def _jittered(self, duration: int) -> int:
        if not self._jitter or duration <= 0:
            return duration
        factor = 1.0 + self._jitter_rng.uniform(-self._jitter, self._jitter)
        return max(0, round(duration * factor))

    def _on_compute(self, thread: _Thread, req: rq.Compute):
        actual = self._jittered(req.duration)
        self.observer.on_compute(
            thread.tid, self.now, req.duration, req.site, req.uid,
            actual if actual != req.duration else None,
        )
        self.gate.on_progress(thread.tid, req.duration)
        self._request_recheck()
        return "continue", actual

    def _get_lock(self, name: str) -> _Lock:
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = _Lock(name)
        return lock

    def _on_acquire(self, thread: _Thread, req: rq.Acquire):
        lock = self._get_lock(req.lock)
        if lock.owner is thread or thread in lock.readers:
            raise SimulationError(
                f"thread {thread.tid} re-acquired non-recursive lock {req.lock}"
            )
        uid = req.uid or self._ids.next("a")
        req = rq.Acquire(
            lock=req.lock, spin=req.spin, shared=req.shared, site=req.site, uid=uid
        )
        if lock.admits(req.shared) and self.gate.may_acquire(thread.tid, req.lock, uid):
            self._grant(lock, thread, req, t_request=self.now, waited=0)
            return "continue", self.lock_cost
        # must wait: either contended or gate-vetoed
        thread.wait_req = req
        thread.wait_start = self.now
        thread.wait_is_spin = req.spin
        lock.waiters.append(thread)
        if lock.admits(req.shared):
            self._starved_locks.add(lock.name)
            self.observer.on_gate_stall(thread.tid, req.lock, self.now, uid)
        self._block(thread, f"lock:{req.lock}")
        return "block", 0

    def _grant(self, lock: _Lock, thread: _Thread, req: rq.Acquire, t_request, waited):
        if req.shared:
            lock.readers.add(thread)
            lock.reader_t[thread.tid] = self.now
        else:
            lock.owner = thread
            lock.t_acquired = self.now
        lock.stats.acquisitions += 1
        if waited > 0:
            lock.stats.contended_acquisitions += 1
            lock.stats.total_wait_ns += waited
        self.observer.on_acquired(
            thread.tid, lock.name, t_request, self.now, req.site, req.uid,
            req.spin, req.shared,
        )
        self.gate.on_acquired(thread.tid, lock.name, req.uid)
        self._request_recheck()

    def _try_grant(self, lock: _Lock) -> None:
        """Grant eligible parked waiters; shared holders admit in batches."""
        while lock.waiters:
            eligible = [
                w
                for w in lock.waiters
                if lock.admits(w.wait_req.shared)
                and self.gate.may_acquire(w.tid, lock.name, w.wait_req.uid)
            ]
            if not eligible:
                break
            winner = self.wake_policy.choose(lock.name, eligible)
            lock.waiters.remove(winner)
            waited = self.now - winner.wait_start
            if winner.wait_is_spin:
                winner.stats.spin_ns += waited
                winner.stats.cpu_ns += waited
            else:
                winner.stats.block_ns += waited
            self._grant(lock, winner, winner.wait_req, winner.wait_start, waited)
            winner.wait_req = None
            # preserve any wake value (e.g. a cond wait's signaled/timeout)
            self._make_ready(winner, send_value=winner.send_value, cost=self.lock_cost)
        if lock.waiters and any(
            lock.admits(w.wait_req.shared) for w in lock.waiters
        ):
            self._starved_locks.add(lock.name)
        else:
            self._starved_locks.discard(lock.name)

    def _on_release(self, thread: _Thread, req: rq.Release):
        lock = self._get_lock(req.lock)
        if lock.owner is not thread and thread not in lock.readers:
            raise SimulationError(
                f"thread {thread.tid} released lock {req.lock} it does not hold"
            )
        self._do_release(thread, lock, req.site, req.uid)
        return "continue", self.lock_cost

    def _do_release(self, thread: _Thread, lock: _Lock, site, uid) -> None:
        uid = uid or self._ids.next("r")
        if lock.owner is thread:
            lock.stats.total_hold_ns += self.now - lock.t_acquired
            lock.owner = None
        else:
            lock.readers.discard(thread)
            lock.stats.total_hold_ns += self.now - lock.reader_t.pop(thread.tid, self.now)
        self.observer.on_released(thread.tid, lock.name, self.now, site, uid)
        self.gate.on_released(thread.tid, lock.name, uid)
        self._try_grant(lock)
        self._request_recheck()

    def _on_read(self, thread: _Thread, req: rq.Read):
        uid = req.uid or self._ids.next("m")
        if not self.gate.may_access(thread.tid, req.addr, uid):
            self._gated_mem.append((thread, rq.Read(addr=req.addr, site=req.site, uid=uid)))
            thread.wait_start = self.now
            self._block(thread, f"mem:{req.addr}")
            return "block", 0
        value = self._perform_read(thread, req.addr, req.site, uid)
        thread.send_value = value
        return "continue", self.mem_cost

    def _perform_read(self, thread: _Thread, addr, site, uid) -> int:
        value = self.memory.read(addr)
        self.observer.on_read(thread.tid, addr, value, self.now, site, uid)
        self.gate.on_access(thread.tid, addr, uid)
        self.gate.on_progress(thread.tid, self.mem_cost)
        self._request_recheck()
        return value

    def _on_write(self, thread: _Thread, req: rq.Write):
        uid = req.uid or self._ids.next("m")
        if not self.gate.may_access(thread.tid, req.addr, uid):
            self._gated_mem.append(
                (thread, rq.Write(addr=req.addr, op=req.op, site=req.site, uid=uid))
            )
            thread.wait_start = self.now
            self._block(thread, f"mem:{req.addr}")
            return "block", 0
        value = self._perform_write(thread, req.addr, req.op, req.site, uid)
        thread.send_value = value
        return "continue", self.mem_cost

    def _perform_write(self, thread: _Thread, addr, op, site, uid) -> int:
        value = self.memory.write(addr, op)
        self.observer.on_write(thread.tid, addr, op, value, self.now, site, uid)
        self.gate.on_access(thread.tid, addr, uid)
        self.gate.on_progress(thread.tid, self.mem_cost)
        self._request_recheck()
        return value

    # ------------------------------------------------- condition variables

    def _on_cond_wait(self, thread: _Thread, req: rq.CondWait):
        lock = self._get_lock(req.lock)
        if lock.owner is not thread:
            raise SimulationError(
                f"thread {thread.tid} cond-waits on {req.cond} without holding {req.lock}"
            )
        self._do_release(thread, lock, req.site, None)
        # the release op costs like any unlock; the wait starts after it
        # (keeps recorded timing identical to the lowered replay, where the
        # RELEASE request is charged before the wait begins)
        thread.stats.cpu_ns += self.lock_cost
        self._schedule(self.lock_cost, self._enter_cond_wait, thread, req)
        self._block(thread, f"cond:{req.cond}")
        return "block", 0

    def _enter_cond_wait(self, thread: _Thread, req: rq.CondWait) -> None:
        wait_uid = req.uid or self._ids.next("w")
        self.observer.on_wait_start(
            thread.tid, "cond", req.cond, self.now, req.site, wait_uid
        )
        cancel = [False]
        entry = (thread, wait_uid, req.lock, req.site, cancel)
        self._conds.setdefault(req.cond, []).append(entry)
        thread.wait_start = self.now
        if req.timeout is not None:
            self._schedule(req.timeout, self._cond_timeout, req.cond, entry)

    def _cond_timeout(self, cond_name: str, entry) -> None:
        thread, wait_uid, lock_name, site, cancel = entry
        if cancel[0]:
            return
        cancel[0] = True
        self._conds[cond_name].remove(entry)
        self.observer.on_wait_end(
            thread.tid, "cond", None, "timeout", thread.wait_start, self.now, site, wait_uid
        )
        thread.send_value = "timeout"
        self._wake_into_lock(thread, lock_name, site)
        self._dispatch()

    def _wake_into_lock(self, thread: _Thread, lock_name: str, site) -> None:
        """After a cond wake, the thread re-contends for its mutex."""
        thread.stats.block_ns += self.now - thread.wait_start
        lock = self._get_lock(lock_name)
        req = rq.Acquire(lock=lock_name, site=site, uid=self._ids.next("a"))
        thread.wait_req = req
        thread.wait_start = self.now
        thread.wait_is_spin = False
        lock.waiters.append(thread)
        thread.blocked_reason = f"lock:{lock_name}"
        self._try_grant(lock)

    def _on_signal(self, thread: _Thread, req: rq.Signal, broadcast: bool = False):
        post_uid = req.uid or self._ids.next("p")
        waiters = self._conds.get(req.cond, [])
        to_wake = list(waiters) if broadcast else waiters[:1]
        # post first: the trace must record the POST before the waits it wakes
        self.observer.on_post(
            thread.tid, "cond", post_uid, [e[1] for e in to_wake],
            self.now, req.site, post_uid,
        )
        for entry in to_wake:
            waiter, wait_uid, lock_name, wsite, cancel = entry
            cancel[0] = True
            waiters.remove(entry)
            self.observer.on_wait_end(
                waiter.tid, "cond", post_uid, "posted",
                waiter.wait_start, self.now, wsite, wait_uid,
            )
            waiter.send_value = "signaled"
            self._wake_into_lock(waiter, lock_name, wsite)
        return "continue", 0

    def _on_broadcast(self, thread: _Thread, req: rq.Broadcast):
        return self._on_signal(
            thread, rq.Signal(cond=req.cond, site=req.site, uid=req.uid), broadcast=True
        )

    # ----------------------------------------------------------- semaphores

    def _on_sem_acquire(self, thread: _Thread, req: rq.SemAcquire):
        sem = self._sems.setdefault(req.sem, _Sem(req.sem))
        wait_uid = req.uid or self._ids.next("w")
        if sem.credits:
            token = sem.credits.pop(0)
            self.observer.on_wait_start(thread.tid, "sem", req.sem, self.now, req.site, wait_uid)
            self.observer.on_wait_end(
                thread.tid, "sem", token, "posted", self.now, self.now, req.site, wait_uid
            )
            if self.lock_cost:
                # the P()'s own cost must be a trace event so the lowered
                # replay charges it too
                self.observer.on_compute(thread.tid, self.now, self.lock_cost, req.site, None)
            return "continue", self.lock_cost
        if sem.init_count > 0:
            sem.init_count -= 1
            if self.lock_cost:
                self.observer.on_compute(thread.tid, self.now, self.lock_cost, req.site, None)
            return "continue", self.lock_cost
        sem.waiters.append((thread, wait_uid, req.site))
        self.observer.on_wait_start(thread.tid, "sem", req.sem, self.now, req.site, wait_uid)
        thread.wait_start = self.now
        self._block(thread, f"sem:{req.sem}")
        return "block", 0

    def _on_sem_release(self, thread: _Thread, req: rq.SemRelease):
        sem = self._sems.setdefault(req.sem, _Sem(req.sem))
        post_uid = req.uid or self._ids.next("p")
        if sem.waiters:
            waiter, wait_uid, wsite = sem.waiters.pop(0)
            self.observer.on_post(
                thread.tid, "sem", post_uid, [wait_uid], self.now, req.site, post_uid
            )
            self.observer.on_wait_end(
                waiter.tid, "sem", post_uid, "posted",
                waiter.wait_start, self.now, wsite, wait_uid,
            )
            waiter.stats.block_ns += self.now - waiter.wait_start
            if self.lock_cost:
                # the wake-side semaphore bookkeeping must appear in the
                # trace so the lowered replay charges the same cost
                self.observer.on_compute(
                    waiter.tid, self.now, self.lock_cost, wsite, None
                )
            self._make_ready(waiter, send_value=None, cost=self.lock_cost)
        else:
            sem.credits.append(post_uid)
            self.observer.on_post(
                thread.tid, "sem", post_uid, [], self.now, req.site, post_uid
            )
        if self.lock_cost:
            # the V()'s own cost, as a trace event (replay parity)
            self.observer.on_compute(thread.tid, self.now, self.lock_cost, req.site, None)
        return "continue", self.lock_cost

    # ------------------------------------------------------------- barriers

    def _on_barrier(self, thread: _Thread, req: rq.BarrierWait):
        waiters = self._barriers.setdefault(req.barrier, [])
        wait_uid = req.uid or self._ids.next("w")
        if len(waiters) + 1 >= req.parties:
            post_uid = self._ids.next("p")
            self.observer.on_post(
                thread.tid, "barrier", post_uid, [w[1] for w in waiters],
                self.now, req.site, post_uid,
            )
            for waiter, wuid, wsite in waiters:
                self.observer.on_wait_end(
                    waiter.tid, "barrier", post_uid, "posted",
                    waiter.wait_start, self.now, wsite, wuid,
                )
                waiter.stats.block_ns += self.now - waiter.wait_start
                self._make_ready(waiter, send_value=None, cost=0)
            waiters.clear()
            self._barrier_round[req.barrier] = self._barrier_round.get(req.barrier, 0) + 1
            return "continue", 0
        waiters.append((thread, wait_uid, req.site))
        self.observer.on_wait_start(
            thread.tid, "barrier", req.barrier, self.now, req.site, wait_uid
        )
        thread.wait_start = self.now
        self._block(thread, f"barrier:{req.barrier}")
        return "block", 0

    # ------------------------------------------------------------ sleep/flags

    def _on_sleep(self, thread: _Thread, req: rq.Sleep):
        self.observer.on_sleep(thread.tid, req.duration, self.now, req.site, req.uid)
        thread.stats.block_ns += req.duration
        self._schedule(req.duration, self._sleep_wake, thread)
        self._block(thread, "sleep")
        return "block", 0

    def _on_opaque(self, thread: _Thread, req: rq.Opaque):
        uid = req.uid or self._ids.next("o")
        self.observer.on_opaque(
            thread.tid, req.duration, dict(req.changes), self.now, req.site, uid
        )
        thread.stats.block_ns += req.duration
        self._schedule(req.duration, self._opaque_wake, thread, req.changes)
        self._block(thread, "opaque")
        return "block", 0

    def _opaque_wake(self, thread: _Thread, changes) -> None:
        # the bypassed range's net memory effect lands silently (no events)
        from repro.sim.requests import Store

        for addr, value in changes.items():
            self.memory.write(addr, Store(value))
        self._make_ready(thread, send_value=None, cost=0)
        self._dispatch()

    def _sleep_wake(self, thread: _Thread) -> None:
        self._make_ready(thread, send_value=None, cost=0)
        self._dispatch()

    def _on_await_flag(self, thread: _Thread, req: rq.AwaitFlag):
        wait_uid = req.uid or self._ids.next("w")
        state = self._flags.get(req.flag)
        if state is not None and state[0]:
            self.observer.on_wait_start(
                thread.tid, "flag", req.flag, self.now, req.site, wait_uid
            )
            self.observer.on_wait_end(
                thread.tid, "flag", state[1], "posted", self.now, self.now, req.site, wait_uid
            )
            return "continue", 0
        self._flag_waiters.setdefault(req.flag, []).append((thread, wait_uid, req.site))
        self.observer.on_wait_start(thread.tid, "flag", req.flag, self.now, req.site, wait_uid)
        thread.wait_start = self.now
        self._block(thread, f"flag:{req.flag}")
        return "block", 0

    def _on_check_flag(self, thread: _Thread, req: rq.CheckFlag):
        state = self._flags.get(req.flag)
        thread.send_value = bool(state and state[0])
        return "continue", 0

    def _on_set_flag(self, thread: _Thread, req: rq.SetFlag):
        post_uid = req.uid or self._ids.next("p")
        self._flags[req.flag] = (True, post_uid)
        waiters = self._flag_waiters.pop(req.flag, [])
        self.observer.on_post(
            thread.tid, "flag", post_uid, [w[1] for w in waiters],
            self.now, req.site, post_uid,
        )
        for waiter, wait_uid, wsite in waiters:
            self.observer.on_wait_end(
                waiter.tid, "flag", post_uid, "posted",
                waiter.wait_start, self.now, wsite, wait_uid,
            )
            waiter.stats.block_ns += self.now - waiter.wait_start
            self._make_ready(waiter, send_value=None, cost=0)
        return "continue", 0

    # ----------------------------------------------------------- gate hooks

    def gate_eligible_tids(self) -> List[str]:
        """Threads whose progress currently depends only on the gate.

        Used by deterministic schedulers (Kendo-style gates): a thread
        blocked on a *held* lock or asleep cannot acquire anything, so it
        must not stall the logical-clock minimum.  Gate-parked threads
        (vetoed on a free lock, or a gated memory access) stay eligible —
        they are exactly the ones the gate must eventually admit.
        """
        gated_mem_tids = {thread.tid for thread, _ in self._gated_mem}
        eligible = []
        for tid, thread in self._threads.items():
            if thread.state == _DONE:
                continue
            if thread.state == _BLOCKED:
                if tid in gated_mem_tids:
                    eligible.append(tid)
                    continue
                reason = thread.blocked_reason
                if reason.startswith("lock:"):
                    lock = self._locks.get(reason[5:])
                    if (
                        lock is not None
                        and thread.wait_req is not None
                        and lock.admits(thread.wait_req.shared)
                    ):
                        eligible.append(tid)
                continue
            eligible.append(tid)
        return eligible

    def _request_recheck(self) -> None:
        """Re-examine gate-parked threads after any gate-relevant change."""
        if self._recheck_scheduled:
            return
        if not self._gated_mem and not self._starved_locks:
            return
        self._recheck_scheduled = True
        self._schedule(0, self._recheck)

    def _recheck(self) -> None:
        self._recheck_scheduled = False
        # gate-parked memory accesses
        still_parked = []
        for thread, req in self._gated_mem:
            if not self.gate.may_access(thread.tid, req.addr, req.uid):
                still_parked.append((thread, req))
                continue
            thread.stats.block_ns += self.now - thread.wait_start
            self.observer.on_mem_stall(
                thread.tid, req.addr, thread.wait_start, self.now, req.uid
            )
            if isinstance(req, rq.Read):
                value = self._perform_read(thread, req.addr, req.site, req.uid)
            else:
                value = self._perform_write(thread, req.addr, req.op, req.site, req.uid)
            self._make_ready(thread, send_value=value, cost=self.mem_cost)
        self._gated_mem = still_parked
        # gate-parked lock waiters (lock free but a gate said no earlier)
        for name in list(self._starved_locks):
            self._try_grant(self._locks[name])
        self._dispatch()

    # ------------------------------------------------------------ dispatch map

    _HANDLERS = {
        rq.Compute: _on_compute,
        rq.Acquire: _on_acquire,
        rq.Release: _on_release,
        rq.Read: _on_read,
        rq.Write: _on_write,
        rq.CondWait: _on_cond_wait,
        rq.Signal: _on_signal,
        rq.Broadcast: _on_broadcast,
        rq.SemAcquire: _on_sem_acquire,
        rq.SemRelease: _on_sem_release,
        rq.BarrierWait: _on_barrier,
        rq.Sleep: _on_sleep,
        rq.Opaque: _on_opaque,
        rq.AwaitFlag: _on_await_flag,
        rq.SetFlag: _on_set_flag,
        rq.CheckFlag: _on_check_flag,
    }
