"""Enforcement gates: the mechanism behind replay schemes.

A gate can veto lock acquisitions and shared-memory accesses until the
enforced order allows them.  The replay schemes of the paper (ELSC-S,
SYNC-S/Kendo, MEM-S) are implemented as gates in :mod:`repro.replay`;
the simulator only knows this small protocol.

Gate callbacks may change gate state; the machine re-checks parked
threads after every ``on_*`` notification.
"""

from __future__ import annotations


class Gate:
    """Base gate: everything is allowed (equivalent to no gate)."""

    def attach(self, machine) -> None:
        """Called once by the machine before the run starts."""
        self.machine = machine

    def may_acquire(self, tid: str, lock: str, uid: str) -> bool:
        """May ``tid`` acquire ``lock`` for the acquisition event ``uid``?"""
        return True

    def on_acquired(self, tid: str, lock: str, uid: str) -> None:
        pass

    def on_released(self, tid: str, lock: str, uid: str) -> None:
        pass

    def may_access(self, tid: str, addr: str, uid: str) -> bool:
        """May ``tid`` perform the shared-memory access event ``uid``?"""
        return True

    def on_access(self, tid: str, addr: str, uid: str) -> None:
        pass

    def on_progress(self, tid: str, amount: int) -> None:
        """Called when a thread makes ``amount`` ns of deterministic progress."""

    def on_thread_end(self, tid: str) -> None:
        pass
