"""Per-thread and per-lock accounting collected during a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ThreadStats:
    """CPU/wait accounting for one simulated thread."""

    tid: str
    name: str = ""
    start_time: int = 0
    end_time: int = 0
    #: Time spent computing (includes lock/memory op costs and spin waits).
    cpu_ns: int = 0
    #: Portion of ``cpu_ns`` burned spinning on busy locks (pure waste).
    spin_ns: int = 0
    #: Time spent blocked (mutex waits, cond waits, sleeps, gates).
    block_ns: int = 0

    @property
    def lifetime_ns(self) -> int:
        return self.end_time - self.start_time


@dataclass
class LockStats:
    """Contention accounting for one lock."""

    lock: str
    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_ns: int = 0
    total_hold_ns: int = 0


@dataclass
class MachineResult:
    """Outcome of one :meth:`Machine.run` call."""

    end_time: int
    threads: Dict[str, ThreadStats] = field(default_factory=dict)
    locks: Dict[str, LockStats] = field(default_factory=dict)

    @property
    def total_cpu_ns(self) -> int:
        return sum(t.cpu_ns for t in self.threads.values())

    @property
    def total_spin_ns(self) -> int:
        return sum(t.spin_ns for t in self.threads.values())

    @property
    def total_block_ns(self) -> int:
        return sum(t.block_ns for t in self.threads.values())

    def cpu_waste_per_thread(self) -> float:
        """Average pure-waste CPU time per thread (spin waits)."""
        if not self.threads:
            return 0.0
        return self.total_spin_ns / len(self.threads)
