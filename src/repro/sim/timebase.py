"""Simulated time base and default cost constants.

All simulated time is integer nanoseconds.  The constants below are the
default micro-costs of synchronization and memory operations; they are
machine parameters and can be overridden per :class:`repro.sim.Machine`.
"""

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

#: Cost charged to a thread for a lock acquire or release operation
#: (an uncontended futex op is a few tens of ns).
DEFAULT_LOCK_COST = 20

#: Cost charged to a thread for one shared-memory read or write.
DEFAULT_MEM_COST = 10


def format_ns(ns: int) -> str:
    """Render a nanosecond count in a human-friendly unit."""
    if ns >= SECOND:
        return f"{ns / SECOND:.3f}s"
    if ns >= MILLISECOND:
        return f"{ns / MILLISECOND:.3f}ms"
    if ns >= MICROSECOND:
        return f"{ns / MICROSECOND:.3f}us"
    return f"{ns}ns"
