"""Observer protocol: how recorders watch a running machine.

The machine invokes the observer synchronously at each simulated event.
:class:`NullObserver` provides no-op defaults so observers only override
what they need (the trace recorder overrides nearly everything).

Wake pairings (``woken`` arguments) matter: the recorder lowers high-level
synchronization (condvars, semaphores, barriers, flags) into primitive
*wait(token)* / *post(token)* trace events, and needs to know exactly which
waiter each signal/release/last-arrival woke so the replay reproduces the
original pairing.
"""

from __future__ import annotations


class NullObserver:
    """Base observer; every callback is a no-op."""

    def on_thread_start(self, tid, name, t):
        pass

    def on_thread_end(self, tid, t):
        pass

    def on_compute(self, tid, t_start, duration, site, uid, actual=None):
        """``duration`` is the nominal cost; ``actual`` the jittered cost
        the machine charged (None means identical — no jitter)."""

    def on_acquired(self, tid, lock, t_request, t_acquired, site, uid, spin,
                    shared=False):
        pass

    def on_released(self, tid, lock, t, site, uid):
        pass

    def on_read(self, tid, addr, value, t, site, uid):
        pass

    def on_write(self, tid, addr, op, value_after, t, site, uid):
        pass

    def on_wait_start(self, tid, kind, token, t, site, uid):
        """A thread started waiting (cond/sem/barrier/flag), kind names it."""

    def on_wait_end(self, tid, kind, token, reason, t_start, t_end, site, uid):
        """The wait ended; ``reason`` is 'posted' or 'timeout'."""

    def on_post(self, tid, kind, token, woken, t, site, uid):
        """A thread posted a token, waking the wait-uids in ``woken``."""

    def on_sleep(self, tid, duration, t, site, uid):
        pass

    def on_opaque(self, tid, duration, changes, t, site, uid):
        """A bypassed range: ``changes`` is its net memory delta."""

    def on_gate_stall(self, tid, lock, t, uid):
        """A replay gate vetoed a *free* lock to preserve recorded order.

        Fires once per veto episode (when the thread parks on a lock that
        admits it but the gate refuses); the stall's extent shows up in
        the eventual :meth:`on_acquired` ``t_request`` → ``t_acquired``
        span."""

    def on_mem_stall(self, tid, addr, t_start, t_end, uid):
        """A deterministic-memory gate parked an access for
        ``t_start`` → ``t_end`` before letting it perform."""
