"""Lock wake policies: who gets a contended lock next.

The machine consults the policy whenever a lock is free and has eligible
waiters.  ``FifoPolicy`` is deterministic; ``RandomPolicy`` models the
OS-scheduler nondeterminism that makes un-enforced replays (ORIG-S)
fluctuate run to run.
"""

from __future__ import annotations

import random
from typing import List, Sequence


class WakePolicy:
    """Strategy interface for picking the next lock owner."""

    def choose(self, lock: str, waiters: Sequence) -> object:
        """Return one element of non-empty ``waiters``."""
        raise NotImplementedError


class FifoPolicy(WakePolicy):
    """Grant the lock in arrival order."""

    def choose(self, lock: str, waiters: Sequence):
        return waiters[0]


class RandomPolicy(WakePolicy):
    """Grant the lock to a uniformly random eligible waiter."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def choose(self, lock: str, waiters: Sequence):
        return waiters[self._rng.randrange(len(waiters))]


class LifoPolicy(WakePolicy):
    """Grant the lock to the most recent arrival (unfair; for ablations)."""

    def choose(self, lock: str, waiters: Sequence):
        return waiters[-1]
