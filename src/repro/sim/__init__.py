"""Discrete-event multicore simulator: the execution substrate.

The public surface is :class:`Machine` plus the request vocabulary from
:mod:`repro.sim.requests`.  Thread programs are generators that yield
requests; see the package README for a quickstart.
"""

from repro.sim.gates import Gate
from repro.sim.machine import Machine
from repro.sim.memory import SharedMemory
from repro.sim.observer import NullObserver
from repro.sim.policies import FifoPolicy, LifoPolicy, RandomPolicy, WakePolicy
from repro.sim.requests import (
    Acquire,
    CheckFlag,
    Add,
    Opaque,
    AwaitFlag,
    BarrierWait,
    Broadcast,
    Compute,
    CondWait,
    Read,
    Release,
    Request,
    SemAcquire,
    SemRelease,
    SetFlag,
    Signal,
    Sleep,
    Store,
    Write,
    decode_op,
)
from repro.sim.stats import LockStats, MachineResult, ThreadStats
from repro.sim.timebase import (
    DEFAULT_LOCK_COST,
    DEFAULT_MEM_COST,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_ns,
)

__all__ = [
    "Machine",
    "Gate",
    "SharedMemory",
    "NullObserver",
    "WakePolicy",
    "FifoPolicy",
    "RandomPolicy",
    "LifoPolicy",
    "Request",
    "Compute",
    "Acquire",
    "Release",
    "Read",
    "Write",
    "Store",
    "Add",
    "decode_op",
    "CondWait",
    "Signal",
    "Broadcast",
    "SemAcquire",
    "SemRelease",
    "BarrierWait",
    "Sleep",
    "Opaque",
    "AwaitFlag",
    "SetFlag",
    "CheckFlag",
    "MachineResult",
    "ThreadStats",
    "LockStats",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "DEFAULT_LOCK_COST",
    "DEFAULT_MEM_COST",
    "format_ns",
]
