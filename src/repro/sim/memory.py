"""Shared-memory model.

Addresses are string labels (``"fifo.empty"``, ``"hash[7]"``).  Every cell
holds an integer, defaulting to 0.  Writes are micro-ops (:class:`Store` or
:class:`Add` from :mod:`repro.sim.requests`) so that the reversed-replay
benign classifier can re-execute them in either order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class SharedMemory:
    """A flat map of integer cells with op-based writes."""

    def __init__(self, initial: Dict[str, int] = None):
        self._cells: Dict[str, int] = dict(initial or {})

    def read(self, addr: str) -> int:
        return self._cells.get(addr, 0)

    def write(self, addr: str, op) -> int:
        """Apply ``op`` to ``addr`` and return the new value."""
        new = op.apply(self._cells.get(addr, 0))
        self._cells[addr] = new
        return new

    def snapshot(self) -> Dict[str, int]:
        """A copy of all touched cells (for checkpoints/state deltas)."""
        return dict(self._cells)

    def restore(self, snapshot: Dict[str, int]) -> None:
        """Replace contents with a snapshot (selective-recording restore)."""
        self._cells = dict(snapshot)

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._cells.items()

    def __contains__(self, addr: str) -> bool:
        return addr in self._cells

    def __len__(self) -> int:
        return len(self._cells)
