"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event machine reached an invalid state."""


class DeadlockError(SimulationError):
    """No thread can make progress but some threads are not finished."""

    def __init__(self, blocked_threads, now):
        self.blocked_threads = list(blocked_threads)
        self.now = now
        names = ", ".join(str(t) for t in self.blocked_threads)
        super().__init__(f"deadlock at t={now}: blocked threads [{names}]")


class TraceError(ReproError):
    """A trace is malformed or violates well-formedness invariants."""


class TransformError(ReproError):
    """ULCP transformation could not be applied to a trace."""


class ReplayError(ReproError):
    """A replay diverged from the trace or its enforcement scheme."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""
