"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event machine reached an invalid state."""


class DeadlockError(SimulationError):
    """No thread can make progress but some threads are not finished."""

    def __init__(self, blocked_threads, now):
        self.blocked_threads = list(blocked_threads)
        self.now = now
        names = ", ".join(str(t) for t in self.blocked_threads)
        super().__init__(f"deadlock at t={now}: blocked threads [{names}]")


class TraceError(ReproError):
    """A trace is malformed or violates well-formedness invariants."""


class TransformError(ReproError):
    """ULCP transformation could not be applied to a trace."""


class ReplayError(ReproError):
    """A replay diverged from the trace or its enforcement scheme."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class FaultInjected(ReproError):
    """A deterministic fault-injection site fired (``repro.faults``)."""

    def __init__(self, site, key=None, note=""):
        self.site = site
        self.key = key
        message = f"injected fault at {site}"
        if key is not None:
            message += f" (key={key!r})"
        if note:
            message += f": {note}"
        super().__init__(message)


class RunInterrupted(ReproError):
    """The operator interrupted a supervised run (SIGINT / Ctrl-C).

    Raised instead of letting ``KeyboardInterrupt`` unwind with a raw
    traceback, after workers are terminated and the journal and
    telemetry are flushed.  The CLI maps it to exit code 130.
    """

    def __init__(self, message="run interrupted", run_id=None):
        self.run_id = run_id
        if run_id:
            message += f" (resume with: repro resume {run_id})"
        super().__init__(message)


class TaskError(ReproError):
    """A supervised task failed; carries the task index and repr.

    The supervised executor (``repro.runner.pool``) attaches the full
    :class:`~repro.runner.pool.TaskFailure` record as ``.failure``.
    """

    failure = None


class TaskTimeoutError(TaskError):
    """A task exceeded its per-attempt timeout and was terminated."""


class TaskCrashError(TaskError):
    """A worker process died (non-zero exit) while running a task."""


class BudgetExceededError(TaskError):
    """A :class:`~repro.runner.budget.RunBudget` limit stopped the run."""


class SalvageWarning(ReproError, Warning):
    """A trace was loaded in salvage mode and some content was dropped."""
