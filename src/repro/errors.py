"""Exception hierarchy for the repro package.

Every :class:`ReproError` subclass carries a stable, machine-readable
``code`` string.  Codes are part of the wire contract: the v1 error
envelope (:mod:`repro.serve.protocol`) and the CLI's one-line error
rendering (``error: [<code>] <message>``) both use them, so they must
never change meaning once released.  New subclasses must assign a new
code; reusing a code for a different failure class is a breaking change.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    #: stable machine-readable identifier, overridden by every subclass
    code = "repro.error"


class SimulationError(ReproError):
    """The discrete-event machine reached an invalid state."""

    code = "sim.invalid"


class DeadlockError(SimulationError):
    """No thread can make progress but some threads are not finished."""

    code = "sim.deadlock"

    def __init__(self, blocked_threads, now):
        self.blocked_threads = list(blocked_threads)
        self.now = now
        names = ", ".join(str(t) for t in self.blocked_threads)
        super().__init__(f"deadlock at t={now}: blocked threads [{names}]")


class TraceError(ReproError):
    """A trace is malformed or violates well-formedness invariants."""

    code = "trace.invalid"


class TransformError(ReproError):
    """ULCP transformation could not be applied to a trace."""

    code = "transform.failed"


class ReplayError(ReproError):
    """A replay diverged from the trace or its enforcement scheme."""

    code = "replay.diverged"


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""

    code = "workload.invalid"


class OptionsError(ReproError, ValueError):
    """An options object (or its wire/kwargs form) is invalid.

    Also a :class:`ValueError`: the pre-redesign facade rejected bad
    values (e.g. an unknown replay scheme) with ``ValueError``, and the
    typed options objects keep that contract.
    """

    code = "options.invalid"


class FaultInjected(ReproError):
    """A deterministic fault-injection site fired (``repro.faults``)."""

    code = "fault.injected"

    def __init__(self, site, key=None, note=""):
        self.site = site
        self.key = key
        message = f"injected fault at {site}"
        if key is not None:
            message += f" (key={key!r})"
        if note:
            message += f": {note}"
        super().__init__(message)


class RunInterrupted(ReproError):
    """The operator interrupted a supervised run (SIGINT / Ctrl-C).

    Raised instead of letting ``KeyboardInterrupt`` unwind with a raw
    traceback, after workers are terminated and the journal and
    telemetry are flushed.  The CLI maps it to exit code 130.
    """

    code = "run.interrupted"

    def __init__(self, message="run interrupted", run_id=None):
        self.run_id = run_id
        if run_id:
            message += f" (resume with: repro resume {run_id})"
        super().__init__(message)


class TaskError(ReproError):
    """A supervised task failed; carries the task index and repr.

    The supervised executor (``repro.runner.pool``) attaches the full
    :class:`~repro.runner.pool.TaskFailure` record as ``.failure``.
    """

    code = "task.failed"
    failure = None


class TaskTimeoutError(TaskError):
    """A task exceeded its per-attempt timeout and was terminated."""

    code = "task.timeout"


class TaskCrashError(TaskError):
    """A worker process died (non-zero exit) while running a task."""

    code = "task.crash"


class BudgetExceededError(TaskError):
    """A :class:`~repro.runner.budget.RunBudget` limit stopped the run."""

    code = "budget.exceeded"


class RequestError(ReproError):
    """A service request is malformed (bad route, body, or options).

    Raised by :mod:`repro.serve`; maps to HTTP 400 unless a subclass
    narrows it.
    """

    code = "request.invalid"


class NotFoundError(RequestError):
    """The requested resource (route, job id) does not exist (HTTP 404)."""

    code = "request.not_found"


class PayloadTooLarge(RequestError):
    """The uploaded request body exceeds the server's limit (HTTP 413)."""

    code = "request.too_large"


class SalvageWarning(ReproError, Warning):
    """A trace was loaded in salvage mode and some content was dropped."""

    code = "trace.salvaged"
