"""Experiment modules: one per table/figure of the paper's evaluation.

=============  ==========================================================
``table1``     ULCP breakdown per application (2 threads)
``figure2``    #ULCPs vs thread count (openldap/pbzip2/bodytrack)
``figure13``   replay fidelity of MEM-S / SYNC-S / ELSC-S / ORIG-S
``figure14``   normalized exec time with/without ULCPs (all 16 apps)
``table2``     fused ULCP groups + best region's P
``table3``     lockset overhead w/o vs w/ dynamic locking
``figure15``   impact vs thread count (canneal/bodytrack/fluidanimate)
``figure16``   impact vs input size (same apps)
``figure19``   BUG 1 / BUG 2 sensitivity, original vs fixed
``ablations``  design-choice ablations (ELSC, RULE 2, benign, elision)
=============  ==========================================================

Run any module directly: ``python -m repro.experiments.table1``.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    contention_sweep,
    figure2,
    figure13,
    stability,
    figure14,
    figure15,
    figure16,
    figure19,
    table1,
    table2,
    table3,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "figure2": figure2,
    "figure13": figure13,
    "figure14": figure14,
    "table2": table2,
    "table3": table3,
    "figure15": figure15,
    "figure16": figure16,
    "figure19": figure19,
    "ablations": ablations,
    "contention_sweep": contention_sweep,
    "stability": stability,
}

__all__ = ["ALL_EXPERIMENTS"]
