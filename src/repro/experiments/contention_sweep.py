"""Extra experiment: ULCP cost as a function of lock utilization.

Not a paper figure — a characterization of the substrate: sweeping the
critical-section duty cycle of a pure read-read workload shows how the
removable serialization grows with contention.  Used to sanity-check the
calibration of the application models (their Figure 14 numbers must sit
on this curve at their measured utilizations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.experiments.runner import fan_out, format_table, pct, render_failures
from repro.perfdebug.framework import PerfPlay
from repro.runner import ExecPolicy, TaskFailure, memoized
from repro.workloads.synthetic import TunableContention


@dataclass
class SweepPoint:
    utilization: float
    degradation: float
    pairs: int
    contention_rate: float


@dataclass
class ContentionSweepResult:
    points: List[SweepPoint] = field(default_factory=list)
    failures: List[TaskFailure] = field(default_factory=list)

    def rows(self) -> List[List]:
        return [
            [f"{p.utilization:.2f}", pct(p.degradation), p.pairs,
             pct(p.contention_rate)]
            for p in self.points
        ]

    def render(self) -> str:
        return format_table(
            ["utilization", "degradation", "pairs", "contended"],
            self.rows(),
            title="Contention sweep: removable ULCP cost vs lock duty cycle",
        )

    def is_monotone(self) -> bool:
        degradations = [
            p.degradation for p in self.points if p.degradation is not None
        ]
        return all(b >= a - 0.01 for a, b in zip(degradations, degradations[1:]))


def _cell(task) -> SweepPoint:
    utilization, threads, rounds, seed = task

    def compute() -> SweepPoint:
        workload = TunableContention(
            utilization=utilization, rounds=rounds, threads=threads, seed=seed
        )
        recorded = workload.record()
        report = PerfPlay().analyze(recorded.trace, seed=seed)
        hot = recorded.machine_result.locks.get("hot")
        contention = (
            hot.contended_acquisitions / hot.acquisitions if hot else 0.0
        )
        return SweepPoint(
            utilization=utilization,
            degradation=report.normalized_degradation,
            pairs=report.breakdown.total_ulcps,
            contention_rate=contention,
        )

    params = {
        "utilization": utilization, "threads": threads, "rounds": rounds,
        "seed": seed,
    }
    return memoized("contention_sweep.cell", params, compute)


def run(
    *,
    utilizations: Sequence[float] = (0.1, 0.2, 0.35, 0.5, 0.65, 0.8),
    threads: int = 2,
    rounds: int = 25,
    seed: int = 0,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> ContentionSweepResult:
    tasks = [(u, threads, rounds, seed) for u in utilizations]
    result = ContentionSweepResult()
    for task, point in zip(tasks, fan_out(_cell, tasks, jobs=jobs, policy=policy)):
        if isinstance(point, TaskFailure):
            result.failures.append(point)
            point = SweepPoint(utilization=task[0], degradation=None,
                               pairs=None, contention_rate=None)
        result.points.append(point)
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
