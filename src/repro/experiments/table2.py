"""Table 2 — Grouped ULCP code regions and the best region's share.

After Algorithm 2 fusion, each app's ULCPs collapse into a handful of
unique code-region groups; ULCP1.P (Eq. 2) is the share of the total
optimization opportunity held by the most beneficial group.  The paper's
shape: apps with few groups concentrate the benefit (pbzip2's best
region holds ~59%), apps with many groups dilute it (mysql ~12%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.runner import (
    debug_app,
    fan_out,
    format_table,
    percent,
    render_failures,
)
from repro.runner import ExecPolicy, TaskFailure, memoized

#: the apps Table 2 lists
APPS = (
    "openldap",
    "mysql",
    "pbzip2",
    "transmissionBT",
    "handbrake",
    "blackscholes",
    "bodytrack",
    "facesim",
    "fluidanimate",
    "swaptions",
)


@dataclass
class Table2Row:
    app: str
    grouped_ulcps: int
    top_p: float


@dataclass
class Table2Result:
    rows_by_app: Dict[str, Table2Row] = field(default_factory=dict)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [
                r.app,
                r.grouped_ulcps,
                None
                if r.grouped_ulcps is None
                else (percent(r.top_p) if r.grouped_ulcps else "0"),
            ]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            ["app", "#grouped ULCPs", "ULCP1.P"],
            self.rows(),
            title="Table 2: fused ULCP groups and best region's share",
        )


def _cell(task) -> Table2Row:
    app, threads, scale, seed = task

    def compute() -> Table2Row:
        report = debug_app(app, threads=threads, scale=scale, seed=seed).report
        top = report.most_beneficial
        return Table2Row(
            app=app,
            grouped_ulcps=len(report.recommendations),
            top_p=top.p if top else 0.0,
        )

    params = {"app": app, "threads": threads, "scale": scale, "seed": seed}
    return memoized("table2.cell", params, compute)


def run(
    *, threads: int = 2, scale: float = 1.0, seed: int = 0, jobs: int = 1,
    policy: ExecPolicy = None,
) -> Table2Result:
    tasks = [(app, threads, scale, seed) for app in APPS]
    result = Table2Result()
    for task, row in zip(tasks, fan_out(_cell, tasks, jobs=jobs, policy=policy)):
        if isinstance(row, TaskFailure):
            result.failures[task[0]] = row
            row = Table2Row(app=task[0], grouped_ulcps=None, top_p=None)
        result.rows_by_app[row.app] = row
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
