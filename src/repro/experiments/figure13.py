"""Figure 13 — Performance fidelity of the four replay schemes.

Each PARSEC trace is replayed ten times under MEM-S, SYNC-S, ELSC-S and
ORIG-S.  The paper's claims, all checked here:

* MEM-S and SYNC-S are deterministic (small error bars) but *slow* —
  both add enforcement cost over the original execution;
* ORIG-S matches the original time on average but fluctuates run to run
  (large error bars);
* ELSC-S is both stable *and* matches ORIG-S's mean: fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import format_table
from repro.replay import ALL_SCHEMES, Replayer
from repro.runner import memoized, parallel_map, record_cached
from repro.util.stats import Summary
from repro.workloads import workload_names

#: replay noise: deterministic schemes must stay stable despite it
DEFAULT_JITTER = 0.02


@dataclass
class Figure13Result:
    #: app -> scheme -> Summary over replays
    series: Dict[str, Dict[str, Summary]] = field(default_factory=dict)

    def rows(self) -> List[List]:
        rows = []
        for app, by_scheme in self.series.items():
            row = [app]
            for scheme in ALL_SCHEMES:
                summary = by_scheme[scheme]
                row.append(
                    f"{summary.mean / 1e6:.2f}ms±{summary.stdev / 1e3:.1f}us"
                )
            rows.append(row)
        return rows

    def render(self) -> str:
        return format_table(
            ["app"] + list(ALL_SCHEMES),
            self.rows(),
            title="Figure 13: replay time mean±stdev per scheme (10 replays)",
        )

    def stability(self, app: str, scheme: str) -> float:
        return self.series[app][scheme].cv


def _cell(task) -> Dict[str, Summary]:
    """All four schemes' replay summaries for one app."""
    app, threads, input_size, scale, seed, replays, jitter = task

    def compute() -> Dict[str, Summary]:
        recorded = record_cached(
            app, threads=threads, input_size=input_size, scale=scale, seed=seed
        )
        replayer = Replayer(jitter=jitter)
        by_scheme: Dict[str, Summary] = {}
        for scheme in ALL_SCHEMES:
            series = replayer.replay_many(
                recorded.trace, scheme=scheme, runs=replays, base_seed=seed
            )
            by_scheme[scheme] = series.summary()
        return by_scheme

    params = {
        "app": app, "threads": threads, "input_size": input_size,
        "scale": scale, "seed": seed, "replays": replays, "jitter": jitter,
    }
    return memoized("figure13.cell", params, compute)


def run(
    *,
    apps: Sequence[str] = None,
    threads: int = 4,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    replays: int = 10,
    jitter: float = DEFAULT_JITTER,
    jobs: int = 1,
) -> Figure13Result:
    if apps is None:
        apps = workload_names(category="parsec")
    tasks = [
        (app, threads, input_size, scale, seed, replays, jitter) for app in apps
    ]
    summaries = parallel_map(_cell, tasks, jobs=jobs)
    result = Figure13Result()
    for app, by_scheme in zip(apps, summaries):
        result.series[app] = by_scheme
    return result


def main(*, jobs: int = 1):
    print(run(jobs=jobs).render())


if __name__ == "__main__":
    main()
