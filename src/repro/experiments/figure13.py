"""Figure 13 — Performance fidelity of the four replay schemes.

Each PARSEC trace is replayed ten times under MEM-S, SYNC-S, ELSC-S and
ORIG-S.  The paper's claims, all checked here:

* MEM-S and SYNC-S are deterministic (small error bars) but *slow* —
  both add enforcement cost over the original execution;
* ORIG-S matches the original time on average but fluctuates run to run
  (large error bars);
* ELSC-S is both stable *and* matches ORIG-S's mean: fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import fan_out, format_table, render_failures
from repro.replay import ALL_SCHEMES, Replayer
from repro.runner import ExecPolicy, TaskFailure, memoized, record_cached
from repro.util.stats import Summary
from repro.workloads import workload_names

#: replay noise: deterministic schemes must stay stable despite it
DEFAULT_JITTER = 0.02


@dataclass
class Figure13Result:
    #: app -> scheme -> Summary over replays (None if the cell failed)
    series: Dict[str, Dict[str, Summary]] = field(default_factory=dict)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def rows(self) -> List[List]:
        rows = []
        for app, by_scheme in self.series.items():
            row = [app]
            for scheme in ALL_SCHEMES:
                summary = None if by_scheme is None else by_scheme[scheme]
                if summary is None:
                    row.append(None)
                else:
                    row.append(
                        f"{summary.mean / 1e6:.2f}ms±{summary.stdev / 1e3:.1f}us"
                    )
            rows.append(row)
        return rows

    def render(self) -> str:
        return format_table(
            ["app"] + list(ALL_SCHEMES),
            self.rows(),
            title="Figure 13: replay time mean±stdev per scheme (10 replays)",
        )

    def stability(self, app: str, scheme: str) -> float:
        return self.series[app][scheme].cv


def _cell(task) -> Dict[str, Summary]:
    """All four schemes' replay summaries for one app."""
    app, threads, input_size, scale, seed, replays, jitter = task

    def compute() -> Dict[str, Summary]:
        recorded = record_cached(
            app, threads=threads, input_size=input_size, scale=scale, seed=seed
        )
        replayer = Replayer(jitter=jitter)
        by_scheme: Dict[str, Summary] = {}
        for scheme in ALL_SCHEMES:
            series = replayer.replay_many(
                recorded.trace, scheme=scheme, runs=replays, seed=seed
            )
            by_scheme[scheme] = series.summary()
        return by_scheme

    params = {
        "app": app, "threads": threads, "input_size": input_size,
        "scale": scale, "seed": seed, "replays": replays, "jitter": jitter,
    }
    return memoized("figure13.cell", params, compute)


def run(
    *,
    apps: Sequence[str] = None,
    threads: int = 4,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    replays: int = 10,
    jitter: float = DEFAULT_JITTER,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> Figure13Result:
    if apps is None:
        apps = workload_names(category="parsec")
    tasks = [
        (app, threads, input_size, scale, seed, replays, jitter) for app in apps
    ]
    summaries = fan_out(_cell, tasks, jobs=jobs, policy=policy)
    result = Figure13Result()
    for app, by_scheme in zip(apps, summaries):
        if isinstance(by_scheme, TaskFailure):
            result.failures[app] = by_scheme
            by_scheme = None
        result.series[app] = by_scheme
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
