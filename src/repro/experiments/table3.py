"""Table 3 — Lockset runtime overhead with/without the dynamic locking
strategy.

The ULCP-free trace is replayed three ways:

* *ideal* — END-flag gating with zero bookkeeping cost (the lower bound),
* *w/o DLS* — full RULE 3/4 locksets: every lockset entry is a real
  auxiliary-lock acquire/release,
* *w/ DLS* — flag checks first, lock cost only for unfinished sources.

Overhead is (T_mode − T_ideal) / T_ideal.  The paper's shape: without
DLS the lock-intensive apps pay up to ~14%; with DLS everything drops
under ~4.3% (fluidanimate worst).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis import transform
from repro.experiments.runner import format_table, percent
from repro.replay import Replayer
from repro.workloads import get_workload, workload_names


@dataclass
class Table3Row:
    app: str
    without_dls: float
    with_dls: float
    lockset_entries: int


@dataclass
class Table3Result:
    rows_by_app: Dict[str, Table3Row] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [r.app, percent(r.without_dls), percent(r.with_dls)]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            ["app", "w/o DLS", "w/ DLS"],
            self.rows(),
            title="Table 3: lockset overhead with/without dynamic locking",
        )

    def max_with_dls(self) -> float:
        return max((r.with_dls for r in self.rows_by_app.values()), default=0.0)


def run(
    *,
    apps: Sequence[str] = None,
    threads: int = 2,
    scale: float = 1.0,
    seed: int = 0,
) -> Table3Result:
    if apps is None:
        apps = workload_names(category="parsec")
    replayer = Replayer(jitter=0.0)
    result = Table3Result()
    for app in apps:
        recorded = get_workload(app, threads=threads, scale=scale, seed=seed).record()
        transformed = transform(recorded.trace)
        ideal = replayer.replay_transformed(
            transformed, mode="dls", flag_cost=0, lock_cost=0
        )
        lockset = replayer.replay_transformed(transformed, mode="lockset")
        dls = replayer.replay_transformed(transformed, mode="dls")
        base = max(1, ideal.end_time)
        result.rows_by_app[app] = Table3Row(
            app=app,
            without_dls=max(0.0, (lockset.end_time - base) / base),
            with_dls=max(0.0, (dls.end_time - base) / base),
            lockset_entries=transformed.plan.total_lockset_entries(),
        )
    return result


def main():
    print(run().render())


if __name__ == "__main__":
    main()
