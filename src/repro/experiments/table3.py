"""Table 3 — Lockset runtime overhead with/without the dynamic locking
strategy.

The ULCP-free trace is replayed three ways:

* *ideal* — END-flag gating with zero bookkeeping cost (the lower bound),
* *w/o DLS* — full RULE 3/4 locksets: every lockset entry is a real
  auxiliary-lock acquire/release,
* *w/ DLS* — flag checks first, lock cost only for unfinished sources.

Overhead is (T_mode − T_ideal) / T_ideal.  The paper's shape: without
DLS the lock-intensive apps pay up to ~14%; with DLS everything drops
under ~4.3% (fluidanimate worst).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import fan_out, format_table, pct, render_failures
from repro.replay import Replayer
from repro.runner import (
    ExecPolicy,
    TaskFailure,
    memoized,
    record_cached,
    transform_cached,
)
from repro.workloads import workload_names


@dataclass
class Table3Row:
    app: str
    without_dls: float
    with_dls: float
    lockset_entries: int


@dataclass
class Table3Result:
    rows_by_app: Dict[str, Table3Row] = field(default_factory=dict)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [r.app, pct(r.without_dls), pct(r.with_dls)]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            ["app", "w/o DLS", "w/ DLS"],
            self.rows(),
            title="Table 3: lockset overhead with/without dynamic locking",
        )

    def max_with_dls(self) -> float:
        return max(
            (
                r.with_dls
                for r in self.rows_by_app.values()
                if r.with_dls is not None
            ),
            default=0.0,
        )


def _cell(task) -> Table3Row:
    app, threads, scale, seed = task

    def compute() -> Table3Row:
        replayer = Replayer(jitter=0.0)
        recorded = record_cached(app, threads=threads, scale=scale, seed=seed)
        transformed = transform_cached(recorded.trace)
        ideal = replayer.replay_transformed(
            transformed, mode="dls", flag_cost=0, lock_cost=0
        )
        lockset = replayer.replay_transformed(transformed, mode="lockset")
        dls = replayer.replay_transformed(transformed, mode="dls")
        base = max(1, ideal.end_time)
        return Table3Row(
            app=app,
            without_dls=max(0.0, (lockset.end_time - base) / base),
            with_dls=max(0.0, (dls.end_time - base) / base),
            lockset_entries=transformed.plan.total_lockset_entries(),
        )

    params = {"app": app, "threads": threads, "scale": scale, "seed": seed}
    return memoized("table3.cell", params, compute)


def run(
    *,
    apps: Sequence[str] = None,
    threads: int = 2,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> Table3Result:
    if apps is None:
        apps = workload_names(category="parsec")
    tasks = [(app, threads, scale, seed) for app in apps]
    result = Table3Result()
    for task, row in zip(tasks, fan_out(_cell, tasks, jobs=jobs, policy=policy)):
        if isinstance(row, TaskFailure):
            result.failures[task[0]] = row
            row = Table3Row(app=task[0], without_dls=None, with_dls=None,
                            lockset_entries=None)
        result.rows_by_app[row.app] = row
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
