"""Extra experiment: recommendation stability across recording seeds.

A debugging tool is only useful if its advice does not flip between
runs.  For each app we record with several seeds, run the full pipeline,
and measure (a) how often the per-seed top recommendation overlaps the
consensus top region and (b) how many of the consensus regions persist
across every seed.  PERFPLAY's determinism claim (ELSC, §5.2) is about
one trace; this experiment quantifies the tool's robustness across
*different* traces of the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import format_table, percent
from repro.perfdebug.framework import PerfPlay
from repro.perfdebug.multitrace import aggregate
from repro.workloads import get_workload

DEFAULT_APPS = ("openldap", "mysql", "pbzip2", "bodytrack", "fluidanimate")


@dataclass
class StabilityRow:
    app: str
    seeds: int
    top1_agreement: float     # per-seed top matches consensus top
    persistent_fraction: float  # consensus regions present in every seed
    consensus_regions: int


@dataclass
class StabilityResult:
    rows_by_app: Dict[str, StabilityRow] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [r.app, r.seeds, percent(r.top1_agreement),
             percent(r.persistent_fraction), r.consensus_regions]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            ["app", "seeds", "top-1 agreement", "persistent", "#regions"],
            self.rows(),
            title="Recommendation stability across recording seeds",
        )


def run(
    *,
    apps: Sequence[str] = DEFAULT_APPS,
    seeds: Sequence[int] = (0, 1, 2, 3),
    threads: int = 2,
    scale: float = 1.0,
) -> StabilityResult:
    result = StabilityResult()
    perfplay = PerfPlay()
    for app in apps:
        reports = []
        for seed in seeds:
            recorded = get_workload(app, threads=threads, scale=scale,
                                    seed=seed).record()
            reports.append(perfplay.analyze(recorded.trace, seed=seed))
        consensus = aggregate(reports)
        ranked = consensus.ranked()
        if not ranked:
            result.rows_by_app[app] = StabilityRow(
                app=app, seeds=len(seeds), top1_agreement=1.0,
                persistent_fraction=1.0, consensus_regions=0,
            )
            continue
        top = ranked[0]
        agreements = 0
        for report in reports:
            best = report.most_beneficial
            if best is None:
                continue
            if top.matches(best.group.cr1, best.group.cr2) is not None:
                agreements += 1
        persistent = [r for r in ranked if r.appearances >= len(seeds)]
        result.rows_by_app[app] = StabilityRow(
            app=app,
            seeds=len(seeds),
            top1_agreement=agreements / len(reports),
            persistent_fraction=len(persistent) / len(ranked),
            consensus_regions=len(ranked),
        )
    return result


def main():
    print(run().render())


if __name__ == "__main__":
    main()
