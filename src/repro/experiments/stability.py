"""Extra experiment: recommendation stability across recording seeds.

A debugging tool is only useful if its advice does not flip between
runs.  For each app we record with several seeds, run the full pipeline,
and measure (a) how often the per-seed top recommendation overlaps the
consensus top region and (b) how many of the consensus regions persist
across every seed.  PERFPLAY's determinism claim (ELSC, §5.2) is about
one trace; this experiment quantifies the tool's robustness across
*different* traces of the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import (
    debug_app,
    fan_out,
    format_table,
    pct,
    render_failures,
)
from repro.perfdebug.multitrace import aggregate
from repro.runner import ExecPolicy, TaskFailure, memoized

DEFAULT_APPS = ("openldap", "mysql", "pbzip2", "bodytrack", "fluidanimate")


@dataclass
class StabilityRow:
    app: str
    seeds: int
    top1_agreement: float     # per-seed top matches consensus top
    persistent_fraction: float  # consensus regions present in every seed
    consensus_regions: int


@dataclass
class StabilityResult:
    rows_by_app: Dict[str, StabilityRow] = field(default_factory=dict)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [r.app, r.seeds, pct(r.top1_agreement),
             pct(r.persistent_fraction), r.consensus_regions]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            ["app", "seeds", "top-1 agreement", "persistent", "#regions"],
            self.rows(),
            title="Recommendation stability across recording seeds",
        )


def _cell(task) -> StabilityRow:
    app, seeds, threads, scale = task
    params = {"app": app, "seeds": list(seeds), "threads": threads, "scale": scale}
    return memoized(
        "stability.cell", params, lambda: _measure(app, seeds, threads, scale)
    )


def _measure(app, seeds, threads, scale) -> StabilityRow:
    reports = [
        debug_app(app, threads=threads, scale=scale, seed=seed).report
        for seed in seeds
    ]
    consensus = aggregate(reports)
    ranked = consensus.ranked()
    if not ranked:
        return StabilityRow(
            app=app, seeds=len(seeds), top1_agreement=1.0,
            persistent_fraction=1.0, consensus_regions=0,
        )
    top = ranked[0]
    agreements = 0
    for report in reports:
        best = report.most_beneficial
        if best is None:
            continue
        if top.matches(best.group.cr1, best.group.cr2) is not None:
            agreements += 1
    persistent = [r for r in ranked if r.appearances >= len(seeds)]
    return StabilityRow(
        app=app,
        seeds=len(seeds),
        top1_agreement=agreements / len(reports),
        persistent_fraction=len(persistent) / len(ranked),
        consensus_regions=len(ranked),
    )


def run(
    *,
    apps: Sequence[str] = DEFAULT_APPS,
    seeds: Sequence[int] = (0, 1, 2, 3),
    threads: int = 2,
    scale: float = 1.0,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> StabilityResult:
    tasks = [(app, tuple(seeds), threads, scale) for app in apps]
    result = StabilityResult()
    for task, row in zip(tasks, fan_out(_cell, tasks, jobs=jobs, policy=policy)):
        if isinstance(row, TaskFailure):
            result.failures[task[0]] = row
            row = StabilityRow(app=task[0], seeds=len(task[1]),
                               top1_agreement=None, persistent_fraction=None,
                               consensus_regions=None)
        result.rows_by_app[row.app] = row
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
