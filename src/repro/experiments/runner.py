"""Shared plumbing for the experiment modules.

Every experiment module exposes ``run(**params) -> <Result>`` returning a
dataclass with ``rows()`` (machine-readable) and ``render()`` (the
table/series the paper prints), plus a ``main()`` so it can be executed
as ``python -m repro.experiments.<name>``.

``run``/``main`` accept ``jobs=N`` to fan independent experiment cells
out over a :mod:`repro.runner` worker pool.  Cells fix their seeds and
return in submission order, so parallel output is bit-for-bit identical
to serial.  When a cache is active (``repro.runner.cache``), recorded
traces and per-cell results are reused across runs.

``run``/``main`` also accept an :class:`repro.runner.ExecPolicy`:
with ``policy.partial`` a failed cell (worker crash, timeout, injected
fault — after its bounded retries) comes back as a structured
:class:`repro.runner.TaskFailure`, and the experiment renders that cell
as ``n/a`` instead of aborting, listing the failures under the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import telemetry
from repro.perfdebug.framework import DebugReport, PerfPlay
from repro.runner import ExecPolicy, TaskFailure, memoized, parallel_map, record_cached


def fan_out(fn, tasks, *, jobs: int = 1, policy: Optional[ExecPolicy] = None):
    """Fan experiment cells out under the experiment's exec policy.

    A thin veneer over :func:`repro.runner.parallel_map` so every
    experiment module threads retries/timeouts/partial mode the same
    way.  With ``policy.partial`` the result list can contain
    :class:`TaskFailure` entries at the failed cells' positions.
    """
    return parallel_map(fn, tasks, jobs=jobs, policy=policy)


def pct(value) -> Optional[str]:
    """``percent`` that passes ``None`` through (renders as ``n/a``)."""
    return None if value is None else percent(value)


def render_failures(failures) -> str:
    """One line per quarantined cell, for printing under a table."""
    items = failures.values() if isinstance(failures, dict) else failures
    return "\n".join(f.render() for f in items)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Plain-text table with right-aligned numeric columns."""
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def percent(value: float) -> str:
    return f"{100 * value:.1f}%"


def bar_chart(items, *, width: int = 36, formatter=percent, title: str = "") -> str:
    """ASCII horizontal bars for (label, value) pairs — the closest a
    terminal gets to the paper's bar figures."""
    items = list(items)
    if not items:
        return title
    peak = max(value for _label, value in items) or 1.0
    label_width = max(len(str(label)) for label, _value in items)
    lines = [title] if title else []
    for label, value in items:
        filled = int(round(width * max(0.0, value) / peak))
        lines.append(
            f"{str(label):>{label_width}} |{'#' * filled}{' ' * (width - filled)}| "
            f"{formatter(value)}"
        )
    return "\n".join(lines)


@dataclass
class AppDebugRun:
    """One app pushed through the full PERFPLAY pipeline."""

    name: str
    report: DebugReport


def debug_app(
    name: str,
    *,
    threads: int = 2,
    input_size: str = "simlarge",
    scale: float = 1.0,
    seed: int = 0,
    jitter: float = 0.0,
    workload_kwargs: Optional[dict] = None,
) -> AppDebugRun:
    """Record a workload and run the whole debugging pipeline on it.

    Both the recorded trace and the finished :class:`DebugReport` are
    served from the active cache when one is configured.
    """
    params = {
        "name": name,
        "threads": threads,
        "input_size": input_size,
        "scale": scale,
        "seed": seed,
        "jitter": jitter,
        "workload_kwargs": dict(workload_kwargs or {}),
    }

    def compute() -> DebugReport:
        recorded = record_cached(
            name,
            threads=threads,
            input_size=input_size,
            scale=scale,
            seed=seed,
            workload_kwargs=workload_kwargs,
        )
        perfplay = PerfPlay(jitter=jitter)
        return perfplay.analyze(recorded.trace, seed=seed)

    with telemetry.span("experiment.cell", app=name):
        report = memoized("debug_app", params, compute)
    return AppDebugRun(name=name, report=report)
