"""Figure 14 — Normalized execution time with and without ULCPs.

For all 16 applications (two threads): replay the original and ULCP-free
traces, report the normalized performance degradation (T_pd / T_real)
and the normalized CPU wasting per thread (T_rw / N / T_real).  The
paper's shape: blackscholes/canneal/streamcluster/swaptions ≈ 0; the
ULCP-heavy apps improve by single-digit to ~11 percent; facesim beats
fluidanimate despite fewer ULCPs (bigger critical sections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.runner import (
    bar_chart,
    debug_app,
    fan_out,
    format_table,
    pct,
    percent,
    render_failures,
)
from repro.runner import ExecPolicy, TaskFailure, memoized
from repro.workloads import TABLE1_ORDER


@dataclass
class Figure14Row:
    app: str
    degradation: float      # T_pd / T_real
    cpu_waste_per_thread: float  # (T_rw / N) / T_real
    total_ulcps: int


@dataclass
class Figure14Result:
    rows_by_app: Dict[str, Figure14Row] = field(default_factory=dict)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [r.app, pct(r.degradation), pct(r.cpu_waste_per_thread), r.total_ulcps]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            ["app", "perf degradation", "CPU waste/thread", "#ULCPs"],
            self.rows(),
            title="Figure 14: normalized ULCP performance impact (2 threads)",
        )

    def average_degradation(self) -> float:
        rows = [r for r in self.rows_by_app.values() if r.degradation is not None]
        if not rows:
            return float("nan")
        return sum(r.degradation for r in rows) / len(rows)


def _cell(task) -> Figure14Row:
    app, threads, scale, seed = task

    def compute() -> Figure14Row:
        report = debug_app(app, threads=threads, scale=scale, seed=seed).report
        return Figure14Row(
            app=app,
            degradation=report.normalized_degradation,
            cpu_waste_per_thread=report.normalized_cpu_waste_per_thread,
            total_ulcps=report.breakdown.total_ulcps,
        )

    params = {"app": app, "threads": threads, "scale": scale, "seed": seed}
    return memoized("figure14.cell", params, compute)


def run(
    *, threads: int = 2, scale: float = 1.0, seed: int = 0, jobs: int = 1,
    policy: ExecPolicy = None,
) -> Figure14Result:
    tasks = [(app, threads, scale, seed) for app in TABLE1_ORDER]
    result = Figure14Result()
    for task, row in zip(tasks, fan_out(_cell, tasks, jobs=jobs, policy=policy)):
        if isinstance(row, TaskFailure):
            result.failures[task[0]] = row
            row = Figure14Row(app=task[0], degradation=None,
                              cpu_waste_per_thread=None, total_ulcps=None)
        result.rows_by_app[row.app] = row
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    print()
    print(bar_chart(
        [
            (r.app, r.degradation)
            for r in result.rows_by_app.values()
            if r.degradation is not None
        ],
        title="performance degradation (bar view)",
    ))
    print(f"average degradation: {percent(result.average_degradation())}")
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
