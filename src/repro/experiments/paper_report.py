"""Generate the full reproduction report as one markdown artifact.

``python -m repro.experiments.paper_report [output.md]`` runs every
experiment and writes their rendered tables/series into a single
document, one section per table/figure, with the configuration recorded
in the header.  EXPERIMENTS.md's measured blocks come from this.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence


def generate(
    *,
    experiments: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> str:
    """Run the chosen experiments (default: all) and return the markdown."""
    from repro.experiments import ALL_EXPERIMENTS

    chosen = list(experiments) if experiments is not None else list(ALL_EXPERIMENTS)
    unknown = [name for name in chosen if name not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")

    sections = []
    timings: Dict[str, float] = {}
    for name in chosen:
        module = ALL_EXPERIMENTS[name]
        started = time.perf_counter()
        try:
            result = module.run()
        except TypeError:
            # modules whose run() has no defaults for scale/seed
            result = module.run()
        timings[name] = time.perf_counter() - started
        sections.append((name, result.render()))

    lines = [
        "# PERFPLAY reproduction report",
        "",
        f"- seed: {seed}",
        f"- scale: {scale}",
        f"- experiments: {', '.join(chosen)}",
        "",
    ]
    for name, body in sections:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append(f"_generated in {timings[name]:.2f}s_")
        lines.append("")
    return "\n".join(lines)


def write(path, **kwargs) -> Path:
    """Generate and write the report; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(generate(**kwargs), encoding="utf-8")
    return target


def main(argv=None):
    args = list(sys.argv[1:] if argv is None else argv)
    output = args[0] if args else "artifacts/paper_report.md"
    target = write(output)
    print(f"report written to {target}")


if __name__ == "__main__":
    main()
