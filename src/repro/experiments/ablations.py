"""Ablations of PERFPLAY's design choices (beyond the paper's tables).

* **ELSC off** — replay stability collapses without the enforced lock
  serialization (ORIG-S spread vs ELSC-S spread).
* **RULE 2 off** — dropping the partial-order edges leaves the
  transformed replay under-constrained; sections that conflicted in the
  original may reorder between replays.
* **Benign detection off** — every conflicting pair counts as a TLCP,
  keeping causal edges the reversed replay would have removed (lost
  optimization opportunity, measured as extra transformed-replay time).
* **Lock elision** — the dynamic baseline: eliminates ULCP serialization
  at runtime but pays abort/rollback penalties on every true conflict
  and produces no debugging output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis import transform
from repro.baselines import replay_lock_elision
from repro.experiments.runner import fan_out, format_table, render_failures
from repro.replay import ELSC_S, ORIG_S, Replayer
from repro.runner import ExecPolicy, TaskFailure, memoized, record_cached

DEFAULT_APPS = ("openldap", "pbzip2", "fluidanimate")


@dataclass
class AblationRow:
    app: str
    elsc_spread: float
    orig_spread: float
    free_time_rule2: int
    free_time_no_rule2: int
    free_time_no_benign: int
    elision_time: int
    elsc_time: int


@dataclass
class AblationResult:
    rows_by_app: Dict[str, AblationRow] = field(default_factory=dict)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def rows(self) -> List[List]:
        def us(value):
            return None if value is None else f"{value / 1000:.1f}us"

        return [
            [
                r.app,
                us(r.orig_spread),
                us(r.elsc_spread),
                r.free_time_rule2,
                r.free_time_no_rule2,
                r.free_time_no_benign,
                r.elision_time,
                r.elsc_time,
            ]
            for r in self.rows_by_app.values()
        ]

    def render(self) -> str:
        return format_table(
            [
                "app",
                "ORIG spread",
                "ELSC spread",
                "free(R2)",
                "free(noR2)",
                "free(noBenign)",
                "lock-elision",
                "original",
            ],
            self.rows(),
            title="Ablations: enforcement, RULE 2, benign detection, elision",
        )


def _cell(task) -> AblationRow:
    app, threads, scale, seed, replays = task

    def compute() -> AblationRow:
        noisy = Replayer(jitter=0.02)
        clean = Replayer(jitter=0.0)
        recorded = record_cached(app, threads=threads, scale=scale, seed=seed)
        trace = recorded.trace

        orig_series = noisy.replay_many(trace, scheme=ORIG_S, runs=replays)
        elsc_series = noisy.replay_many(trace, scheme=ELSC_S, runs=replays)

        with_rule2 = transform(trace, order_edges=True)
        without_rule2 = transform(trace, order_edges=False)
        without_benign = transform(trace, benign_detection=False)

        free_r2 = clean.replay_transformed(with_rule2).end_time
        free_no_r2 = clean.replay_transformed(without_rule2).end_time
        free_no_benign = clean.replay_transformed(without_benign).end_time
        elision = replay_lock_elision(with_rule2).end_time
        original = clean.replay(trace, scheme=ELSC_S).end_time

        return AblationRow(
            app=app,
            elsc_spread=elsc_series.summary().spread,
            orig_spread=orig_series.summary().spread,
            free_time_rule2=free_r2,
            free_time_no_rule2=free_no_r2,
            free_time_no_benign=free_no_benign,
            elision_time=elision,
            elsc_time=original,
        )

    params = {
        "app": app, "threads": threads, "scale": scale, "seed": seed,
        "replays": replays,
    }
    return memoized("ablations.cell", params, compute)


def run(
    *,
    apps: Sequence[str] = DEFAULT_APPS,
    threads: int = 4,
    scale: float = 1.0,
    seed: int = 0,
    replays: int = 6,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> AblationResult:
    tasks = [(app, threads, scale, seed, replays) for app in apps]
    result = AblationResult()
    for task, row in zip(tasks, fan_out(_cell, tasks, jobs=jobs, policy=policy)):
        if isinstance(row, TaskFailure):
            result.failures[task[0]] = row
            row = AblationRow(app=task[0], elsc_spread=None, orig_spread=None,
                              free_time_rule2=None, free_time_no_rule2=None,
                              free_time_no_benign=None, elision_time=None,
                              elsc_time=None)
        result.rows_by_app[row.app] = row
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
