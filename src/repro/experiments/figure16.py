"""Figure 16 — ULCP impact vs. input size (canneal/bodytrack/fluidanimate).

The paper's shape: both the normalized performance loss and the CPU
wasting grow with the input size (bigger inputs re-execute the locking
hot loops more, while fixed startup work stays constant); canneal stays
at zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import debug_app, format_table, percent

APPS = ("canneal", "bodytrack", "fluidanimate")
SIZES = ("simsmall", "simmedium", "simlarge")


@dataclass
class Figure16Result:
    sizes: Sequence[str]
    loss: Dict[str, List[float]] = field(default_factory=dict)
    waste: Dict[str, List[float]] = field(default_factory=dict)

    def rows(self) -> List[List]:
        rows = []
        for app in self.loss:
            rows.append([app, "loss"] + [percent(v) for v in self.loss[app]])
            rows.append([app, "waste/thr"] + [percent(v) for v in self.waste[app]])
        return rows

    def render(self) -> str:
        headers = ["app", "metric"] + list(self.sizes)
        return format_table(
            headers, self.rows(), title="Figure 16: ULCP impact vs input size"
        )


def run(
    *,
    apps: Sequence[str] = APPS,
    sizes: Sequence[str] = SIZES,
    threads: int = 2,
    scale: float = 1.0,
    seed: int = 0,
) -> Figure16Result:
    result = Figure16Result(sizes=list(sizes))
    for app in apps:
        losses, wastes = [], []
        for size in sizes:
            report = debug_app(
                app, threads=threads, input_size=size, scale=scale, seed=seed
            ).report
            losses.append(report.normalized_degradation)
            wastes.append(report.normalized_cpu_waste_per_thread)
        result.loss[app] = losses
        result.waste[app] = wastes
    return result


def main():
    print(run().render())


if __name__ == "__main__":
    main()
