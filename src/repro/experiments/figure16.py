"""Figure 16 — ULCP impact vs. input size (canneal/bodytrack/fluidanimate).

The paper's shape: both the normalized performance loss and the CPU
wasting grow with the input size (bigger inputs re-execute the locking
hot loops more, while fixed startup work stays constant); canneal stays
at zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import (
    debug_app,
    fan_out,
    format_table,
    pct,
    render_failures,
)
from repro.runner import ExecPolicy, TaskFailure, memoized

APPS = ("canneal", "bodytrack", "fluidanimate")
SIZES = ("simsmall", "simmedium", "simlarge")


@dataclass
class Figure16Result:
    sizes: Sequence[str]
    loss: Dict[str, List[float]] = field(default_factory=dict)
    waste: Dict[str, List[float]] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)

    def rows(self) -> List[List]:
        rows = []
        for app in self.loss:
            rows.append([app, "loss"] + [pct(v) for v in self.loss[app]])
            rows.append([app, "waste/thr"] + [pct(v) for v in self.waste[app]])
        return rows

    def render(self) -> str:
        headers = ["app", "metric"] + list(self.sizes)
        return format_table(
            headers, self.rows(), title="Figure 16: ULCP impact vs input size"
        )


def _cell(task):
    """(loss, waste) of one (app, input-size) configuration."""
    app, size, threads, scale, seed = task

    def compute():
        report = debug_app(
            app, threads=threads, input_size=size, scale=scale, seed=seed
        ).report
        return (
            report.normalized_degradation,
            report.normalized_cpu_waste_per_thread,
        )

    params = {
        "app": app, "size": size, "threads": threads, "scale": scale, "seed": seed,
    }
    return memoized("figure16.cell", params, compute)


def run(
    *,
    apps: Sequence[str] = APPS,
    sizes: Sequence[str] = SIZES,
    threads: int = 2,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> Figure16Result:
    tasks = [(app, size, threads, scale, seed) for app in apps for size in sizes]
    cells = fan_out(_cell, tasks, jobs=jobs, policy=policy)
    result = Figure16Result(sizes=list(sizes))
    for i, cell in enumerate(cells):
        if isinstance(cell, TaskFailure):
            result.failures.append(cell)
            cells[i] = (None, None)
    per_app = len(list(sizes))
    for i, app in enumerate(apps):
        chunk = cells[i * per_app:(i + 1) * per_app]
        result.loss[app] = [loss for loss, _waste in chunk]
        result.waste[app] = [waste for _loss, waste in chunk]
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
