"""Figure 15 — ULCP impact vs. thread count (canneal/bodytrack/fluidanimate).

The paper's shape: performance loss *increases* with the thread count
(more threads re-execute the same ULCP-producing code) while the CPU
wasting per thread stays roughly flat; canneal shows nothing at any
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import debug_app, format_table, percent

APPS = ("canneal", "bodytrack", "fluidanimate")
DEFAULT_THREADS = (2, 4, 6, 8)


@dataclass
class Figure15Result:
    thread_counts: Sequence[int]
    #: app -> [normalized degradation per thread count]
    loss: Dict[str, List[float]] = field(default_factory=dict)
    #: app -> [normalized CPU waste per thread]
    waste: Dict[str, List[float]] = field(default_factory=dict)

    def rows(self) -> List[List]:
        rows = []
        for app in self.loss:
            rows.append(
                [app, "loss"] + [percent(v) for v in self.loss[app]]
            )
            rows.append(
                [app, "waste/thr"] + [percent(v) for v in self.waste[app]]
            )
        return rows

    def render(self) -> str:
        headers = ["app", "metric"] + [f"{n}t" for n in self.thread_counts]
        return format_table(
            headers, self.rows(),
            title="Figure 15: ULCP impact vs thread count",
        )


def run(
    *,
    apps: Sequence[str] = APPS,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
) -> Figure15Result:
    result = Figure15Result(thread_counts=list(thread_counts))
    for app in apps:
        losses, wastes = [], []
        for threads in thread_counts:
            report = debug_app(app, threads=threads, scale=scale, seed=seed).report
            losses.append(report.normalized_degradation)
            wastes.append(report.normalized_cpu_waste_per_thread)
        result.loss[app] = losses
        result.waste[app] = wastes
    return result


def main():
    print(run().render())


if __name__ == "__main__":
    main()
