"""Figure 15 — ULCP impact vs. thread count (canneal/bodytrack/fluidanimate).

The paper's shape: performance loss *increases* with the thread count
(more threads re-execute the same ULCP-producing code) while the CPU
wasting per thread stays roughly flat; canneal shows nothing at any
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import (
    debug_app,
    fan_out,
    format_table,
    pct,
    render_failures,
)
from repro.runner import ExecPolicy, TaskFailure, memoized

APPS = ("canneal", "bodytrack", "fluidanimate")
DEFAULT_THREADS = (2, 4, 6, 8)


@dataclass
class Figure15Result:
    thread_counts: Sequence[int]
    #: app -> [normalized degradation per thread count]
    loss: Dict[str, List[float]] = field(default_factory=dict)
    #: app -> [normalized CPU waste per thread]
    waste: Dict[str, List[float]] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)

    def rows(self) -> List[List]:
        rows = []
        for app in self.loss:
            rows.append(
                [app, "loss"] + [pct(v) for v in self.loss[app]]
            )
            rows.append(
                [app, "waste/thr"] + [pct(v) for v in self.waste[app]]
            )
        return rows

    def render(self) -> str:
        headers = ["app", "metric"] + [f"{n}t" for n in self.thread_counts]
        return format_table(
            headers, self.rows(),
            title="Figure 15: ULCP impact vs thread count",
        )


def _cell(task):
    """(loss, waste) of one (app, thread-count) configuration."""
    app, threads, scale, seed = task

    def compute():
        report = debug_app(app, threads=threads, scale=scale, seed=seed).report
        return (
            report.normalized_degradation,
            report.normalized_cpu_waste_per_thread,
        )

    params = {"app": app, "threads": threads, "scale": scale, "seed": seed}
    return memoized("figure15.cell", params, compute)


def run(
    *,
    apps: Sequence[str] = APPS,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> Figure15Result:
    tasks = [
        (app, threads, scale, seed) for app in apps for threads in thread_counts
    ]
    cells = fan_out(_cell, tasks, jobs=jobs, policy=policy)
    result = Figure15Result(thread_counts=list(thread_counts))
    for i, cell in enumerate(cells):
        if isinstance(cell, TaskFailure):
            result.failures.append(cell)
            cells[i] = (None, None)
    per_app = len(list(thread_counts))
    for i, app in enumerate(apps):
        chunk = cells[i * per_app:(i + 1) * per_app]
        result.loss[app] = [loss for loss, _waste in chunk]
        result.waste[app] = [waste for _loss, waste in chunk]
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
