"""Figure 19 — Sensitivity of the two exploited bugs (#BUG 1 and #BUG 2).

Like §6.6, both bugs are re-implemented in a ULCP-free fashion (barrier
for the openldap spin-wait, signal/wait for the pbzip2 join) and
re-quantified by running the original and fixed variants:

* #BUG 1's CPU waste per thread is roughly stable as threads grow;
* #BUG 2's performance loss grows with the thread count;
* both bugs' *normalized* impact declines as the input grows, because the
  bug code runs a fixed number of times while the useful work scales —
  the opposite trend of Figure 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import fan_out, format_table, percent, render_failures
from repro.runner import ExecPolicy, TaskFailure, memoized, record_cached

BUGS = ("bug1-openldap-spinwait", "bug2-pbzip2-join")
DEFAULT_THREADS = (2, 4, 6, 8)
SIZES = ("simsmall", "simmedium", "simlarge")


@dataclass
class BugMeasurement:
    """Original-vs-fixed comparison of one configuration."""

    threads: int
    input_size: str
    original_time: int
    fixed_time: int
    original_cpu: int
    fixed_cpu: int

    @property
    def normalized_loss(self) -> float:
        if self.original_time == 0:
            return 0.0
        return max(0.0, (self.original_time - self.fixed_time) / self.original_time)

    @property
    def normalized_waste_per_thread(self) -> float:
        """CPU the bug burns that the fix does not, per thread, normalized.

        Measured as the total-CPU delta between variants: the spin-wait's
        polling work disappears entirely under the barrier fix."""
        if self.original_time == 0:
            return 0.0
        waste = max(0, self.original_cpu - self.fixed_cpu) / self.threads
        return waste / self.original_time


def _measure(bug: str, *, threads: int, input_size: str, scale: float, seed: int) -> BugMeasurement:
    # keep a core available for every thread (workers + the helper thread)
    # so the measurement isolates the bug, not core oversubscription
    num_cores = threads + 2
    original = record_cached(
        bug, threads=threads, input_size=input_size, scale=scale, seed=seed,
        num_cores=num_cores,
    )
    fixed = record_cached(
        bug, threads=threads, input_size=input_size, scale=scale, seed=seed,
        num_cores=num_cores, workload_kwargs={"fixed": True},
    )
    return BugMeasurement(
        threads=threads,
        input_size=input_size,
        original_time=original.recorded_time,
        fixed_time=fixed.recorded_time,
        original_cpu=original.machine_result.total_cpu_ns,
        fixed_cpu=fixed.machine_result.total_cpu_ns,
    )


def _cell(task) -> BugMeasurement:
    bug, threads, input_size, scale, seed = task
    params = {
        "bug": bug, "threads": threads, "input_size": input_size,
        "scale": scale, "seed": seed,
    }
    return memoized(
        "figure19.cell",
        params,
        lambda: _measure(
            bug, threads=threads, input_size=input_size, scale=scale, seed=seed
        ),
    )


@dataclass
class Figure19Result:
    thread_counts: Sequence[int]
    sizes: Sequence[str]
    #: bug -> [measurement per thread count] (at simlarge)
    by_threads: Dict[str, List[BugMeasurement]] = field(default_factory=dict)
    #: bug -> [measurement per input size] (at 2 threads)
    by_size: Dict[str, List[BugMeasurement]] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)

    def rows(self) -> List[List]:
        def cell(m, attr):
            return None if m is None else percent(getattr(m, attr))

        rows = []
        for bug, series in self.by_threads.items():
            rows.append(
                [bug, "loss vs threads"]
                + [cell(m, "normalized_loss") for m in series]
            )
            rows.append(
                [bug, "waste/thr vs threads"]
                + [cell(m, "normalized_waste_per_thread") for m in series]
            )
        for bug, series in self.by_size.items():
            rows.append(
                [bug, "loss vs size"]
                + [cell(m, "normalized_loss") for m in series]
            )
        return rows

    def render(self) -> str:
        width = max(len(self.thread_counts), len(self.sizes))
        headers = ["bug", "metric"] + [f"x{i}" for i in range(width)]
        return format_table(
            headers, self.rows(),
            title=(
                "Figure 19: bug sensitivity "
                f"(threads={list(self.thread_counts)}, sizes={list(self.sizes)})"
            ),
        )


def run(
    *,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    sizes: Sequence[str] = SIZES,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> Figure19Result:
    thread_tasks = [
        (bug, n, "simlarge", scale, seed) for bug in BUGS for n in thread_counts
    ]
    size_tasks = [
        (bug, 2, size, scale, seed) for bug in BUGS for size in sizes
    ]
    cells = fan_out(_cell, thread_tasks + size_tasks, jobs=jobs, policy=policy)
    failures = []
    for i, cell in enumerate(cells):
        if isinstance(cell, TaskFailure):
            failures.append(cell)
            cells[i] = None
    by_threads = cells[:len(thread_tasks)]
    by_size = cells[len(thread_tasks):]
    result = Figure19Result(thread_counts=list(thread_counts), sizes=list(sizes))
    result.failures = failures
    per_bug = len(list(thread_counts))
    for i, bug in enumerate(BUGS):
        result.by_threads[bug] = by_threads[i * per_bug:(i + 1) * per_bug]
    per_bug = len(list(sizes))
    for i, bug in enumerate(BUGS):
        result.by_size[bug] = by_size[i * per_bug:(i + 1) * per_bug]
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
