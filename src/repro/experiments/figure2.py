"""Figure 2 — Number of ULCPs with increasing thread count.

openldap, pbzip2 and bodytrack at 2..32 threads: ULCP counts grow close
to proportionally with the thread count, because the pairs come from
common code every thread re-executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis import analyze_pairs
from repro.experiments.runner import fan_out, format_table, render_failures
from repro.runner import ExecPolicy, TaskFailure, memoized, record_cached

APPS = ("openldap", "pbzip2", "bodytrack")
DEFAULT_THREADS = (2, 4, 8, 16, 32)


@dataclass
class Figure2Result:
    thread_counts: Sequence[int]
    #: app -> [total ULCPs per thread count]
    series: Dict[str, List[int]] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)

    def rows(self) -> List[List]:
        return [
            [app] + counts for app, counts in self.series.items()
        ]

    def render(self) -> str:
        headers = ["app"] + [f"{n}t" for n in self.thread_counts]
        return format_table(
            headers, self.rows(), title="Figure 2: #ULCPs vs thread count"
        )

    def growth_ratio(self, app: str) -> float:
        """Last-point count divided by first-point count."""
        series = self.series[app]
        if series[0] is None or series[-1] is None:
            return float("nan")
        return series[-1] / series[0] if series[0] else float("inf")


def _cell(task) -> int:
    """ULCP count of one (app, thread-count) configuration."""
    app, threads, scale, seed = task

    def compute() -> int:
        recorded = record_cached(app, threads=threads, scale=scale, seed=seed)
        return analyze_pairs(recorded.trace).breakdown.total_ulcps

    params = {"app": app, "threads": threads, "scale": scale, "seed": seed}
    return memoized("figure2.cell", params, compute)


def run(
    *,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    apps: Sequence[str] = APPS,
    jobs: int = 1,
    policy: ExecPolicy = None,
) -> Figure2Result:
    tasks = [
        (app, threads, scale, seed) for app in apps for threads in thread_counts
    ]
    counts = fan_out(_cell, tasks, jobs=jobs, policy=policy)
    result = Figure2Result(thread_counts=list(thread_counts))
    for i, count in enumerate(counts):
        if isinstance(count, TaskFailure):
            result.failures.append(count)
            counts[i] = None
    per_app = len(list(thread_counts))
    for i, app in enumerate(apps):
        result.series[app] = counts[i * per_app:(i + 1) * per_app]
    return result


def main(*, jobs: int = 1, policy: ExecPolicy = None):
    result = run(jobs=jobs, policy=policy)
    print(result.render())
    if result.failures:
        print(render_failures(result.failures))


if __name__ == "__main__":
    main()
