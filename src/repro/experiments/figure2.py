"""Figure 2 — Number of ULCPs with increasing thread count.

openldap, pbzip2 and bodytrack at 2..32 threads: ULCP counts grow close
to proportionally with the thread count, because the pairs come from
common code every thread re-executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis import analyze_pairs
from repro.experiments.runner import format_table
from repro.workloads import get_workload

APPS = ("openldap", "pbzip2", "bodytrack")
DEFAULT_THREADS = (2, 4, 8, 16, 32)


@dataclass
class Figure2Result:
    thread_counts: Sequence[int]
    #: app -> [total ULCPs per thread count]
    series: Dict[str, List[int]] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return [
            [app] + counts for app, counts in self.series.items()
        ]

    def render(self) -> str:
        headers = ["app"] + [f"{n}t" for n in self.thread_counts]
        return format_table(
            headers, self.rows(), title="Figure 2: #ULCPs vs thread count"
        )

    def growth_ratio(self, app: str) -> float:
        """Last-point count divided by first-point count."""
        series = self.series[app]
        return series[-1] / series[0] if series[0] else float("inf")


def run(
    *,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    apps: Sequence[str] = APPS,
) -> Figure2Result:
    result = Figure2Result(thread_counts=list(thread_counts))
    for app in apps:
        counts = []
        for threads in thread_counts:
            recorded = get_workload(
                app, threads=threads, scale=scale, seed=seed
            ).record()
            counts.append(analyze_pairs(recorded.trace).breakdown.total_ulcps)
        result.series[app] = counts
    return result


def main():
    print(run().render())


if __name__ == "__main__":
    main()
